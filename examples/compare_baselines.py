"""Compare NCL against the paper's five baselines on one dataset.

A scaled-down, single-dataset version of the paper's Figure 7 study —
useful to see where each method's failure mode bites:

* NOBLECoder misses out-of-dictionary shorthand;
* pkduck bridges abbreviations but not synonyms;
* WMD aligns words but ignores order and concept structure;
* Doc2Vec blurs fine-grained siblings;
* LR⁺'s surface features break on register shifts;
* NCL rewrites + translates.

Usage::

    python examples/compare_baselines.py
"""

from repro.api import (
    CbowConfig,
    ComAidConfig,
    ComAidTrainer,
    Doc2VecConfig,
    Doc2VecLinker,
    LinkerConfig,
    LrPlusLinker,
    NeuralConceptLinker,
    NobleCoderLinker,
    PkduckLinker,
    TrainingConfig,
    WmdLinker,
    format_table,
    hospital_x_like,
    mean_reciprocal_rank,
    pretrain_word_vectors,
    top1_accuracy,
)


def main() -> None:
    dataset = hospital_x_like(rng=2018, query_count=260)
    print("dataset:", dataset.summary())
    cbow = CbowConfig(dim=24, window=4, epochs=15, negatives=10, subsample=3e-3)
    vectors = pretrain_word_vectors(dataset.corpus, cbow, rng=3)
    plain_vectors = pretrain_word_vectors(
        dataset.corpus, cbow, rng=3, inject=False
    )

    print("training COM-AID ...")
    trainer = ComAidTrainer(
        ComAidConfig(dim=24, beta=2),
        TrainingConfig(epochs=8, batch_size=8, optimizer="adagrad",
                       learning_rate=0.1),
        rng=5,
    )
    model = trainer.fit(dataset.kb, word_vectors=vectors)
    ncl = NeuralConceptLinker(
        model, dataset.ontology, LinkerConfig(k=20),
        kb=dataset.kb, word_vectors=vectors,
    )

    methods = {
        "NCL": lambda text: [c.cid for c in ncl.link(text).ranked],
    }
    noble = NobleCoderLinker(dataset.ontology, kb=dataset.kb)
    methods["NC"] = lambda text: [c for c, _ in noble.rank(text, 20)]
    pkduck = PkduckLinker(dataset.ontology, theta=0.1)
    methods["pkduck(0.1)"] = lambda text: [c for c, _ in pkduck.rank(text, 20)]
    lr_plus = LrPlusLinker(dataset.ontology, dataset.kb, rng=2).fit()
    methods["LR+"] = lambda text: [c for c, _ in lr_plus.rank(text, 20)]
    wmd = WmdLinker(dataset.ontology, plain_vectors, prune_to=20)
    methods["WMD"] = lambda text: [c for c, _ in wmd.rank(text, 20)]
    doc2vec = Doc2VecLinker(
        dataset.ontology, config=Doc2VecConfig(dim=24), rng=2
    ).fit()
    methods["Doc2Vec"] = lambda text: [c for c, _ in doc2vec.rank(text, 20)]

    queries = dataset.queries[:120]
    gold = [query.cid for query in queries]
    rows = []
    for name, ranker in methods.items():
        print(f"evaluating {name} ...")
        ranked_lists = [ranker(query.text) for query in queries]
        rows.append(
            [
                name,
                round(top1_accuracy(ranked_lists, gold), 3),
                round(mean_reciprocal_rank(ranked_lists, gold), 3),
            ]
        )
    rows.sort(key=lambda row: -row[1])
    print()
    print(format_table(["method", "accuracy", "MRR"], rows,
                       title="Overall linking quality (cf. paper Fig. 7)"))


if __name__ == "__main__":
    main()
