"""Expert-feedback workflow (the paper's Appendix A "Timon" loop).

Simulates a deployment in which:

1. NCL links incoming queries;
2. uncertain linkages (high loss, or indistinguishable candidates) are
   pooled for expert review;
3. a simulated expert (the dataset's ground truth) resolves pooled
   queries;
4. every few resolutions the controller triggers incremental
   retraining, and accuracy on the previously-uncertain queries
   improves.

Usage::

    python examples/expert_feedback_loop.py
"""

from repro.api import (
    CbowConfig,
    ComAidConfig,
    ComAidTrainer,
    FeedbackController,
    LinkerConfig,
    NeuralConceptLinker,
    TrainingConfig,
    mimic_iii_like,
    pretrain_word_vectors,
)


def main() -> None:
    print("=== Setup: train NCL on the mimic-iii-like dataset")
    dataset = mimic_iii_like(rng=7, query_count=260)
    vectors = pretrain_word_vectors(
        dataset.corpus,
        CbowConfig(dim=20, window=4, epochs=12, negatives=8, subsample=3e-3),
        rng=3,
    )
    trainer = ComAidTrainer(
        ComAidConfig(dim=20, beta=2),
        TrainingConfig(epochs=6, batch_size=8, optimizer="adagrad",
                       learning_rate=0.1),
        rng=5,
    )
    model = trainer.fit(dataset.kb, word_vectors=vectors)
    linker = NeuralConceptLinker(
        model, dataset.ontology, LinkerConfig(k=15),
        kb=dataset.kb, word_vectors=vectors,
    )

    def retrain(pairs):
        print(f"    >> retraining on {len(pairs)} expert feedbacks")
        trainer.continue_training(pairs, epochs=2)
        linker.invalidate_cache()

    controller = FeedbackController(
        dataset.kb,
        loss_threshold=12.0,
        std_threshold=0.3,
        retrain_after=5,
        retrain_hook=retrain,
    )

    print("\n=== Pass 1: link queries, pooling uncertain ones")
    stream = dataset.queries[:120]
    pooled = []
    wrong_before = []
    for query in stream:
        result = linker.link(query.text)
        if controller.submit(result):
            pooled.append(query)
        top = result.top
        if top is None or top.cid != query.cid:
            wrong_before.append(query)
    print(f"    pooled {len(pooled)} uncertain queries "
          f"({len(wrong_before)} of {len(stream)} linked wrong)")

    print("\n=== Expert resolves pooled queries (simulated by ground truth)")
    for query in pooled:
        controller.resolve(query.text, query.cid)
        # retrain_hook fires automatically every `retrain_after` items
    flushed = controller.flush()
    if flushed:
        print(f"    flushed final {flushed} feedbacks")

    print("\n=== Pass 2: re-link the previously-uncertain queries")
    fixed = 0
    for query in pooled:
        result = linker.link(query.text)
        top = result.top
        if top is not None and top.cid == query.cid:
            fixed += 1
    if pooled:
        print(
            f"    {fixed}/{len(pooled)} previously-uncertain queries now "
            f"link correctly ({fixed / len(pooled):.0%})"
        )
    print(f"    controller triggered {controller.retrain_count} retrainings")


if __name__ == "__main__":
    main()
