"""Expert-feedback workflow (the paper's Appendix A "Timon" loop),
run through the zero-downtime model lifecycle subsystem.

Simulates a live deployment in which:

1. a :class:`LinkingService` serves linking traffic from a compiled
   artifact;
2. the attached :class:`LifecycleController` taps every served batch
   and pools uncertain linkages (high loss, or a top-2 log-prob margin
   too narrow to trust) for expert review;
3. a simulated expert (the dataset's ground truth) resolves pooled
   queries — each verdict extends the knowledge base immediately and
   stages a training pair;
4. the controller fine-tunes a *clone* of the serving model on the
   staged pairs, compiles it into a fresh artifact, and stages it as a
   blue/green candidate: shadow-scored on mirrored traffic, promoted
   by an atomic engine flip only if the quality gates pass, rolled
   back automatically otherwise — all while the service keeps
   answering.

Usage::

    python examples/expert_feedback_loop.py
"""

from pathlib import Path
from tempfile import TemporaryDirectory

from repro.api import (
    ComAidConfig,
    ComAidTrainer,
    LifecycleConfig,
    LifecycleController,
    LinkerConfig,
    LinkingService,
    NeuralConceptLinker,
    TrainingConfig,
    compile_artifact,
    mimic_iii_like,
)


def main() -> None:
    print("=== Setup: train NCL and compile the active deployment")
    dataset = mimic_iii_like(rng=7, query_count=260)
    trainer = ComAidTrainer(
        ComAidConfig(dim=20, beta=2),
        TrainingConfig(epochs=6, batch_size=8, optimizer="adagrad",
                       learning_rate=0.1),
        rng=5,
    )
    model = trainer.fit(dataset.kb)

    with TemporaryDirectory(prefix="lifecycle-example-") as tmp:
        workdir = Path(tmp)
        active = workdir / "active"
        compile_artifact(active, model, dataset.ontology, kb=dataset.kb)
        linker = NeuralConceptLinker(
            model,
            dataset.ontology,
            LinkerConfig(k=15, artifact_dir=str(active)),
            kb=dataset.kb,
        )
        service = LinkingService(linker)
        controller = LifecycleController(
            service,
            trainer,
            dataset.kb,
            config=LifecycleConfig(
                enabled=True,
                pool_capacity=64,
                loss_threshold=8.0,
                margin_threshold=1.0,
                retrain_after=8,
                retrain_epochs=2,
                min_shadow_samples=8,
                min_agreement=0.5,
                max_log_prob_drop=10.0,
                max_latency_ratio=50.0,
            ),
            workdir=workdir,
            active_dir=active,
            seed=7,
        )
        service.attach_lifecycle(controller)
        service.start(wait=True)
        try:
            run_loop(service, controller, dataset)
        finally:
            service.stop()


def run_loop(service, controller, dataset) -> None:
    gold = {query.text: query.cid for query in dataset.queries}
    stream = [query.text for query in dataset.queries[:120]]

    print("\n=== Pass 1: serve traffic; the tap pools uncertain queries")
    wrong_before = 0
    for result in service.link_many(stream):
        top = result.top
        if top is None or top.cid != gold[result.query]:
            wrong_before += 1
    pool_stats = controller.pool.stats()
    print(f"    served {pool_stats['observed']} queries, "
          f"pooled {pool_stats['size']} uncertain ones "
          f"({wrong_before} linked wrong)")

    print("\n=== Expert resolves the pool (simulated by ground truth)")
    pooled = controller.pool.drain()
    for item in pooled:
        controller.resolve(item.query, gold[item.query])
    print(f"    resolved {len(pooled)} queries "
          f"({controller.staged_pairs} training pairs staged)")

    print("\n=== Retrain a clone, compile it, stage as the candidate")
    fingerprint_before = service.linker.model_fingerprint
    candidate = controller.retrain()
    candidate_dir = controller.compile_candidate(candidate)
    controller.stage(model=candidate, artifact_dir=candidate_dir)
    print(f"    candidate compiled at {candidate_dir.name}, shadow scoring")

    # Mirrored traffic feeds the shadow scorer; the service keeps
    # serving the old model the whole time.
    service.link_many(stream[:48])

    print("\n=== Promote: gates → atomic flip (or automatic rollback)")
    report = controller.promote()
    shadow = report["shadow"]
    print(f"    shadow: {shadow['samples']} samples, "
          f"agreement {shadow['agreement']:.2f}, "
          f"latency ratio {shadow['latency_ratio']:.1f}x")
    if not report["promoted"]:
        print(f"    promotion refused ({report['reason']}); "
              "the old model keeps serving")
        return
    print(f"    promoted: {fingerprint_before[:12]} -> "
          f"{service.linker.model_fingerprint[:12]}")

    print("\n=== Pass 2: re-link the previously-uncertain queries")
    queries = [item.query for item in pooled]
    fixed = sum(
        1
        for result in service.link_many(queries)
        if result.top is not None and result.top.cid == gold[result.query]
    )
    if pooled:
        print(f"    {fixed}/{len(pooled)} previously-uncertain queries now "
              f"link correctly ({fixed / len(pooled):.0%})")
    status = controller.status()
    print(f"    lifecycle: {status['retrains']} retrain, "
          f"{status['swap']['promotions']} promotion, "
          f"{status['swap']['rollbacks']} rollbacks")


if __name__ == "__main__":
    main()
