"""Run NCL on your own ontology and alias data.

Shows the integration path a real deployment (with a UMLS/ICD licence)
would take: build an :class:`Ontology` from explicit concepts and
edges — here, the paper's own Figure 1(b) fragment — register aliases
(the paper's Figure 3(a) labeled snippets), add unlabeled note
snippets, train, and link the paper's five example queries q1–q5.

Usage::

    python examples/custom_ontology.py
"""

from repro.api import (
    CbowConfig,
    ComAidConfig,
    ComAidTrainer,
    Concept,
    KnowledgeBase,
    LinkerConfig,
    NeuralConceptLinker,
    Ontology,
    SnippetCorpus,
    TrainingConfig,
    pretrain_word_vectors,
)


def build_figure1_ontology() -> Ontology:
    """The disease ontology fragment of the paper's Figure 1(b)."""
    ontology = Ontology()
    ontology.add(Concept("D50", "iron deficiency anemia"))
    ontology.add(
        Concept("D50.0", "iron deficiency anemia secondary to blood loss"),
        parent_cid="D50",
    )
    ontology.add(Concept("D53", "other nutritional anemias"))
    ontology.add(Concept("D53.0", "protein deficiency anemia"), parent_cid="D53")
    ontology.add(Concept("D53.2", "scorbutic anemia"), parent_cid="D53")
    ontology.add(Concept("N18", "chronic kidney disease"))
    ontology.add(Concept("N18.5", "chronic kidney disease, stage 5"), parent_cid="N18")
    ontology.add(Concept("N18.9", "chronic kidney disease, unspecified"), parent_cid="N18")
    ontology.add(Concept("R10", "abdominal and pelvic pain"))
    ontology.add(Concept("R10.0", "acute abdomen"), parent_cid="R10")
    ontology.add(Concept("R10.9", "unspecified abdominal pain"), parent_cid="R10")
    return ontology


def build_knowledge_base(ontology: Ontology) -> KnowledgeBase:
    """Aliases in the style of the paper's Figure 3(a) + UMLS examples."""
    kb = KnowledgeBase(ontology)
    kb.add_alias("D50.0", "anemia, chronic blood loss")
    kb.add_alias("D50.0", "hemorrhagic anemia")
    kb.add_alias("D50.0", "iron deficiency anemia from bleeding")
    kb.add_alias("D53.0", "protein deficiency anaemia")
    kb.add_alias("D53.0", "amino acid deficiency anemia")
    kb.add_alias("D53.2", "vitamin c deficiency anemia")
    kb.add_alias("D53.2", "scurvy anemia")
    kb.add_alias("N18.5", "chronic kidney disease stage five")
    kb.add_alias("N18.5", "end stage kidney disease")
    kb.add_alias("N18.9", "chronic renal disease")
    kb.add_alias("N18.9", "chronic kidney failure unspecified")
    kb.add_alias("R10.0", "acute abdominal syndrome")
    kb.add_alias("R10.0", "pain abdomen acute")
    kb.add_alias("R10.9", "abdomen pain")
    kb.add_alias("R10.9", "abdominal pain site unspecified")
    return kb


def build_notes_corpus(kb: KnowledgeBase) -> SnippetCorpus:
    """Unlabeled physician-note snippets.

    The mixed-register lines ("chronic kidney disease ckd ...") are what
    give CBOW the shorthand <-> formal co-occurrence it needs for query
    rewriting.
    """
    corpus = SnippetCorpus()
    for concept in kb.ontology:
        corpus.add(concept.description, cid=concept.cid)
    for cid, alias in kb.labeled_snippets():
        corpus.add(alias, cid=cid)
    notes = [
        "chronic kidney disease ckd stage 5 on dialysis",
        "ckd 5 followup",
        "known ckd chronic kidney disease",
        "fe def anemia iron deficiency anemia",
        "iron def anemia from menorrhagia",
        "symptomatic anemia from menorrhagia blood loss",
        "anemia menorrhagia chronic blood loss",
        "abdo pain abdominal pain",
        "abdomen pain for investigation",
        "acute abdomen abdominal pain sudden",
        "vitamin c def anemia scorbutic",
        "scurvy vitamin c deficiency",
        "stage 5 kidney failure esrd",
        "renal kidney disease chronic",
        "diabetic nephropathy ckd",
    ]
    for note in notes:
        corpus.add(note)
    return corpus


def main() -> None:
    ontology = build_figure1_ontology()
    kb = build_knowledge_base(ontology)
    corpus = build_notes_corpus(kb)
    print(f"ontology: {ontology.describe()}")
    print(f"aliases: {kb.alias_count()}, unlabeled snippets: {len(corpus)}")

    vectors = pretrain_word_vectors(
        corpus,
        CbowConfig(dim=16, window=6, epochs=40, negatives=5,
                   learning_rate=0.08, subsample=0.0),
        rng=3,
    )
    trainer = ComAidTrainer(
        ComAidConfig(dim=16, beta=2),
        TrainingConfig(epochs=40, batch_size=4, optimizer="adagrad",
                       learning_rate=0.2),
        rng=5,
    )
    model = trainer.fit(kb, word_vectors=vectors)
    linker = NeuralConceptLinker(
        model, ontology, LinkerConfig(k=5), kb=kb, word_vectors=vectors
    )

    # The paper's Figure 1(a) queries and their gold concepts.
    paper_queries = [
        ("ckd 5", "N18.5"),
        ("abdomen pain", "R10.9"),
        ("diabetic nephropathy ckd", "N18.9"),
        ("fe def anemia 2' to menorrhagia", "D50.0"),
        ("symptomatic anemia from menorrhagia", "D50.0"),
    ]
    print("\nLinking the paper's Figure 1(a) queries:")
    for text, gold in paper_queries:
        result = linker.link(text)
        top = result.top
        mark = "OK " if top is not None and top.cid == gold else "MISS"
        shown = top.cid if top is not None else "(none)"
        print(f"  [{mark}] {text!r:45} -> {shown:7} (gold {gold})")
        if result.rewrites:
            print(
                "        rewrites:",
                ", ".join(f"{r.original}->{r.replacement}" for r in result.rewrites),
            )


if __name__ == "__main__":
    main()
