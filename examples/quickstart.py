"""Quickstart: train NCL on a synthetic hospital dataset and link queries.

Runs the full pipeline end to end in about a minute on one CPU:

1. generate the ICD-10-CM-shaped ``hospital-x-like`` dataset
   (ontology + UMLS-style aliases + unlabeled notes corpus + queries);
2. pre-train CBOW word vectors with concept-id injection
   (paper Section 4.2, pre-training phase);
3. train COM-AID on the ⟨canonical, alias⟩ pairs (refinement phase);
4. link a few clinician-style queries with the two-phase online linker
   (paper Section 5) and print the ranked concepts.

Usage::

    python examples/quickstart.py
"""

from repro.api import (
    CbowConfig,
    ComAidConfig,
    ComAidTrainer,
    LinkerConfig,
    NeuralConceptLinker,
    TrainingConfig,
    hospital_x_like,
    pretrain_word_vectors,
)


def main() -> None:
    print("=== 1. Generating the hospital-x-like dataset")
    dataset = hospital_x_like(rng=2018, query_count=200)
    for key, value in dataset.summary().items():
        print(f"    {key}: {value}")

    print("\n=== 2. Pre-training word vectors (CBOW + concept injection)")
    vectors = pretrain_word_vectors(
        dataset.corpus,
        CbowConfig(dim=24, window=4, epochs=15, negatives=10, subsample=3e-3),
        rng=3,
    )
    print(f"    {len(vectors)} word vectors, dim {vectors.dim}")

    print("\n=== 3. Training COM-AID (this is the slow part)")
    trainer = ComAidTrainer(
        ComAidConfig(dim=24, beta=2),
        TrainingConfig(epochs=8, batch_size=8, optimizer="adagrad",
                       learning_rate=0.1),
        rng=5,
    )
    model = trainer.fit(dataset.kb, word_vectors=vectors)
    print(
        f"    {trainer.history.examples} training pairs, "
        f"final mean token loss {trainer.history.final_loss():.3f}, "
        f"{trainer.history.seconds:.0f}s"
    )

    print("\n=== 4. Online linking")
    linker = NeuralConceptLinker(
        model,
        dataset.ontology,
        LinkerConfig(k=20),
        kb=dataset.kb,
        word_vectors=vectors,
    )
    for query in dataset.queries[:8]:
        result = linker.link(query.text)
        top = result.top
        verdict = "?"
        if top is not None:
            verdict = "OK " if top.cid == query.cid else "MISS"
        print(f"\n  query: {query.text!r}  (gold {query.cid})  [{verdict}]")
        if result.rewrites:
            rewrites = ", ".join(
                f"{r.original}->{r.replacement}" for r in result.rewrites
            )
            print(f"    rewrites: {rewrites}")
        for candidate in result.ranked[:3]:
            description = dataset.ontology.get(candidate.cid).description
            print(
                f"    {candidate.cid:<10} logp={candidate.log_prob:7.2f}  "
                f"{description}"
            )

    correct = sum(
        1
        for query in dataset.queries[:100]
        if (top := linker.link(query.text).top) is not None
        and top.cid == query.cid
    )
    print(f"\n=== top-1 accuracy on 100 queries: {correct / 100:.2f}")


if __name__ == "__main__":
    main()
