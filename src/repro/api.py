"""The stable public API of the NCL reproduction (v1).

``repro.api`` is the one import path downstream code — the bundled
examples, the ``tools/`` scripts, and anything built on this package —
should use.  Everything exported here is covered by the API-surface
snapshot check (``tools/check_api.py``): the surface cannot change
without bumping :data:`API_VERSION`, so an import that works today
keeps working, and a breaking change is an explicit, reviewed event
rather than an accident of refactoring.

Two kinds of exports:

* **Task-level helpers** — :func:`train`, :func:`load_linker`,
  :func:`link`, :func:`link_batch`, :func:`compile_artifact` — the
  five verbs that cover the common train → persist → compile → serve
  lifecycle without touching internal modules.
* **Re-exported building blocks** — the config dataclasses, the model
  and trainer, datasets/embeddings/ontology/KB substrates, baselines,
  metrics, persistence, the sharded engine, and the serving layer —
  for code that composes the pieces directly.

Deep imports (``repro.core.linker`` etc.) keep working but are
internal: their layout may change between versions, and importing the
legacy top-level re-exports from ``repro`` itself now emits a
:class:`DeprecationWarning` pointing here.

Exports resolve lazily (PEP 562), so ``from repro.api import
API_VERSION`` costs nothing and circular imports with the serving
layer are impossible.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: Public API version.  ``major.minor``: the minor bumps when the
#: surface grows compatibly, the major when anything is removed or
#: changes shape.  ``tools/check_api.py`` pins the exported surface to
#: this value.
API_VERSION = "1.5"

#: Lazily resolved re-exports: public name → (module, attribute).
_EXPORTS: Dict[str, Tuple[str, str]] = {
    # configuration
    "ComAidConfig": ("repro.core.config", "ComAidConfig"),
    "TrainingConfig": ("repro.core.config", "TrainingConfig"),
    "LinkerConfig": ("repro.core.config", "LinkerConfig"),
    "RetrievalConfig": ("repro.core.config", "RetrievalConfig"),
    "ServingConfig": ("repro.core.config", "ServingConfig"),
    "LifecycleConfig": ("repro.core.config", "LifecycleConfig"),
    "RuntimeConfig": ("repro.core.config", "RuntimeConfig"),
    "PAPER_DEFAULTS": ("repro.core.config", "PAPER_DEFAULTS"),
    # model, trainer, linker, feedback
    "ComAid": ("repro.core.comaid", "ComAid"),
    "ComAidTrainer": ("repro.core.trainer", "ComAidTrainer"),
    "NeuralConceptLinker": ("repro.core.linker", "NeuralConceptLinker"),
    "LinkResult": ("repro.core.linker", "LinkResult"),
    "RankedConcept": ("repro.core.linker", "RankedConcept"),
    "FeedbackController": ("repro.core.feedback", "FeedbackController"),
    # substrates
    "Concept": ("repro.ontology.concept", "Concept"),
    "Ontology": ("repro.ontology.ontology", "Ontology"),
    "KnowledgeBase": ("repro.kb.knowledge_base", "KnowledgeBase"),
    "SnippetCorpus": ("repro.kb.corpus", "SnippetCorpus"),
    "hospital_x_like": ("repro.datasets", "hospital_x_like"),
    "mimic_iii_like": ("repro.datasets", "mimic_iii_like"),
    "snomed_like": ("repro.datasets", "snomed_like"),
    "CbowConfig": ("repro.embeddings", "CbowConfig"),
    "pretrain_word_vectors": ("repro.embeddings", "pretrain_word_vectors"),
    # baselines
    "Doc2VecLinker": ("repro.baselines", "Doc2VecLinker"),
    "Doc2VecConfig": ("repro.baselines.doc2vec", "Doc2VecConfig"),
    "LrPlusLinker": ("repro.baselines", "LrPlusLinker"),
    "NobleCoderLinker": ("repro.baselines", "NobleCoderLinker"),
    "PkduckLinker": ("repro.baselines", "PkduckLinker"),
    "WmdLinker": ("repro.baselines", "WmdLinker"),
    # evaluation
    "mean_reciprocal_rank": ("repro.eval.metrics", "mean_reciprocal_rank"),
    "top1_accuracy": ("repro.eval.metrics", "top1_accuracy"),
    "format_table": ("repro.eval.reporting", "format_table"),
    # persistence
    "save_pipeline": ("repro.core.persistence", "save_pipeline"),
    "load_pipeline": ("repro.core.persistence", "load_pipeline"),
    "verify_pipeline": ("repro.core.persistence", "verify_pipeline"),
    # sharded engine + artifacts
    "ConceptArtifact": ("repro.engine.compile", "ConceptArtifact"),
    "load_artifact": ("repro.engine.compile", "load_artifact"),
    "verify_artifact": ("repro.engine.compile", "verify_artifact"),
    "ShardedConceptEngine": ("repro.engine.shards", "ShardedConceptEngine"),
    "ShardFailure": ("repro.engine.shards", "ShardFailure"),
    # retrieval subsystem
    "InvertedIndex": ("repro.retrieval.inverted", "InvertedIndex"),
    "DenseIndex": ("repro.retrieval.ann", "DenseIndex"),
    "HybridRetriever": ("repro.retrieval.hybrid", "HybridRetriever"),
    # serving
    "LinkingService": ("repro.serving.service", "LinkingService"),
    "create_server": ("repro.serving.server", "create_server"),
    "run_server": ("repro.serving.server", "run_server"),
    # multi-process serving (forked workers over an mmap'd artifact)
    "ProcPoolLinkingService": (
        "repro.serving.service", "ProcPoolLinkingService"
    ),
    "ProcessPool": ("repro.serving.procpool", "ProcessPool"),
    "AsyncFrontend": ("repro.serving.frontend", "AsyncFrontend"),
    "AdmissionQueue": ("repro.serving.frontend", "AdmissionQueue"),
    "ShedError": ("repro.serving.frontend", "ShedError"),
    # model lifecycle (pool → retrain → compile → blue/green swap)
    "LifecycleController": ("repro.lifecycle", "LifecycleController"),
    "ArtifactSwapper": ("repro.lifecycle", "ArtifactSwapper"),
    "ShadowScorer": ("repro.lifecycle", "ShadowScorer"),
    "UncertaintyPool": ("repro.lifecycle", "UncertaintyPool"),
    "LifecycleError": ("repro.lifecycle", "LifecycleError"),
    # observability (cross-process traces, Prometheus exposition, SLOs)
    "Tracer": ("repro.obs.trace", "Tracer"),
    "format_trace": ("repro.obs.trace", "format_trace"),
    "export_trace": ("repro.obs.trace", "export_trace"),
    "graft": ("repro.obs.trace", "graft"),
    "SloTracker": ("repro.obs.slo", "SloTracker"),
    "render_prometheus": ("repro.obs.prom", "render_prometheus"),
    "worker_series": ("repro.obs.prom", "worker_series"),
    "MetricsRegistry": ("repro.serving.metrics", "MetricsRegistry"),
    # multi-tenant serving (tenant registry, routing, cross-ontology map)
    "TenantConfig": ("repro.core.config", "TenantConfig"),
    "TenancyConfig": ("repro.core.config", "TenancyConfig"),
    "TenantRegistry": ("repro.tenancy", "TenantRegistry"),
    "MultiTenantLinkingService": ("repro.tenancy", "MultiTenantLinkingService"),
    "ConceptMapper": ("repro.tenancy", "ConceptMapper"),
    "ConceptMapping": ("repro.tenancy", "ConceptMapping"),
    "pipeline_loader": ("repro.tenancy", "pipeline_loader"),
    "tenant_series": ("repro.obs.prom", "tenant_series"),
    # errors
    "ReproError": ("repro.utils.errors", "ReproError"),
    "TenantError": ("repro.tenancy", "TenantError"),
    "UnknownTenantError": ("repro.tenancy", "UnknownTenantError"),
    "QuotaExceededError": ("repro.tenancy", "QuotaExceededError"),
    "ConfigurationError": ("repro.utils.errors", "ConfigurationError"),
    "DataError": ("repro.utils.errors", "DataError"),
}

__all__ = sorted(
    [
        "API_VERSION",
        "compile_artifact",
        "link",
        "link_batch",
        "load_linker",
        "load_tenants",
        "map_concept",
        "train",
        *_EXPORTS,
    ]
)


def __getattr__(name: str) -> Any:
    """Resolve a re-exported name on first access (PEP 562)."""
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache so later accesses skip this hook
    return value


def __dir__() -> List[str]:
    """Advertise the full lazy surface to ``dir()``/completion."""
    return sorted(set(globals()) | set(__all__))


# -- task-level helpers ------------------------------------------------------


def train(
    kb: "Any",
    model_config: Optional["Any"] = None,
    training_config: Optional["Any"] = None,
    rng: Optional[object] = None,
) -> "Any":
    """Train a COM-AID model over a knowledge base; returns the model.

    Thin wrapper over :class:`repro.core.trainer.ComAidTrainer` with
    defaulted configs — one call from a populated
    :class:`KnowledgeBase` to a trained :class:`ComAid`.
    """
    from repro.core.config import ComAidConfig, TrainingConfig
    from repro.core.trainer import ComAidTrainer

    trainer = ComAidTrainer(
        model_config if model_config is not None else ComAidConfig(),
        training_config if training_config is not None else TrainingConfig(),
        rng=rng,
    )
    return trainer.fit(kb)


def load_linker(
    pipeline_dir: Union[str, "Any"],
    linker_config: Optional["Any"] = None,
    verify: bool = True,
) -> "Any":
    """Load a saved pipeline and return a ready
    :class:`NeuralConceptLinker`.

    ``pipeline_dir`` is a directory written by :func:`save_pipeline`.
    With ``verify`` (the default here — unlike the lower-level loader,
    this is the serving-facing entry point) every artifact is
    checksummed against the manifest first.  ``linker_config`` may set
    ``artifact_dir``/``shards`` to serve from a compiled artifact via
    the sharded engine.
    """
    from repro.core.persistence import load_pipeline

    _, _, _, _, linker = load_pipeline(
        pipeline_dir, linker_config=linker_config, verify=verify
    )
    return linker


def link(
    linker: "Any",
    query: str,
    k: Optional[int] = None,
    tenant: Optional[str] = None,
) -> "Any":
    """Link one query; returns a :class:`LinkResult`.

    ``linker`` is a :class:`NeuralConceptLinker` (or anything with a
    compatible ``link``).  ``tenant`` routes through a multi-tenant
    service from :func:`load_tenants` instead — naming a tenant on a
    plain linker raises :class:`UnknownTenantError`.
    """
    if tenant is not None:
        if not getattr(linker, "multi_tenant", False):
            from repro.tenancy.errors import UnknownTenantError

            raise UnknownTenantError(
                f"tenant {tenant!r} was named but {type(linker).__name__} "
                "is single-tenant; build a MultiTenantLinkingService with "
                "load_tenants()"
            )
        return linker.link(query, k=k, tenant=tenant)
    return linker.link(query, k=k)


def link_batch(
    linker: "Any",
    queries: Sequence[str],
    k: Optional[int] = None,
    tenant: Optional[str] = None,
) -> List["Any"]:
    """Link several queries, amortising concept encodings across them.

    ``tenant`` routes the batch through a multi-tenant service from
    :func:`load_tenants` (see :func:`link`).
    """
    if tenant is not None:
        if not getattr(linker, "multi_tenant", False):
            from repro.tenancy.errors import UnknownTenantError

            raise UnknownTenantError(
                f"tenant {tenant!r} was named but {type(linker).__name__} "
                "is single-tenant; build a MultiTenantLinkingService with "
                "load_tenants()"
            )
        return linker.link_many(queries, k=k, tenant=tenant)
    return linker.link_batch(queries, k=k)


def load_tenants(
    config: "Any",
    base_pipeline: Optional[str] = None,
    loader: Optional["Any"] = None,
    verify: bool = True,
) -> "Any":
    """Build and start a multi-tenant service from a runtime config.

    ``config`` is a :class:`RuntimeConfig` whose ``tenants`` section
    declares at least one tenant; each tenant is loaded lazily from its
    ``pipeline`` directory (falling back to ``base_pipeline``) on its
    first request.  ``loader`` overrides how ``(linker, kb)`` pairs are
    built — the registry's injection point for in-memory tenants.
    Returns a started :class:`MultiTenantLinkingService`; callers own
    ``stop()``.
    """
    from repro.core.config import RuntimeConfig
    from repro.tenancy import (
        MultiTenantLinkingService,
        TenantRegistry,
        pipeline_loader,
    )
    from repro.utils.errors import ConfigurationError

    if not isinstance(config, RuntimeConfig):
        raise ConfigurationError(
            f"config must be a RuntimeConfig, got {type(config).__name__}"
        )
    if not config.tenants.enabled:
        raise ConfigurationError(
            "config declares no tenants; add a 'tenants' section (or serve "
            "single-tenant with load_linker + LinkingService)"
        )
    registry = TenantRegistry(
        config.tenants,
        serving=config.serving,
        linker_config=config.linker,
        loader=(
            loader
            if loader is not None
            else pipeline_loader(base_pipeline, verify=verify)
        ),
    )
    return MultiTenantLinkingService(registry).start()


def map_concept(
    service: "Any",
    source: Optional[str],
    target: Optional[str],
    query: Optional[str] = None,
    cid: Optional[str] = None,
    k: Optional[int] = None,
    limit: int = 5,
) -> Dict[str, Any]:
    """Project a concept from one tenant's ontology into another's.

    ``service`` is a :class:`MultiTenantLinkingService` (from
    :func:`load_tenants`).  Exactly one of ``query`` (linked in the
    source tenant first) or ``cid`` (an already-linked source concept)
    must be given; returns the JSON-ready mapping report (the offline
    twin of ``POST /v1/map``).
    """
    return service.map_concept(
        source, target, query=query, cid=cid, k=k, limit=limit
    )


def compile_artifact(
    directory: Union[str, "Any"],
    model: "Any",
    ontology: "Any",
    kb: Optional["Any"] = None,
    index_aliases: bool = True,
    metadata: Optional[Dict[str, Any]] = None,
    index: str = "none",
    index_seed: int = 0,
) -> "Any":
    """Compile a concept artifact for the sharded engine.

    Encodes every fine-grained concept once (encoder states, structure
    memories, Phase-I index documents + global TF-IDF statistics) into
    a versioned, checksummed directory; see
    :mod:`repro.engine.compile`.  ``index`` additionally compiles the
    sublinear retrieval indexes (``"sparse"``, ``"dense"`` or
    ``"both"``; the default ``"none"`` keeps the pre-retrieval
    content) — required for the ``dense``/``hybrid`` modes of
    :class:`RetrievalConfig`.  Returns the artifact path.
    """
    from repro.engine.compile import compile_artifact as _compile

    return _compile(
        directory,
        model,
        ontology,
        kb=kb,
        index_aliases=index_aliases,
        metadata=metadata,
        index=index,
        index_seed=index_seed,
    )
