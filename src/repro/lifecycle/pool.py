"""Uncertainty pooling over live linking traffic (paper Appendix A).

The paper's expert-feedback loop ("Timon") surfaces the queries the
model is *least sure about* for human labelling: those whose top
candidate has high loss ``-log p(q|c;Θ)``, and those whose top two
candidates are nearly tied.  :class:`UncertaintyPool` implements that
tap as a bounded, thread-safe reservoir fed by
:class:`~repro.core.linker.LinkResult` objects straight off the serving
batch path — O(1) per observation, fixed memory, and statistically
uniform over the uncertain stream once the reservoir is full, so a
traffic burst late in the day cannot silently evict the morning's hard
queries with certainty.

Degraded results (Phase II failed or overran; scores are keyword-only)
are never pooled: their ``log_prob`` values carry no model signal, so
"uncertainty" computed from them would be noise.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.linker import LinkResult
from repro.utils.errors import ConfigurationError


@dataclass
class PooledQuery:
    """One uncertain query awaiting expert resolution.

    ``hits`` counts how many times the same query text re-triggered a
    criterion while pooled — a cheap popularity signal the expert UI
    can sort by (a hard query asked 40 times outranks one asked once).
    """

    query: str
    top_cid: Optional[str]
    top_loss: float
    margin: float
    reason: str
    hits: int = field(default=1)

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-ready view for status payloads and expert tooling."""
        return {
            "query": self.query,
            "top_cid": self.top_cid,
            "top_loss": self.top_loss,
            "margin": self.margin,
            "reason": self.reason,
            "hits": self.hits,
        }


class UncertaintyPool:
    """Bounded reservoir of uncertain queries tapped from live traffic.

    Selection criteria (either pools the query):

    * ``loss``   — the top candidate's ``-log p(q|c;Θ)`` exceeds
      ``loss_threshold`` (the model ranked *something* first but finds
      even that explanation expensive);
    * ``margin`` — the top-2 log-prob gap is below
      ``margin_threshold`` (two candidates are nearly tied, so the
      argmax is a coin flip).

    Once ``capacity`` distinct queries are pooled, admission follows
    reservoir sampling over the uncertain stream: the *n*-th uncertain
    query is kept with probability ``capacity / n``, evicting a
    uniformly random incumbent — deterministic under ``seed``.
    """

    def __init__(
        self,
        capacity: int = 256,
        loss_threshold: float = 10.0,
        margin_threshold: float = 0.5,
        seed: int = 0,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"pool capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.loss_threshold = loss_threshold
        self.margin_threshold = margin_threshold
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._items: Dict[str, PooledQuery] = {}
        self._uncertain_seen = 0
        self._observed = 0
        self._pooled = 0
        self._duplicates = 0
        self._dropped = 0

    def classify(self, result: LinkResult) -> Optional[str]:
        """The criterion ``result`` trips, or None (read-only, no state)."""
        if result.degraded or not result.ranked:
            return None
        top = result.ranked[0]
        if top.loss > self.loss_threshold:
            return "loss"
        if len(result.ranked) >= 2:
            margin = top.log_prob - result.ranked[1].log_prob
            if margin < self.margin_threshold:
                return "margin"
        return None

    def observe(self, result: LinkResult) -> Optional[str]:
        """Feed one linking result; returns the pooling reason or None."""
        reason = self.classify(result)
        with self._lock:
            self._observed += 1
            if reason is None:
                return None
            top = result.ranked[0]
            margin = (
                top.log_prob - result.ranked[1].log_prob
                if len(result.ranked) >= 2
                else math.inf
            )
            existing = self._items.get(result.query)
            if existing is not None:
                existing.hits += 1
                existing.top_cid = top.cid
                existing.top_loss = top.loss
                existing.margin = margin
                existing.reason = reason
                self._duplicates += 1
                return reason
            self._uncertain_seen += 1
            entry = PooledQuery(
                query=result.query,
                top_cid=top.cid,
                top_loss=top.loss,
                margin=margin,
                reason=reason,
            )
            if len(self._items) < self.capacity:
                self._items[result.query] = entry
                self._pooled += 1
                return reason
            slot = int(self._rng.integers(0, self._uncertain_seen))
            if slot >= self.capacity:
                self._dropped += 1
                return reason
            keys = list(self._items)
            evicted = keys[slot % len(keys)]
            del self._items[evicted]
            self._items[result.query] = entry
            self._pooled += 1
            self._dropped += 1
            return reason

    def items(self) -> List[PooledQuery]:
        """Snapshot of the pooled queries (pool unchanged)."""
        with self._lock:
            return list(self._items.values())

    def drain(self) -> List[PooledQuery]:
        """Remove and return everything pooled; the reservoir restarts."""
        with self._lock:
            drained = list(self._items.values())
            self._items.clear()
            # A fresh reservoir epoch: admission probabilities restart
            # from 1 rather than staying depressed by pre-drain history.
            self._uncertain_seen = 0
            return drained

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def stats(self) -> Dict[str, Any]:
        """JSON-ready counters for ``/v1/metrics``."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._items),
                "observed": self._observed,
                "pooled": self._pooled,
                "duplicates": self._duplicates,
                "dropped": self._dropped,
                "loss_threshold": self.loss_threshold,
                "margin_threshold": self.margin_threshold,
            }
