"""Zero-downtime model lifecycle: pool → retrain → compile → swap.

The serving-side half of the paper's Appendix A expert-feedback loop:
uncertain queries are pooled off live traffic, expert-resolved pairs
fine-tune a cloned model, the clone is compiled into a fresh artifact,
and a blue/green swap — shadow scoring, quality gates, automatic
rollback — promotes it into the running service without dropping a
request.
"""

from repro.lifecycle.controller import LifecycleController
from repro.lifecycle.pool import PooledQuery, UncertaintyPool
from repro.lifecycle.shadow import ShadowScorer
from repro.lifecycle.swap import ArtifactSwapper, LifecycleError

__all__ = [
    "ArtifactSwapper",
    "LifecycleController",
    "LifecycleError",
    "PooledQuery",
    "ShadowScorer",
    "UncertaintyPool",
]
