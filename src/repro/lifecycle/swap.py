"""Blue/green artifact swapping inside a live serving process.

:class:`ArtifactSwapper` owns the candidate half of the deployment: a
retrained model plus its freshly compiled artifact are *staged* (loaded,
fingerprint-verified, warmed, shadow-scored on mirrored traffic), then
*promoted* — but only if the shadow report clears every quality gate —
via an atomic engine-pointer flip performed while the service's batcher
worker is excluded from the model.  Anything that goes wrong at any
point (a gate failure, an injected fault, a crash mid-publish) triggers
an automatic :meth:`rollback` that restores the previous engine pointer
first and books a reason code surfaced through ``/v1/metrics``.

Durability discipline matches the persistence layer's (PR 2): the
candidate's bytes are published into the active deployment directory
through :func:`~repro.core.persistence.atomic_directory`, so a crash
mid-publish leaves the active directory byte-identical to the pre-swap
deployment and the in-memory pointer still on the old engine.

In-flight requests are never harmed: the flip happens under the
service's exclusive model lock, which the batcher worker also holds
around every ``link_batch`` call — a batch either completes entirely on
the old engine or starts entirely on the new one.  The linker's
``swap_engine`` replaces (not clears) its encoding caches, so a stale
encoding computed against the old weights can never be served under the
new fingerprint.

Fault probe sites:

* ``lifecycle.promote`` — hit once at promotion entry and once inside
  the staging block of the artifact publish; ``FaultSpec(after=1)``
  therefore simulates a crash mid-publish.
* ``lifecycle.rollback`` — hit *after* the engine pointer has been
  restored, so even a fault injected during rollback cannot leave the
  candidate serving.
"""

from __future__ import annotations

import dataclasses
import shutil
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.core.config import LifecycleConfig
from repro.core.linker import LinkResult, NeuralConceptLinker
from repro.utils.errors import ReproError
from repro.utils.faults import probe
from repro.utils.logging import get_logger

LOGGER = get_logger("lifecycle.swap")


class LifecycleError(ReproError, RuntimeError):
    """An invalid lifecycle state transition (stage while staged, …)."""


class ArtifactSwapper:
    """Blue/green candidate manager around one :class:`LinkingService`.

    States: ``idle`` → (:meth:`stage`) → ``shadowing`` →
    (:meth:`promote`) → ``idle``, with :meth:`rollback` returning to
    ``idle`` from anywhere.  One previous deployment is retained after
    a successful promote for one-deep manual rollback.
    """

    def __init__(
        self,
        service: Any,
        config: Optional[LifecycleConfig] = None,
        active_dir: Optional[Path] = None,
    ) -> None:
        self.service = service
        self.config = config if config is not None else LifecycleConfig()
        self.active_dir = Path(active_dir) if active_dir is not None else None
        self._lock = threading.RLock()
        self._state = "idle"
        self._shadow: Optional[Any] = None
        self._candidate_model: Optional[Any] = None
        self._candidate_engine: Optional[Any] = None
        self._candidate_linker: Optional[NeuralConceptLinker] = None
        self._candidate_dir: Optional[Path] = None
        self._previous: Optional[Tuple[Any, Any]] = None
        self._promotions = 0
        self._rollbacks = 0
        self._rollback_reasons: Dict[str, int] = {}
        self._last_rollback_reason: Optional[str] = None
        self._last_report: Optional[Dict[str, Any]] = None

    # -- state --------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def shadow(self) -> Optional[Any]:
        with self._lock:
            return self._shadow

    # -- staging ------------------------------------------------------------

    def stage(
        self, model: Any, artifact_dir: Path, warm: bool = True
    ) -> Dict[str, Any]:
        """Load + verify a candidate and start shadow-scoring it.

        The artifact is checksum-verified (manifest *and* per-index
        header hashes) and fingerprint-checked against ``model`` before
        any engine is built; a candidate linker is constructed from the
        primary's knowledge base, word vectors, and config so Phase I
        behaviour differs only by the artifact contents.
        """
        from repro.engine.compile import load_artifact
        from repro.engine.shards import ShardedConceptEngine
        from repro.lifecycle.shadow import ShadowScorer

        with self._lock:
            if self._state != "idle":
                raise LifecycleError(
                    f"cannot stage a candidate while {self._state}; promote "
                    "or roll back the current one first"
                )
            self._state = "staging"
        # The heavy lifting (artifact load + verify, engine build, cache
        # warm) runs outside self._lock so the batcher worker's mirror()
        # calls — made while it holds the service's model lock — never
        # stall live traffic behind a staging candidate.
        try:
            primary = self.service.linker
            candidate_dir = Path(artifact_dir)
            artifact = load_artifact(candidate_dir, model=model, verify=True)
            engine = ShardedConceptEngine(
                model,
                primary.ontology,
                artifact,
                shards=primary.config.resolve_shards(),
                retrieval=primary.config.retrieval,
            )
            linker = NeuralConceptLinker(
                model,
                primary.ontology,
                dataclasses.replace(
                    primary.config, artifact_dir=str(candidate_dir)
                ),
                kb=primary._kb,
                word_vectors=primary._word_vectors,
                engine=engine,
            )
            if warm:
                linker.warm_cache()
            shadow = ShadowScorer(
                linker,
                metrics=self.service.metrics,
                tracer=self.service.tracer,
                queue_capacity=self.config.shadow_queue_capacity,
                sample_every=self.config.shadow_sample_every,
            )
        except BaseException:
            with self._lock:
                self._state = "idle"
            raise
        with self._lock:
            self._shadow = shadow
            self._candidate_model = model
            self._candidate_engine = engine
            self._candidate_linker = linker
            self._candidate_dir = candidate_dir
            self._state = "shadowing"
        LOGGER.info(
            "candidate staged from %s (fingerprint %s)",
            candidate_dir,
            engine.fingerprint[:12],
        )
        return self.stats()

    def mirror(self, result: LinkResult) -> None:
        """Mirror one primary result onto the shadowing candidate."""
        with self._lock:
            shadow = self._shadow
            if self._state != "shadowing" or shadow is None:
                return
        top = result.ranked[0] if result.ranked else None
        shadow.submit(
            query=result.query,
            k=len(result.ranked) or None,
            primary_top_cid=top.cid if top is not None else None,
            primary_log_prob=top.log_prob if top is not None else float("-inf"),
            primary_seconds=result.timing.total(),
        )

    # -- gates --------------------------------------------------------------

    def gate_failures(self, report: Dict[str, Any]) -> list:
        """Reason codes for every quality gate ``report`` fails."""
        failures = []
        if report["samples"] < self.config.min_shadow_samples:
            failures.append("gate:samples")
        if report["agreement"] < self.config.min_agreement:
            failures.append("gate:agreement")
        if -report["mean_log_prob_delta"] > self.config.max_log_prob_drop:
            failures.append("gate:log_prob")
        if report["latency_ratio"] > self.config.max_latency_ratio:
            failures.append("gate:latency")
        return failures

    # -- promotion ----------------------------------------------------------

    def promote(self, force: bool = False) -> Dict[str, Any]:
        """Flip to the candidate if (unless ``force``) every gate passes.

        On any failure — gate, injected fault, publish error — the
        previous engine keeps serving and the candidate is discarded
        with a reason code.  Returns the promotion report either way.
        """
        with self._lock:
            if self._state != "shadowing" or self._candidate_linker is None:
                raise LifecycleError("no staged candidate to promote")
            self._state = "promoting"
        try:
            probe("lifecycle.promote")
            shadow = self._shadow
            assert shadow is not None
            shadow.drain()
            report = shadow.report()
            failures = [] if force else self.gate_failures(report)
            if failures:
                self.rollback(failures[0], report=report)
                return {
                    "promoted": False,
                    "reason": failures[0],
                    "gate_failures": failures,
                    "shadow": report,
                }
            shadow.close()
            previous_fingerprint = self.service.linker.model_fingerprint
            if self.active_dir is not None:
                self._publish(self._candidate_dir, self.active_dir)
            # The flip: exclusive() holds the same lock the batcher
            # worker takes around link_batch, so no batch straddles it.
            with self.service.exclusive():
                previous = self.service.linker.swap_engine(
                    self._candidate_model,
                    self._candidate_engine,
                    artifact_dir=(
                        self.active_dir
                        if self.active_dir is not None
                        else self._candidate_dir
                    ),
                )
            with self._lock:
                # Retire the *older* previous deployment only now that
                # the flip has succeeded; keep one generation for
                # manual rollback.
                old_previous = self._previous
                self._previous = previous
                self._promotions += 1
                new_fingerprint = self._candidate_engine.fingerprint
                self._shadow = None
                self._candidate_model = None
                self._candidate_engine = None
                self._candidate_linker = None
                self._candidate_dir = None
                self._state = "idle"
                self._last_report = report
            if old_previous is not None and old_previous[1] is not None:
                old_previous[1].close()
            self.service.metrics.counter("lifecycle_promotions").inc()
            LOGGER.info(
                "promoted candidate %s (was %s)",
                new_fingerprint[:12],
                previous_fingerprint[:12],
            )
            return {
                "promoted": True,
                "reason": "ok",
                "gate_failures": [],
                "shadow": report,
                "fingerprint": new_fingerprint,
                "previous_fingerprint": previous_fingerprint,
            }
        except Exception as error:  # noqa: BLE001 - auto-rollback boundary
            reason = f"fault:{type(error).__name__}"
            self.rollback(reason)
            LOGGER.error("promotion failed, rolled back: %s", error)
            return {
                "promoted": False,
                "reason": reason,
                "gate_failures": [],
                "error": str(error),
            }

    def _publish(self, candidate_dir: Path, active_dir: Path) -> None:
        """Copy the candidate's bytes over the active deployment atomically.

        Runs inside :func:`atomic_directory`: an exception (including
        the second ``lifecycle.promote`` probe hit, i.e. a simulated
        crash mid-publish) removes the staging directory and leaves
        ``active_dir`` byte-identical.
        """
        from repro.core.persistence import atomic_directory

        assert candidate_dir is not None
        with atomic_directory(active_dir) as staging:
            for path in sorted(candidate_dir.iterdir()):
                if path.is_file():
                    shutil.copy2(path, staging / path.name)
            probe("lifecycle.promote")

    # -- rollback -----------------------------------------------------------

    def rollback(
        self, reason: str, report: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Discard the candidate (from any state) and book ``reason``.

        Restores the engine pointer *first* if a promote had already
        flipped it (it cannot have, on the automatic path — the flip is
        the last fallible step — but manual post-promote rollback uses
        the retained previous deployment), then fires the
        ``lifecycle.rollback`` probe, then tears the candidate down.
        """
        with self._lock:
            had_candidate = self._candidate_linker is not None
            previous = self._previous
            if not had_candidate and previous is None:
                raise LifecycleError("nothing to roll back")
        restored = False
        demoted: Optional[Tuple[Any, Any]] = None
        if not had_candidate:
            # Post-promote rollback: re-install the retained previous
            # (model, engine) generation.  exclusive() is taken while
            # NOT holding self._lock — the batcher worker acquires the
            # model lock first and then (via mirror) this swapper's
            # lock, so nesting them the other way would deadlock.
            previous_model, previous_engine = previous
            with self.service.exclusive():
                demoted = self.service.linker.swap_engine(
                    previous_model, previous_engine
                )
            restored = True
        with self._lock:
            if restored:
                self._previous = None
            probe("lifecycle.rollback")
            shadow = self._shadow
            engine = self._candidate_engine
            self._shadow = None
            self._candidate_model = None
            self._candidate_engine = None
            self._candidate_linker = None
            self._candidate_dir = None
            self._state = "idle"
            self._rollbacks += 1
            self._rollback_reasons[reason] = (
                self._rollback_reasons.get(reason, 0) + 1
            )
            self._last_rollback_reason = reason
            if report is not None:
                self._last_report = report
        if shadow is not None:
            shadow.close()
        if engine is not None:
            engine.close()
        if restored and demoted is not None and demoted[1] is not None:
            demoted[1].close()
        self.service.metrics.counter("lifecycle_rollbacks").inc()
        self.service.metrics.counter(f"lifecycle_rollback.{reason}").inc()
        LOGGER.warning("lifecycle rollback: %s", reason)
        return {"rolled_back": True, "reason": reason, "restored": restored}

    # -- teardown / stats ---------------------------------------------------

    def close(self) -> None:
        """Release the candidate (if any) without booking a rollback."""
        with self._lock:
            shadow = self._shadow
            engine = self._candidate_engine
            self._shadow = None
            self._candidate_model = None
            self._candidate_engine = None
            self._candidate_linker = None
            self._candidate_dir = None
            self._state = "idle"
        if shadow is not None:
            shadow.close()
        if engine is not None:
            engine.close()

    def stats(self) -> Dict[str, Any]:
        """JSON-ready state + reason codes for ``/v1/metrics``."""
        with self._lock:
            shadow_report = (
                self._shadow.report() if self._shadow is not None else None
            )
            return {
                "state": self._state,
                "active_fingerprint": self.service.linker.model_fingerprint,
                "candidate_fingerprint": (
                    self._candidate_engine.fingerprint
                    if self._candidate_engine is not None
                    else None
                ),
                "candidate_dir": (
                    str(self._candidate_dir)
                    if self._candidate_dir is not None
                    else None
                ),
                "has_previous": self._previous is not None,
                "promotions": self._promotions,
                "rollbacks": self._rollbacks,
                "rollback_reasons": dict(self._rollback_reasons),
                "last_rollback_reason": self._last_rollback_reason,
                "shadow": shadow_report,
                "last_report": self._last_report,
            }
