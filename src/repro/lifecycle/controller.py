"""The closed model-lifecycle loop: pool → retrain → compile → swap.

:class:`LifecycleController` wires the pieces of Appendix A's
expert-feedback loop around one live :class:`LinkingService`:

1. **Pool** — every served batch flows through :meth:`observe_results`;
   uncertain queries land in an :class:`~repro.lifecycle.pool.UncertaintyPool`.
2. **Resolve** — an expert maps a pooled query to a concept via
   :meth:`resolve`; the alias enters the knowledge base and a training
   pair is staged.
3. **Retrain** — once enough pairs accumulate (``retrain_after``),
   :meth:`retrain` fine-tunes a *clone* of the serving model on the
   staged pairs (the live weights never shift under traffic).
4. **Compile** — :meth:`compile_candidate` freezes the clone into a
   fresh format-3 artifact in the controller's work directory.
5. **Swap** — :meth:`stage` / :meth:`promote` hand the candidate to the
   :class:`~repro.lifecycle.swap.ArtifactSwapper`: shadow scoring on
   mirrored traffic, gated promotion, automatic rollback.

The controller is transport-agnostic: the HTTP admin endpoints, the
``repro lifecycle`` CLI drill, and tests all drive this one object.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.comaid import ComAid
from repro.core.config import LifecycleConfig
from repro.core.linker import LinkResult
from repro.core.trainer import ComAidTrainer
from repro.kb.knowledge_base import KnowledgeBase, TrainingPair
from repro.lifecycle.pool import UncertaintyPool
from repro.lifecycle.swap import ArtifactSwapper, LifecycleError
from repro.text.tokenize import normalize_text
from repro.utils.errors import DataError
from repro.utils.logging import get_logger

LOGGER = get_logger("lifecycle.controller")


class LifecycleController:
    """Owns the pool, the staged training pairs, and the swapper."""

    def __init__(
        self,
        service: Any,
        trainer: ComAidTrainer,
        kb: KnowledgeBase,
        config: Optional[LifecycleConfig] = None,
        workdir: Union[str, Path, None] = None,
        active_dir: Optional[Path] = None,
        seed: int = 0,
    ) -> None:
        self.service = service
        self.trainer = trainer
        self.kb = kb
        self.config = config if config is not None else LifecycleConfig()
        self.workdir = Path(workdir) if workdir is not None else None
        self.pool = UncertaintyPool(
            capacity=self.config.pool_capacity,
            loss_threshold=self.config.loss_threshold,
            margin_threshold=self.config.margin_threshold,
            seed=seed,
        )
        self.swapper = ArtifactSwapper(
            service, config=self.config, active_dir=active_dir
        )
        self._lock = threading.Lock()
        self._staged_pairs: List[TrainingPair] = []
        self._resolved = 0
        self._retrains = 0
        self._compiles = 0
        self._candidate_model: Optional[ComAid] = None

    # -- traffic tap --------------------------------------------------------

    def observe_results(self, results: Sequence[LinkResult]) -> None:
        """Feed served results into the pool and the shadow mirror.

        Called from the service's batch path; must stay cheap and must
        never raise (the service wraps it defensively regardless).
        """
        for result in results:
            self.pool.observe(result)
            self.swapper.mirror(result)

    # -- expert feedback ----------------------------------------------------

    def resolve(self, query: str, cid: str) -> TrainingPair:
        """Expert verdict: ``query`` means concept ``cid``.

        Registers the alias in the knowledge base (so Phase I keyword
        retrieval benefits immediately, before any retrain) and stages
        a training pair for the next fine-tune.
        """
        concept = self.kb.ontology.get(cid)
        normalized = normalize_text(query)
        if not normalized:
            raise DataError(f"query {query!r} normalises to nothing")
        self.kb.add_alias(cid, normalized)
        pair = TrainingPair(
            cid=cid,
            canonical=normalize_text(concept.description),
            alias=normalized,
        )
        with self._lock:
            self._staged_pairs.append(pair)
            self._resolved += 1
        return pair

    @property
    def staged_pairs(self) -> int:
        with self._lock:
            return len(self._staged_pairs)

    @property
    def retrain_due(self) -> bool:
        """Whether enough resolved pairs have accumulated to retrain."""
        return self.staged_pairs >= self.config.retrain_after

    # -- retrain + compile --------------------------------------------------

    def retrain(
        self,
        epochs: Optional[int] = None,
        checkpoint_dir: Union[str, Path, None] = None,
        checkpoint_every: int = 0,
    ) -> ComAid:
        """Fine-tune a clone of the serving model on the staged pairs.

        The clone (not the live model) is adopted into the trainer so
        serving traffic keeps scoring against frozen weights while the
        background epochs run.  Staged pairs are consumed.
        """
        with self._lock:
            pairs = list(self._staged_pairs)
            self._staged_pairs = []
        if not pairs:
            raise DataError("no staged training pairs; resolve queries first")
        live = self.service.linker.model
        clone = ComAid(live.config, live.vocab, rng=0)
        clone.load_state_dict(live.state_dict())
        self.trainer.adopt(clone, self.kb.ontology)
        self.trainer.continue_training(
            pairs,
            epochs=epochs if epochs is not None else self.config.retrain_epochs,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
        )
        with self._lock:
            self._retrains += 1
            self._candidate_model = clone
        LOGGER.info(
            "retrained candidate on %d pairs (%d epochs)",
            len(pairs),
            epochs if epochs is not None else self.config.retrain_epochs,
        )
        return clone

    def compile_candidate(
        self, model: Optional[ComAid] = None
    ) -> Path:
        """Freeze the candidate model into a fresh format-3 artifact."""
        from repro.engine.compile import compile_artifact

        if self.workdir is None:
            raise LifecycleError(
                "controller has no workdir; pass one to compile candidates"
            )
        with self._lock:
            candidate = model if model is not None else self._candidate_model
            generation = self._compiles
            self._compiles += 1
        if candidate is None:
            raise LifecycleError("no retrained candidate model to compile")
        target = self.workdir / f"candidate-{generation:04d}"
        primary = self.service.linker
        compile_artifact(
            target,
            candidate,
            self.kb.ontology,
            kb=self.kb,
            index_aliases=primary.config.index_aliases,
            metadata={"lifecycle_generation": generation},
            index=self.config.compile_index,
        )
        with self._lock:
            self._candidate_model = candidate
        return target

    # -- swap delegation ----------------------------------------------------

    def stage(
        self,
        model: Optional[ComAid] = None,
        artifact_dir: Union[str, Path, None] = None,
        warm: bool = True,
    ) -> Dict[str, Any]:
        """Stage the candidate (defaults to the last retrain + compile)."""
        with self._lock:
            candidate = model if model is not None else self._candidate_model
        if candidate is None:
            raise LifecycleError("no candidate model; retrain first")
        if artifact_dir is None:
            artifact_dir = self.compile_candidate(candidate)
        return self.swapper.stage(candidate, Path(artifact_dir), warm=warm)

    def promote(self, force: bool = False) -> Dict[str, Any]:
        """Gate the staged candidate on its shadow report and flip."""
        return self.swapper.promote(force=force)

    def rollback(self, reason: str = "manual") -> Dict[str, Any]:
        """Discard the candidate / restore the previous generation."""
        return self.swapper.rollback(reason)

    # -- introspection / teardown -------------------------------------------

    def status(self) -> Dict[str, Any]:
        """One JSON-ready report for ``GET /v1/admin/lifecycle``."""
        with self._lock:
            staged = len(self._staged_pairs)
            resolved = self._resolved
            retrains = self._retrains
            compiles = self._compiles
            has_candidate = self._candidate_model is not None
        return {
            "state": self.swapper.state,
            "pool": self.pool.stats(),
            "staged_pairs": staged,
            "resolved": resolved,
            "retrains": retrains,
            "compiles": compiles,
            "retrain_due": staged >= self.config.retrain_after,
            "has_candidate_model": has_candidate,
            "swap": self.swapper.stats(),
            "config": {
                "retrain_after": self.config.retrain_after,
                "retrain_epochs": self.config.retrain_epochs,
                "min_shadow_samples": self.config.min_shadow_samples,
                "min_agreement": self.config.min_agreement,
                "max_log_prob_drop": self.config.max_log_prob_drop,
                "max_latency_ratio": self.config.max_latency_ratio,
            },
        }

    def close(self) -> None:
        """Release the swapper's candidate resources (idempotent)."""
        self.swapper.close()
