"""Shadow scoring: mirror live traffic onto a candidate linker.

Before a retrained model may serve, it must prove itself on the
traffic the incumbent is *actually* answering — not a held-out set
that may have drifted.  :class:`ShadowScorer` runs the candidate on a
background thread fed by a bounded queue of mirrored queries; for each
it records whether the candidate agrees with the primary's top
concept, the paired top-1 log-prob delta, and the latency ratio.  The
promotion gate in :mod:`repro.lifecycle.swap` reads :meth:`report`.

Mirroring is strictly best-effort and can never hurt the live path:
``submit`` never blocks (a full queue increments a drop counter), the
worker catches every ``Exception`` (an injected fault or a crashing
candidate books a shadow error, it does not unwind serving), and the
whole scorer lives off-thread from the batcher worker.

Each shadow execution opens a ``lifecycle.shadow`` root trace (when a
tracer is supplied), so the candidate's CR/ED spans land in
``/v1/traces`` next to the primary's — the operator can eyeball the
two span trees side by side before promoting.  The probe site
``lifecycle.shadow`` sits inside the worker: a ``delay`` fault spec
there inflates the candidate's latency ratio, which is how the drill
suite proves the latency gate actually blocks a slow candidate.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.linker import NeuralConceptLinker
from repro.obs import trace
from repro.obs.trace import Tracer
from repro.serving.metrics import MetricsRegistry
from repro.utils.errors import ConfigurationError
from repro.utils.faults import probe
from repro.utils.logging import get_logger

LOGGER = get_logger("lifecycle.shadow")


@dataclass(frozen=True)
class _ShadowItem:
    query: str
    k: Optional[int]
    primary_top_cid: Optional[str]
    primary_log_prob: float
    primary_seconds: float


class ShadowScorer:
    """Background mirror-scorer for one candidate linker."""

    def __init__(
        self,
        linker: NeuralConceptLinker,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        queue_capacity: int = 128,
        sample_every: int = 1,
    ) -> None:
        if queue_capacity <= 0:
            raise ConfigurationError(
                f"shadow queue capacity must be positive, got {queue_capacity}"
            )
        if sample_every <= 0:
            raise ConfigurationError(
                f"sample_every must be positive, got {sample_every}"
            )
        self.linker = linker
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.sample_every = sample_every
        self._queue: "queue.Queue[Optional[_ShadowItem]]" = queue.Queue(
            maxsize=queue_capacity
        )
        self._lock = threading.Lock()
        self._closed = False
        self._seen = 0
        self._submitted = 0
        self._dropped = 0
        self._scored = 0
        self._agreed = 0
        self._errors = 0
        self._delta_sum = 0.0
        self._primary_seconds = 0.0
        self._shadow_seconds = 0.0
        self._thread = threading.Thread(
            target=self._run, name="lifecycle-shadow", daemon=True
        )
        self._thread.start()

    # -- producer side ------------------------------------------------------

    def submit(
        self,
        query: str,
        k: Optional[int],
        primary_top_cid: Optional[str],
        primary_log_prob: float,
        primary_seconds: float,
    ) -> bool:
        """Mirror one served query onto the candidate (never blocks)."""
        with self._lock:
            if self._closed:
                return False
            self._seen += 1
            if (self._seen - 1) % self.sample_every != 0:
                return False
        item = _ShadowItem(
            query=query,
            k=k,
            primary_top_cid=primary_top_cid,
            primary_log_prob=primary_log_prob,
            primary_seconds=primary_seconds,
        )
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            with self._lock:
                self._dropped += 1
            self.metrics.counter("lifecycle_shadow_dropped").inc()
            return False
        with self._lock:
            self._submitted += 1
        return True

    # -- worker side --------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            root = (
                self.tracer.start_trace("lifecycle.shadow", query=item.query)
                if self.tracer is not None
                else None
            )
            try:
                with trace.attach(root):
                    started = time.monotonic()
                    probe("lifecycle.shadow")
                    result = self.linker.link_batch(
                        [item.query], k=[item.k]
                    )[0]
                    elapsed = time.monotonic() - started
            except Exception as error:  # noqa: BLE001 - shadow must not unwind
                with self._lock:
                    self._errors += 1
                self.metrics.counter("lifecycle_shadow_errors").inc()
                LOGGER.warning(
                    "shadow scoring failed for %r: %s", item.query, error
                )
                continue
            finally:
                if root is not None:
                    root.end()
            top = result.ranked[0] if result.ranked else None
            agree = (
                top is not None
                and item.primary_top_cid is not None
                and top.cid == item.primary_top_cid
            )
            delta = (
                top.log_prob - item.primary_log_prob
                if top is not None
                else float("-inf")
            )
            with self._lock:
                self._scored += 1
                if agree:
                    self._agreed += 1
                if delta != float("-inf"):
                    self._delta_sum += delta
                self._primary_seconds += item.primary_seconds
                self._shadow_seconds += elapsed
            self.metrics.counter("lifecycle_shadow_total").inc()
            if agree:
                self.metrics.counter("lifecycle_shadow_agree").inc()
            self.metrics.histogram("lifecycle_shadow_seconds").observe(elapsed)

    # -- reporting ----------------------------------------------------------

    def drain(self, timeout: float = 5.0) -> None:
        """Block until every queued item has been scored (for tests)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                done = self._scored + self._errors >= self._submitted
            if done and self._queue.empty():
                return
            time.sleep(0.005)

    def report(self) -> Dict[str, Any]:
        """Paired comparison of candidate vs primary over mirrored traffic.

        ``agreement`` is top-1 concept agreement over *scored* samples;
        ``mean_log_prob_delta`` is candidate minus primary (negative =
        the candidate is less confident on the primary's traffic);
        ``latency_ratio`` is mean shadow seconds over mean primary
        seconds (1.0 = parity, conservatively +inf when the primary
        side reported zero time).
        """
        with self._lock:
            scored = self._scored
            agreement = self._agreed / scored if scored else 0.0
            delta = self._delta_sum / scored if scored else 0.0
            if scored and self._primary_seconds > 0.0:
                latency_ratio = self._shadow_seconds / self._primary_seconds
            elif scored:
                latency_ratio = float("inf")
            else:
                latency_ratio = 0.0
            return {
                "samples": scored,
                "agreement": agreement,
                "mean_log_prob_delta": delta,
                "latency_ratio": latency_ratio,
                "errors": self._errors,
                "dropped": self._dropped,
                "submitted": self._submitted,
                "seen": self._seen,
            }

    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker (idempotent); queued-but-unscored items are lost."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)
        self._thread.join(timeout=timeout)
