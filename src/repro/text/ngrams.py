"""Character and word n-gram extraction.

The extended logistic-regression baseline (paper Section 6.1) uses
character-bigram features following Tsuruoka et al. [43]; the pkduck
baseline uses token-level comparisons.  Both consume these helpers.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple


def char_ngrams(text: str, n: int = 2, pad: bool = True) -> List[str]:
    """Character n-grams of ``text``.

    With ``pad=True`` the string is wrapped in ``#`` sentinels so that
    prefixes/suffixes produce distinctive grams (``#c``, ``a#`` for
    ``"ca"``), mirroring the dictionary-lookup feature design of [43].
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    padded = f"#{text}#" if pad else text
    if len(padded) < n:
        return [padded] if padded else []
    return [padded[i : i + n] for i in range(len(padded) - n + 1)]


def word_ngrams(tokens: Sequence[str], n: int = 2) -> List[Tuple[str, ...]]:
    """Word n-grams of a token sequence (empty list if too short)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if len(tokens) < n:
        return []
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def ngram_profile(text: str, n: int = 2) -> Counter:
    """Multiset of character n-grams, for cosine/Jaccard style features."""
    return Counter(char_ngrams(text, n=n))


def ngram_jaccard(left: str, right: str, n: int = 2) -> float:
    """Jaccard similarity of the two strings' n-gram multisets."""
    left_profile = ngram_profile(left, n=n)
    right_profile = ngram_profile(right, n=n)
    if not left_profile and not right_profile:
        return 1.0
    intersection = sum((left_profile & right_profile).values())
    union = sum((left_profile | right_profile).values())
    return intersection / union if union else 0.0
