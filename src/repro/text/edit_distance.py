"""String edit distances.

Online query rewriting (paper Section 5, Phase I) falls back to a
*textually similar* in-vocabulary word when an out-of-vocabulary query
word has no embedding, "e.g. using edit-distance" — fixing typos like
``neuropaty -> neuropathy``.  Damerau-Levenshtein additionally treats
adjacent transpositions (a very common typo class) as one edit.
"""

from __future__ import annotations

from typing import Optional


def levenshtein(left: str, right: str, max_distance: Optional[int] = None) -> int:
    """Classic Levenshtein distance with an optional early-exit band.

    When ``max_distance`` is given and the true distance exceeds it,
    ``max_distance + 1`` is returned (callers only need "too far").
    """
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    if max_distance is not None and abs(len(left) - len(right)) > max_distance:
        return max_distance + 1

    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i] + [0] * len(right)
        row_min = current[0]
        for j, right_char in enumerate(right, start=1):
            substitution = previous[j - 1] + (left_char != right_char)
            current[j] = min(previous[j] + 1, current[j - 1] + 1, substitution)
            row_min = min(row_min, current[j])
        if max_distance is not None and row_min > max_distance:
            return max_distance + 1
        previous = current
    return previous[-1]


def damerau_levenshtein(left: str, right: str) -> int:
    """Optimal-string-alignment distance (adjacent transposition = 1)."""
    if left == right:
        return 0
    rows, cols = len(left) + 1, len(right) + 1
    table = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        table[i][0] = i
    for j in range(cols):
        table[0][j] = j
    for i in range(1, rows):
        for j in range(1, cols):
            cost = int(left[i - 1] != right[j - 1])
            table[i][j] = min(
                table[i - 1][j] + 1,
                table[i][j - 1] + 1,
                table[i - 1][j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and left[i - 1] == right[j - 2]
                and left[i - 2] == right[j - 1]
            ):
                table[i][j] = min(table[i][j], table[i - 2][j - 2] + 1)
    return table[-1][-1]


def normalized_levenshtein(left: str, right: str) -> float:
    """Levenshtein scaled to [0, 1] by the longer string's length."""
    if not left and not right:
        return 0.0
    return levenshtein(left, right) / max(len(left), len(right))
