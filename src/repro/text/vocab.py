"""Word vocabulary with special tokens for the encoder/decoder.

The COM-AID decoder factorises ``p(q|c)`` as a product of per-word
softmaxes over the vocabulary (paper Eq. 3 and Eq. 9), so every model
component shares one :class:`Vocabulary` mapping words to contiguous
integer ids.  ``<pad>``, ``<bos>``, ``<eos>`` and ``<unk>`` occupy the
first four ids.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

PAD_TOKEN = "<pad>"
BOS_TOKEN = "<bos>"
EOS_TOKEN = "<eos>"
UNK_TOKEN = "<unk>"
SPECIAL_TOKENS: Tuple[str, ...] = (PAD_TOKEN, BOS_TOKEN, EOS_TOKEN, UNK_TOKEN)


class Vocabulary:
    """Bidirectional word <-> id mapping with frequency bookkeeping.

    Construct either incrementally with :meth:`add` / :meth:`add_all`,
    or in one shot with :meth:`from_corpus` which supports minimum-count
    and maximum-size pruning (rarest words dropped first, ties broken
    alphabetically for determinism).
    """

    def __init__(self, include_specials: bool = True) -> None:
        self._word_to_id: Dict[str, int] = {}
        self._id_to_word: List[str] = []
        self._counts: Counter = Counter()
        self._include_specials = include_specials
        if include_specials:
            for token in SPECIAL_TOKENS:
                self._register(token)

    # -- construction -------------------------------------------------

    def _register(self, word: str) -> int:
        word_id = len(self._id_to_word)
        self._word_to_id[word] = word_id
        self._id_to_word.append(word)
        return word_id

    def add(self, word: str, count: int = 1) -> int:
        """Add ``word`` (idempotent), bump its count, return its id."""
        if not word:
            raise ValueError("cannot add an empty word to the vocabulary")
        self._counts[word] += count
        existing = self._word_to_id.get(word)
        if existing is not None:
            return existing
        return self._register(word)

    def add_all(self, words: Iterable[str]) -> None:
        """Add every word in ``words`` (each bumping its count)."""
        for word in words:
            self.add(word)

    @classmethod
    def from_corpus(
        cls,
        token_sequences: Iterable[Sequence[str]],
        min_count: int = 1,
        max_size: Optional[int] = None,
        include_specials: bool = True,
    ) -> "Vocabulary":
        """Build a vocabulary from tokenised snippets.

        Words below ``min_count`` are dropped; if ``max_size`` is given
        (counting special tokens), only the most frequent words are
        kept.
        """
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        counts: Counter = Counter()
        for tokens in token_sequences:
            counts.update(tokens)
        vocab = cls(include_specials=include_specials)
        budget = None
        if max_size is not None:
            budget = max_size - len(vocab)
            if budget < 0:
                raise ValueError(
                    f"max_size={max_size} is smaller than the "
                    f"{len(vocab)} special tokens"
                )
        # Most frequent first; alphabetical tie-break keeps ids stable
        # across runs.
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        for word, count in ranked:
            if count < min_count:
                continue
            if budget is not None and budget <= 0:
                break
            vocab.add(word, count=count)
            if budget is not None:
                budget -= 1
        return vocab

    # -- lookups ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._id_to_word)

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_word)

    def id_of(self, word: str) -> int:
        """Id of ``word``; unknown words map to ``<unk>``.

        Raises ``KeyError`` for unknown words when the vocabulary was
        built without special tokens.
        """
        word_id = self._word_to_id.get(word)
        if word_id is not None:
            return word_id
        if self._include_specials:
            return self._word_to_id[UNK_TOKEN]
        raise KeyError(word)

    def word_of(self, word_id: int) -> str:
        """The word with id ``word_id`` (IndexError when out of range)."""
        if not 0 <= word_id < len(self._id_to_word):
            raise IndexError(f"word id {word_id} out of range [0, {len(self)})")
        return self._id_to_word[word_id]

    def count_of(self, word: str) -> int:
        """Accumulated frequency of ``word`` (0 when unknown)."""
        return self._counts.get(word, 0)

    def encode(self, tokens: Sequence[str]) -> List[int]:
        """Map tokens to ids (unknowns -> ``<unk>``)."""
        return [self.id_of(token) for token in tokens]

    def decode(self, ids: Sequence[int], skip_specials: bool = True) -> List[str]:
        """Map ids back to words, dropping specials by default."""
        words = [self.word_of(word_id) for word_id in ids]
        if skip_specials:
            specials = set(SPECIAL_TOKENS)
            words = [word for word in words if word not in specials]
        return words

    @property
    def words(self) -> Tuple[str, ...]:
        return tuple(self._id_to_word)

    @property
    def has_specials(self) -> bool:
        return self._include_specials

    # -- special ids ---------------------------------------------------

    def _special_id(self, token: str) -> int:
        if not self._include_specials:
            raise KeyError(f"vocabulary built without special token {token}")
        return self._word_to_id[token]

    @property
    def pad_id(self) -> int:
        return self._special_id(PAD_TOKEN)

    @property
    def bos_id(self) -> int:
        return self._special_id(BOS_TOKEN)

    @property
    def eos_id(self) -> int:
        return self._special_id(EOS_TOKEN)

    @property
    def unk_id(self) -> int:
        return self._special_id(UNK_TOKEN)

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Serialisable snapshot (see :meth:`from_dict`)."""
        return {
            "words": list(self._id_to_word),
            "counts": dict(self._counts),
            "include_specials": self._include_specials,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Vocabulary":
        vocab = cls(include_specials=False)
        vocab._include_specials = bool(payload["include_specials"])
        for word in payload["words"]:  # type: ignore[union-attr]
            vocab._register(str(word))
        vocab._counts = Counter(
            {str(word): int(count) for word, count in payload["counts"].items()}  # type: ignore[union-attr]
        )
        return vocab
