"""Text processing substrate: tokenisation, vocabularies, string
distances, n-grams, and the TF-IDF inverted index used by the online
candidate-retrieval phase (paper Section 5, Phase I).
"""

from repro.text.edit_distance import damerau_levenshtein, levenshtein, normalized_levenshtein
from repro.text.ngrams import char_ngrams, word_ngrams
from repro.text.tfidf import TfIdfIndex, TfIdfMatch
from repro.text.tokenize import Tokenizer, normalize_text, tokenize
from repro.text.vocab import Vocabulary

__all__ = [
    "TfIdfIndex",
    "TfIdfMatch",
    "Tokenizer",
    "Vocabulary",
    "char_ngrams",
    "damerau_levenshtein",
    "levenshtein",
    "normalized_levenshtein",
    "normalize_text",
    "tokenize",
    "word_ngrams",
]
