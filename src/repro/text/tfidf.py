"""TF-IDF inverted index for Phase-I candidate retrieval.

Paper Section 5, Phase I: *"We generate candidate concepts using keyword
search.  More specifically, we compute the cosine similarity between
each concept c and query q with the TF-IDF weighting scheme, and then
return the top-k concepts with the largest similarity as the
candidates."*

The index stores one document per concept (its canonical description,
optionally extended with aliases) and answers top-k cosine queries via
an inverted list, so query cost scales with posting-list length rather
than corpus size — this is what the Figure 11 CR-time measurements
exercise.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.utils.errors import NotFittedError


@dataclass(frozen=True)
class TfIdfMatch:
    """One retrieval hit: the document key and its cosine score."""

    key: Hashable
    score: float


@dataclass(frozen=True)
class CorpusStats:
    """Document frequencies of a whole corpus, detached from any index.

    A sharded deployment partitions the concept documents across
    several :class:`TfIdfIndex` instances but must keep every shard's
    scores on the *global* scale — IDF computed over a shard's slice
    would weight terms differently per shard and break scatter-gather
    merging.  ``CorpusStats`` carries the global ``df`` / ``doc_count``
    so each shard can be fitted with :meth:`TfIdfIndex.fit` s
    ``stats=`` override and produce cosines bit-identical to one
    monolithic index over the full corpus.
    """

    doc_count: int
    df: Mapping[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (used by the compiled concept artifact)."""
        return {"doc_count": self.doc_count, "df": dict(self.df)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CorpusStats":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            doc_count=int(payload["doc_count"]),
            df={str(term): int(count) for term, count in dict(payload["df"]).items()},
        )


class TfIdfIndex:
    """Inverted index with ltc-style TF-IDF weighting.

    Term weight: ``(1 + log tf) * (1 + log((N + 1) / (df + 1)))`` with
    document-length (L2) normalisation; query weights use the same
    scheme.  The additive 1 keeps the IDF strictly positive even for a
    term occurring in every document (df = N), and the smoothed
    denominator keeps query-only terms harmless instead of raising.
    """

    def __init__(self) -> None:
        self._postings: Dict[str, List[Tuple[int, float]]] = {}
        self._keys: List[Hashable] = []
        self._norms: List[float] = []
        self._doc_count = 0
        self._df: Counter = Counter()
        self._fitted = False

    # -- construction -------------------------------------------------

    def fit(
        self,
        documents: Iterable[Tuple[Hashable, Sequence[str]]],
        stats: Optional[CorpusStats] = None,
    ) -> "TfIdfIndex":
        """Index ``(key, tokens)`` documents. Replaces any prior state.

        ``stats`` substitutes external corpus statistics for the ones
        derived from ``documents``: IDF weights (document *and* query
        side) are then computed from the supplied global ``df`` /
        ``doc_count`` instead of the indexed slice.  This is how a
        shard over a subset of the concept documents produces cosines
        identical to a monolithic index over all of them.
        """
        staged: List[Tuple[Hashable, Counter]] = []
        self._df = Counter()
        for key, tokens in documents:
            term_freq = Counter(tokens)
            staged.append((key, term_freq))
            self._df.update(term_freq.keys())
        if stats is not None:
            self._df = Counter(stats.df)
            self._doc_count = stats.doc_count
        else:
            self._doc_count = len(staged)
        self._keys = []
        self._norms = []
        self._postings = {}
        for doc_id, (key, term_freq) in enumerate(staged):
            self._keys.append(key)
            weights = {
                term: self._tf_weight(count) * self._idf(term)
                for term, count in term_freq.items()
            }
            norm = math.sqrt(sum(weight * weight for weight in weights.values()))
            self._norms.append(norm if norm > 0 else 1.0)
            for term, weight in weights.items():
                self._postings.setdefault(term, []).append((doc_id, weight))
        self._fitted = True
        return self

    def _tf_weight(self, count: int) -> float:
        return 1.0 + math.log(count) if count > 0 else 0.0

    def _idf(self, term: str) -> float:
        return 1.0 + math.log(
            (self._doc_count + 1) / (self._df.get(term, 0) + 1)
        )

    # -- queries -------------------------------------------------------

    def search(self, tokens: Sequence[str], k: int = 10) -> List[TfIdfMatch]:
        """Top-``k`` documents by cosine similarity to ``tokens``.

        Fewer than ``k`` matches are returned when fewer documents share
        any term with the query (the paper observes exactly this
        sub-linear candidate growth for large k in Figure 11).
        """
        if not self._fitted:
            raise NotFittedError("TfIdfIndex.search called before fit")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        # Terms are admitted by *corpus* document frequency, not by
        # membership in this index's postings: under external stats a
        # term can exist in the corpus but have no postings in this
        # shard, and it must still contribute to the query norm or the
        # shard's cosines would leave the global scale.  Without
        # external stats df > 0 iff the term has postings, so the
        # behaviour is unchanged.
        query_freq = Counter(tokens)
        query_weights = {
            term: self._tf_weight(count) * self._idf(term)
            for term, count in query_freq.items()
            if self._df.get(term, 0) > 0
        }
        if not query_weights:
            return []
        query_norm = math.sqrt(
            sum(weight * weight for weight in query_weights.values())
        )
        scores: Dict[int, float] = {}
        for term, query_weight in query_weights.items():
            for doc_id, doc_weight in self._postings.get(term, ()):
                scores[doc_id] = scores.get(doc_id, 0.0) + query_weight * doc_weight
        # Sort by the exact cosine that is reported: dividing by the
        # query norm inside the sort key keeps ties and near-ties in
        # the same order the caller observes (raw/norm and
        # raw/(norm*qnorm) can round to differently-ordered floats).
        cosines = {
            doc_id: raw / (self._norms[doc_id] * query_norm)
            for doc_id, raw in scores.items()
        }
        ranked = sorted(cosines.items(), key=lambda item: (-item[1], item[0]))
        return [
            TfIdfMatch(key=self._keys[doc_id], score=cosine)
            for doc_id, cosine in ranked[:k]
        ]

    def postings_examined(self, tokens: Sequence[str]) -> int:
        """Number of postings a query over ``tokens`` would touch.

        Exposed for the efficiency study: Figure 11(c,d) attributes
        CR-time growth with |q| to "more postings in the inverted index
        are examined".
        """
        if not self._fitted:
            raise NotFittedError("TfIdfIndex.postings_examined called before fit")
        return sum(
            len(self._postings.get(term, ())) for term in set(tokens)
        )

    # -- introspection --------------------------------------------------

    def stats(self) -> CorpusStats:
        """This index's corpus statistics, reusable as a ``fit`` override."""
        if not self._fitted:
            raise NotFittedError("TfIdfIndex.stats called before fit")
        return CorpusStats(doc_count=self._doc_count, df=dict(self._df))

    def __len__(self) -> int:
        # Locally indexed documents — under external stats this differs
        # from the (global) ``doc_count`` driving the IDF weights.
        return len(self._keys)

    @property
    def vocabulary(self) -> Tuple[str, ...]:
        return tuple(sorted(self._postings))

    def document_frequency(self, term: str) -> int:
        """Number of indexed documents containing ``term``."""
        return self._df.get(term, 0)

    def idf(self, term: str) -> Optional[float]:
        """Smoothed inverse document frequency of ``term``."""
        if not self._fitted:
            raise NotFittedError("TfIdfIndex.idf called before fit")
        return self._idf(term)
