"""Tokenisation and normalisation of clinical text snippets.

The paper's preprocessing (Section 6.1, footnote 9) lowercases all
words, removes special characters such as ``,`` and ``;``, and
de-duplicates snippets.  :func:`normalize_text` and :func:`tokenize`
implement exactly that, with a configurable :class:`Tokenizer` for
callers that need to keep numerics attached (ICD stage numbers like
``"ckd 5"`` are load-bearing for linking) or strip stopwords.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Sequence, Tuple

# Words that carry almost no linking signal in diagnosis snippets.  Kept
# deliberately small: clinical modifiers ("acute", "chronic",
# "unspecified") are *not* stopwords because fine-grained codes hinge on
# them.
DEFAULT_STOPWORDS: FrozenSet[str] = frozenset(
    {"a", "an", "and", "are", "as", "at", "be", "by", "for", "in",
     "into", "is", "it", "of", "on", "or", "the", "to", "with"}
)

# A token is a run of alphanumerics; '%' survives because snippets like
# "ef 75%" use it meaningfully, and '.' inside code-like tokens (n18.5)
# is preserved by the code-aware pattern below.
_TOKEN_PATTERN = re.compile(r"[a-z0-9]+(?:\.[0-9]+)?%?")
_WHITESPACE = re.compile(r"\s+")
# Characters replaced by spaces before tokenisation (the paper removes
# ',' and ';' explicitly; we generalise to common snippet punctuation).
_PUNCT_TO_SPACE = re.compile(r"[,;:/\\()\[\]{}\"'`~!?<>=+*|_#@&^$-]")


def normalize_text(text: str) -> str:
    """Lowercase, replace punctuation with spaces, and squeeze spaces."""
    lowered = text.lower()
    spaced = _PUNCT_TO_SPACE.sub(" ", lowered)
    return _WHITESPACE.sub(" ", spaced).strip()


def tokenize(text: str) -> List[str]:
    """Tokenise with the default snippet-oriented tokenizer."""
    return _TOKEN_PATTERN.findall(normalize_text(text))


@dataclass(frozen=True)
class Tokenizer:
    """Configurable snippet tokenizer.

    Parameters
    ----------
    remove_stopwords:
        Drop :data:`DEFAULT_STOPWORDS` (or ``stopwords`` if provided).
    keep_numbers:
        When ``False``, purely numeric tokens are dropped.  The default
        keeps them — numbers distinguish e.g. CKD stages.
    min_token_length:
        Tokens shorter than this are discarded (after stopwording).
    stopwords:
        Custom stopword set; ignored unless ``remove_stopwords``.
    """

    remove_stopwords: bool = False
    keep_numbers: bool = True
    min_token_length: int = 1
    stopwords: FrozenSet[str] = field(default=DEFAULT_STOPWORDS)

    def __post_init__(self) -> None:
        if self.min_token_length < 1:
            raise ValueError(
                f"min_token_length must be >= 1, got {self.min_token_length}"
            )

    def __call__(self, text: str) -> List[str]:
        tokens = tokenize(text)
        if self.remove_stopwords:
            tokens = [token for token in tokens if token not in self.stopwords]
        if not self.keep_numbers:
            tokens = [token for token in tokens if not _is_numeric(token)]
        if self.min_token_length > 1:
            tokens = [
                token for token in tokens if len(token) >= self.min_token_length
            ]
        return tokens

    def tokenize_all(self, texts: Iterable[str]) -> List[List[str]]:
        """Tokenise every text in ``texts``."""
        return [self(text) for text in texts]


def _is_numeric(token: str) -> bool:
    stripped = token.rstrip("%")
    if not stripped:
        return False
    return all(char.isdigit() or char == "." for char in stripped)


def detokenize(tokens: Sequence[str]) -> str:
    """Join tokens back into a canonical single-spaced snippet."""
    return " ".join(tokens)


def shared_words(left: Sequence[str], right: Sequence[str]) -> Tuple[str, ...]:
    """Words appearing in both sequences, in ``left``'s order.

    Used by online linking Phase II, which *temporarily removes the
    words appearing in both the canonical description and the query*
    before computing the decode probability (paper Section 5).
    """
    right_set = set(right)
    seen = set()
    shared: List[str] = []
    for word in left:
        if word in right_set and word not in seen:
            shared.append(word)
            seen.add(word)
    return tuple(shared)
