"""Shared utilities: seeded RNG handling, timers, logging, and errors.

Every stochastic component in :mod:`repro` takes an explicit
``numpy.random.Generator`` (or a seed convertible to one) so that
experiments are reproducible end to end.  The helpers here centralise
that convention.
"""

from repro.utils.errors import (
    ConfigurationError,
    DataError,
    NotFittedError,
    ReproError,
)
from repro.utils.logging import get_logger
from repro.utils.rng import derive_rng, ensure_rng, spawn_seeds
from repro.utils.timing import PhaseTimer, Stopwatch, TimingBreakdown

__all__ = [
    "ConfigurationError",
    "DataError",
    "NotFittedError",
    "PhaseTimer",
    "ReproError",
    "Stopwatch",
    "TimingBreakdown",
    "derive_rng",
    "ensure_rng",
    "get_logger",
    "spawn_seeds",
]
