"""Fault-injection probe points for crash/latency testing.

Production code calls :func:`probe` at named sites — epoch boundaries,
between persistence file writes, inside Phase II scoring.  In normal
operation a probe is a dict lookup on an empty plan (nanoseconds); under
a test's :func:`fault_injection` context it can raise, block, or delay,
which is how the reliability suite simulates a SIGKILL mid-save, a
crash mid-epoch, or a flaky re-ranker without subprocess gymnastics.

.. code-block:: python

    with fault_injection({"persistence.commit": FaultSpec(action="raise")}):
        save_pipeline(target, model, ontology)   # dies before the swap

Site names are plain dotted strings; a spec can be armed to fire only
from the ``after``-th hit onward (``after=2`` skips two hits) and for a
limited number of ``times``, so a test can let epoch 1 and 2 succeed
and kill epoch 3 exactly once.

The model-lifecycle subsystem exposes three sites for swap drills:
``lifecycle.shadow`` (inside the shadow-scoring worker — a ``delay``
spec here inflates the candidate's latency ratio past the promotion
gate), ``lifecycle.promote`` (hit once at promotion entry and once
inside the staging copy of the candidate artifact, so ``after=1``
simulates a crash mid-publish), and ``lifecycle.rollback`` (after the
previous engine pointer is restored).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Union

from repro.obs.trace import span_event


class InjectedFault(RuntimeError):
    """Raised by an armed ``raise`` probe (deliberately not a ReproError,
    so library error handling cannot accidentally swallow a simulated
    crash)."""


@dataclass
class FaultSpec:
    """What one probe site should do when hit.

    Attributes
    ----------
    action:
        ``"raise"`` (InjectedFault), ``"io_error"`` (OSError), or
        ``"delay"`` (sleep ``delay_s`` then continue).
    after:
        Number of hits to let through unharmed before firing.
    times:
        How many hits fire once armed; ``-1`` means every hit forever.
    delay_s:
        Sleep duration for ``action="delay"``.
    message:
        Text carried by the raised exception.
    """

    action: str = "raise"
    after: int = 0
    times: int = 1
    delay_s: float = 0.0
    message: str = ""
    hits: int = field(default=0, init=False)
    fired: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.action not in ("raise", "io_error", "delay"):
            raise ValueError(
                f"action must be raise/io_error/delay, got {self.action!r}"
            )
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")


class FaultPlan:
    """A thread-safe mapping of site name to :class:`FaultSpec`."""

    def __init__(self, specs: Mapping[str, Union[FaultSpec, dict]]) -> None:
        self._lock = threading.Lock()
        self._specs: Dict[str, FaultSpec] = {}
        for site, spec in specs.items():
            if isinstance(spec, dict):
                spec = FaultSpec(**spec)
            self._specs[site] = spec

    def spec_for(self, site: str) -> Optional[FaultSpec]:
        """The spec registered for ``site``, or None (no counting)."""
        return self._specs.get(site)

    def arm_check(self, site: str) -> Optional[FaultSpec]:
        """Count one hit on ``site``; return the spec if it should fire."""
        with self._lock:
            spec = self._specs.get(site)
            if spec is None:
                return None
            spec.hits += 1
            if spec.hits <= spec.after:
                return None
            if spec.times >= 0 and spec.fired >= spec.times:
                return None
            spec.fired += 1
            return spec

    def hits(self, site: str) -> int:
        """Total times ``site`` was probed (fired or not)."""
        with self._lock:
            spec = self._specs.get(site)
            return spec.hits if spec is not None else 0

    def fired(self, site: str) -> int:
        """Times the spec for ``site`` actually fired (0 if unarmed)."""
        with self._lock:
            spec = self._specs.get(site)
            return spec.fired if spec is not None else 0


_ACTIVE_LOCK = threading.Lock()
_ACTIVE_PLAN: Optional[FaultPlan] = None


def is_active() -> bool:
    """Whether any fault plan is currently installed."""
    return _ACTIVE_PLAN is not None


def probe(site: str) -> None:
    """Execute the fault (if any) armed for ``site``.

    Called from production probe points; a no-op unless a test has
    installed a plan via :func:`fault_injection`.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return
    spec = plan.arm_check(site)
    if spec is None:
        return
    # A firing fault is exactly the event a trace reader wants pinned
    # to the span it interrupted (e.g. the injected Phase-II error that
    # explains a degraded result); no-op unless a trace is recording.
    span_event("fault.fired", site=site, action=spec.action)
    if spec.action == "delay":
        time.sleep(spec.delay_s)
        return
    message = spec.message or f"injected fault at {site!r}"
    if spec.action == "io_error":
        raise OSError(message)
    raise InjectedFault(message)


@contextmanager
def fault_injection(
    specs: Mapping[str, Union[FaultSpec, dict]],
) -> Iterator[FaultPlan]:
    """Install a fault plan for the duration of the ``with`` block.

    Plans do not nest: installing a second plan while one is active is
    a test bug and raises immediately.
    """
    global _ACTIVE_PLAN
    plan = FaultPlan(specs)
    with _ACTIVE_LOCK:
        if _ACTIVE_PLAN is not None:
            raise RuntimeError("a fault plan is already active")
        _ACTIVE_PLAN = plan
    try:
        yield plan
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE_PLAN = None
