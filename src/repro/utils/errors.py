"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch one type at an API boundary without swallowing unrelated
programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value was supplied.

    Raised eagerly at construction time (e.g. a negative embedding
    dimension, or an attention depth of zero) rather than deep inside a
    training loop.
    """


class DataError(ReproError, ValueError):
    """Input data violates a structural requirement.

    Examples: an ontology edge referencing an unknown concept, an empty
    canonical description, or a training pair whose concept is missing
    from the knowledge base.
    """


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring fitted state was called before fitting.

    Mirrors scikit-learn's convention: components that need ``fit`` /
    ``train`` to be called first raise this from their predict/score
    paths.
    """
