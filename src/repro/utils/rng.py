"""Seeded random-number-generator plumbing.

The library convention is:

* public constructors accept ``rng`` as either ``None`` (fresh
  unpredictable generator), an ``int`` seed, or an existing
  ``numpy.random.Generator``;
* internal components never call ``numpy.random`` module-level
  functions;
* components that own several stochastic sub-parts derive independent
  child generators with :func:`derive_rng` so that changing how one part
  consumes randomness does not perturb the others.
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a ``numpy.random.Generator``.

    Parameters
    ----------
    rng:
        ``None`` for OS-seeded entropy, an integer seed, or an existing
        generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator; got {type(rng)!r}"
    )


def derive_rng(rng: np.random.Generator, *labels: str) -> np.random.Generator:
    """Derive an independent child generator, namespaced by ``labels``.

    The child stream is a deterministic function of the parent state and
    the labels, so two components deriving with different labels get
    decorrelated streams even from the same parent.  Labels are hashed
    with CRC32 — NOT the builtin ``hash()``, whose per-process
    randomisation (PYTHONHASHSEED) would make experiments
    irreproducible across runs.
    """
    label_entropy = [
        zlib.crc32(label.encode("utf-8")) & 0xFFFFFFFF for label in labels
    ]
    seeds = rng.integers(0, 2**32 - 1, size=4).tolist() + label_entropy
    return np.random.default_rng(np.random.SeedSequence(seeds))


def spawn_seeds(rng: RngLike, count: int) -> list:
    """Draw ``count`` independent integer seeds from ``rng``.

    Useful for fanning a single experiment seed out to per-trial seeds.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    generator = ensure_rng(rng)
    return [int(seed) for seed in generator.integers(0, 2**31 - 1, size=count)]
