"""Library logging setup.

Modules obtain loggers through :func:`get_logger` so the whole library
shares one namespace (``repro.*``) and applications can configure it in
one place.  The library itself never calls ``basicConfig``.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str = "") -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("core.trainer")`` yields the ``repro.core.trainer``
    logger; ``get_logger()`` yields the library root logger.
    """
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + ".") or name == _ROOT_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
