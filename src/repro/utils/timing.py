"""Timers used by the online-linking efficiency experiments.

The paper's Figure 11 decomposes online linking time into four parts:
out-of-vocabulary replacement (OR), candidate retrieval (CR), the
encode-decode forward passes (ED), and ranking (RT).  The
:class:`PhaseTimer` accumulates wall-clock time per named phase so the
linker can report exactly that breakdown.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Tuple


class Stopwatch:
    """A restartable wall-clock stopwatch with accumulated elapsed time."""

    def __init__(self) -> None:
        self._started_at: float = 0.0
        self._elapsed: float = 0.0
        self._running = False

    def start(self) -> "Stopwatch":
        """Begin (or resume) timing; returns self for chaining."""
        if self._running:
            raise RuntimeError("stopwatch is already running")
        self._started_at = time.perf_counter()
        self._running = True
        return self

    def stop(self) -> float:
        """Stop and return the total accumulated elapsed seconds."""
        if not self._running:
            raise RuntimeError("stopwatch is not running")
        self._elapsed += time.perf_counter() - self._started_at
        self._running = False
        return self._elapsed

    def reset(self) -> None:
        """Clear accumulated time / recorded phases."""
        self._started_at = 0.0
        self._elapsed = 0.0
        self._running = False

    @property
    def elapsed(self) -> float:
        """Accumulated elapsed seconds (including the running segment)."""
        if self._running:
            return self._elapsed + (time.perf_counter() - self._started_at)
        return self._elapsed

    @property
    def running(self) -> bool:
        return self._running


@dataclass
class TimingBreakdown:
    """Per-phase accumulated seconds, e.g. ``{"OR": .., "CR": .., ...}``."""

    seconds: Dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, elapsed: float) -> None:
        """Accumulate ``elapsed`` seconds under ``phase``."""
        if elapsed < 0:
            raise ValueError(f"elapsed time must be non-negative, got {elapsed}")
        self.seconds[phase] = self.seconds.get(phase, 0.0) + elapsed

    def merge(self, other: "TimingBreakdown") -> None:
        """Add another breakdown's phases into this one."""
        for phase, elapsed in other.seconds.items():
            self.add(phase, elapsed)

    def total(self) -> float:
        """Sum of all phases' seconds."""
        return sum(self.seconds.values())

    def fractions(self) -> Mapping[str, float]:
        """Each phase's share of the total (empty dict if no time logged)."""
        total = self.total()
        if total == 0.0:
            return {phase: 0.0 for phase in self.seconds}
        return {phase: elapsed / total for phase, elapsed in self.seconds.items()}

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict copy of the per-phase seconds."""
        return dict(self.seconds)

    def items(self) -> Iterator[Tuple[str, float]]:
        """Iterate ``(phase, seconds)`` pairs over a snapshot copy.

        The copy makes iteration safe while another thread (e.g. a
        metrics aggregator in the serving layer) merges into the same
        breakdown.
        """
        return iter(list(self.seconds.items()))

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return self.items()


class PhaseTimer:
    """Accumulates wall-clock time under named phases.

    Usage::

        timer = PhaseTimer()
        with timer.phase("CR"):
            candidates = index.search(query)
        breakdown = timer.breakdown
    """

    def __init__(self) -> None:
        self.breakdown = TimingBreakdown()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager timing its body under ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.breakdown.add(name, time.perf_counter() - started)

    def reset(self) -> None:
        """Discard all recorded phases."""
        self.breakdown = TimingBreakdown()
