"""Word-vector store with cosine nearest-neighbour queries.

Query rewriting (paper Section 5, Eq. 13) replaces each
out-of-vocabulary query word with its embedding-nearest word from the
ontology vocabulary Ω; the embedding vocabulary Ω' is larger because it
includes unlabeled-corpus words, so abbreviations like ``dm`` (frequent
in physician notes) have vectors even though no concept description
contains them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.utils.errors import DataError


class WordVectors:
    """An immutable ``word -> R^d`` map with cosine search.

    ``tag_words`` marks pseudo-words (injected concept-id tokens) that
    must never be returned by nearest-word queries.
    """

    def __init__(
        self,
        words: Sequence[str],
        matrix: np.ndarray,
        tag_words: Optional[Iterable[str]] = None,
    ) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != len(words):
            raise DataError(
                f"matrix shape {matrix.shape} does not match {len(words)} words"
            )
        if len(set(words)) != len(words):
            raise DataError("duplicate words in WordVectors")
        self._words: Tuple[str, ...] = tuple(words)
        self._index: Dict[str, int] = {
            word: position for position, word in enumerate(self._words)
        }
        self._matrix = matrix
        norms = np.linalg.norm(matrix, axis=1)
        norms[norms == 0.0] = 1.0
        self._unit = matrix / norms[:, None]
        self._tags: Set[str] = set(tag_words) if tag_words else set()

    # -- lookups ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._words)

    def __contains__(self, word: str) -> bool:
        return word in self._index

    @property
    def dim(self) -> int:
        return self._matrix.shape[1]

    @property
    def words(self) -> Tuple[str, ...]:
        return self._words

    @property
    def tag_words(self) -> Set[str]:
        return set(self._tags)

    def vector_of(self, word: str) -> np.ndarray:
        """The stored vector of ``word`` (KeyError when absent)."""
        try:
            return self._matrix[self._index[word]]
        except KeyError:
            raise KeyError(f"word {word!r} not in vectors") from None

    def vectors_for(self, words: Sequence[str]) -> np.ndarray:
        """Stacked vectors for ``words`` as an ``(n, d)`` matrix."""
        return np.vstack([self.vector_of(word) for word in words])

    # -- similarity -----------------------------------------------------

    def cosine(self, left: str, right: str) -> float:
        """Cosine similarity between two stored words."""
        i, j = self._index[left], self._index[right]
        return float(self._unit[i] @ self._unit[j])

    def nearest(
        self,
        word: str,
        k: int = 1,
        restrict_to: Optional[Set[str]] = None,
        exclude_self: bool = True,
    ) -> List[Tuple[str, float]]:
        """Top-``k`` cosine-nearest words to ``word``.

        ``restrict_to`` limits candidates (e.g. the ontology vocabulary
        Ω during query rewriting); tag pseudo-words are always excluded.
        """
        if word not in self._index:
            raise KeyError(f"word {word!r} not in vectors")
        return self.nearest_to_vector(
            self._matrix[self._index[word]],
            k=k,
            restrict_to=restrict_to,
            exclude={word} if exclude_self else None,
        )

    def nearest_to_vector(
        self,
        vector: np.ndarray,
        k: int = 1,
        restrict_to: Optional[Set[str]] = None,
        exclude: Optional[Set[str]] = None,
    ) -> List[Tuple[str, float]]:
        """Top-``k`` cosine-nearest words to an arbitrary vector."""
        vector = np.asarray(vector, dtype=np.float64)
        norm = np.linalg.norm(vector)
        if norm == 0.0:
            norm = 1.0
        scores = self._unit @ (vector / norm)
        blocked = set(self._tags)
        if exclude:
            blocked |= exclude
        order = np.argsort(-scores)
        results: List[Tuple[str, float]] = []
        for position in order:
            candidate = self._words[int(position)]
            if candidate in blocked:
                continue
            if restrict_to is not None and candidate not in restrict_to:
                continue
            results.append((candidate, float(scores[int(position)])))
            if len(results) >= k:
                break
        return results

    # -- export ------------------------------------------------------------

    def subset(self, words: Sequence[str]) -> "WordVectors":
        """Vectors restricted to ``words`` (missing words raise)."""
        matrix = self.vectors_for(words)
        tags = [word for word in words if word in self._tags]
        return WordVectors(words, matrix, tag_words=tags)

    def as_matrix(self, words: Sequence[str], missing: str = "error") -> np.ndarray:
        """Matrix of vectors for ``words``.

        ``missing='zeros'`` substitutes a zero vector for unknown words
        (used when seeding model embeddings: special tokens have no
        pre-trained vector).
        """
        if missing not in ("error", "zeros"):
            raise ValueError(f"missing must be 'error' or 'zeros', got {missing!r}")
        rows = []
        for word in words:
            if word in self._index:
                rows.append(self._matrix[self._index[word]])
            elif missing == "zeros":
                rows.append(np.zeros(self.dim))
            else:
                raise KeyError(f"word {word!r} not in vectors")
        return np.vstack(rows)
