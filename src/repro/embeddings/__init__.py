"""Word-representation pre-training (paper Section 4.2, phase one).

The paper pre-trains CBOW word embeddings over unlabeled snippets that
have been *altered by concept-id injection*: interleaving each labeled
snippet's concept identifier between its words, so that words that
co-occur under different concepts ("protein", "folate", "iron" in the
anemia example) stop sharing contexts and drift apart — avoiding the
side effect of the distributional hypothesis on very short concept
mentions.
"""

from repro.embeddings.cbow import CbowConfig, CbowTrainer
from repro.embeddings.injection import inject_cid, injected_sequences
from repro.embeddings.pretrain import pretrain_word_vectors
from repro.embeddings.similarity import WordVectors

__all__ = [
    "CbowConfig",
    "CbowTrainer",
    "WordVectors",
    "inject_cid",
    "injected_sequences",
    "pretrain_word_vectors",
]
