"""Concept-id injection into labeled snippets (paper Section 4.2).

From the paper's example, ``"protein deficiency anemia"`` labeled with
``D53.0`` becomes ``"D53.0 protein D53.0 deficiency D53.0 anemia"`` —
the concept identifier is interleaved *before every word*, so the word
context of each snippet word now contains the cid and no longer matches
the contexts of sibling concepts' snippets.  Genuinely unlabeled
snippets remain unchanged.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.kb.corpus import SnippetCorpus


def cid_token(cid: str) -> str:
    """Normalise a concept id into a single vocabulary token.

    Lowercased with spaces removed so the tokeniser never splits it
    (``"D50-D89"`` -> ``"d50-d89"`` would split on '-'; we substitute
    '_' for safety).
    """
    return cid.lower().replace(" ", "").replace("-", "_")


def inject_cid(words: Sequence[str], cid: str) -> List[str]:
    """Interleave ``cid`` before each word of the snippet."""
    if not words:
        raise ValueError("cannot inject a cid into an empty snippet")
    token = cid_token(cid)
    injected: List[str] = []
    for word in words:
        injected.append(token)
        injected.append(word)
    return injected


def injected_sequences(
    corpus: SnippetCorpus,
) -> Tuple[List[List[str]], Set[str]]:
    """The pre-training corpus view: injected where tagged, raw otherwise.

    Returns ``(sequences, cid_tokens)`` where ``cid_tokens`` is the set
    of injected identifier tokens — consumers (e.g. nearest-word search
    for query rewriting) must not treat them as ordinary words.
    """
    sequences: List[List[str]] = []
    cid_tokens: Set[str] = set()
    for snippet in corpus:
        words = list(snippet.words)
        if snippet.cid is None:
            sequences.append(words)
        else:
            sequences.append(inject_cid(words, snippet.cid))
            cid_tokens.add(cid_token(snippet.cid))
    return sequences, cid_tokens
