"""Pre-training orchestration: corpus -> injected sequences -> CBOW -> vectors.

This is the paper's pre-training phase end to end, with the
concept-injection switch exposed so the Figure 8 ablation
(COM-AID vs COM-AID^{-o1}) can disable it — ``inject=False`` trains the
same CBOW on the *unaltered* snippets, and ``inject=None`` skips
pre-training entirely (random initialisation downstream).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.embeddings.cbow import CbowConfig, CbowTrainer
from repro.embeddings.injection import injected_sequences
from repro.embeddings.similarity import WordVectors
from repro.kb.corpus import SnippetCorpus
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike
from repro.utils.timing import Stopwatch

logger = get_logger("embeddings.pretrain")


def remove_common_directions(matrix: np.ndarray, components: int = 1) -> np.ndarray:
    """All-but-the-top post-processing (Mu & Viswanath).

    Small-corpus word embeddings are anisotropic: every vector shares a
    large common direction, so cosine search degenerates into hub words.
    Subtracting the mean vector and projecting out the top principal
    component(s) restores discriminative cosine geometry — essential
    here because our corpora are ~10³ snippets where the paper's were
    ~10⁶.
    """
    if components < 0:
        raise ValueError(f"components must be >= 0, got {components}")
    centered = matrix - matrix.mean(axis=0, keepdims=True)
    if components == 0 or centered.shape[0] <= components:
        return centered
    # Top principal directions of the centered matrix.
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    top = vt[:components]
    return centered - (centered @ top.T) @ top


def pretrain_word_vectors(
    corpus: SnippetCorpus,
    config: Optional[CbowConfig] = None,
    rng: RngLike = None,
    inject: bool = True,
    postprocess_components: int = 1,
) -> WordVectors:
    """Train CBOW vectors over ``corpus``.

    Parameters
    ----------
    corpus:
        Tagged + untagged snippets (see :class:`SnippetCorpus`).
    config:
        CBOW hyper-parameters (paper-style defaults when omitted).
    inject:
        Apply concept-id injection to tagged snippets (the paper's
        pre-training); ``False`` trains on raw snippets — the
        pre-training ablation's "plain CBOW" control.
    postprocess_components:
        Principal components removed by
        :func:`remove_common_directions` (0 disables centering too).
    """
    settings = config if config is not None else CbowConfig()
    watch = Stopwatch().start()
    if inject:
        sequences, cid_tokens = injected_sequences(corpus)
    else:
        sequences = [list(snippet.words) for snippet in corpus]
        cid_tokens = set()
    trainer = CbowTrainer(settings, rng=rng)
    trainer.fit(sequences)
    matrix = trainer.input_vectors
    if postprocess_components >= 0:
        matrix = remove_common_directions(matrix, postprocess_components)
    elapsed = watch.stop()
    logger.info(
        "pre-trained %d word vectors (dim=%d, inject=%s) in %.2fs",
        len(trainer.vocab),
        settings.dim,
        inject,
        elapsed,
    )
    return WordVectors(
        words=list(trainer.vocab.words),
        matrix=matrix,
        tag_words=cid_tokens,
    )
