"""Continuous bag-of-words word2vec with negative sampling.

The paper (Appendix B.2) trains word representations with CBOW [31] at
window 10, 10 noise samples (NCE), 10 iterations, learning rate 0.05.
This is a from-scratch NumPy implementation of CBOW with the standard
negative-sampling objective (the skip-gram/NCE family member word2vec
actually ships): for a centre word ``w`` with context mean ``v̄``,

    loss = -log σ(u_w · v̄) - Σ_k log σ(-u_nk · v̄)

Negatives are drawn from the unigram distribution raised to 3/4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.text.vocab import Vocabulary
from repro.utils.errors import ConfigurationError, DataError
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, ensure_rng

logger = get_logger("embeddings.cbow")


@dataclass(frozen=True)
class CbowConfig:
    """Hyper-parameters for CBOW pre-training.

    Defaults follow the paper's Appendix B.2 settings except epoch
    count, which is scaled down because our corpora are small (paper
    corpora: ~10^6 snippets; benches: ~10^3).
    """

    dim: int = 50
    window: int = 10
    negatives: int = 10
    epochs: int = 5
    learning_rate: float = 0.05
    min_count: int = 1
    power: float = 0.75
    subsample: float = 1e-3
    lr_decay: bool = True

    def __post_init__(self) -> None:
        if self.subsample < 0:
            raise ConfigurationError(
                f"subsample must be >= 0, got {self.subsample}"
            )
        if self.dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {self.dim}")
        if self.window < 1:
            raise ConfigurationError(f"window must be >= 1, got {self.window}")
        if self.negatives < 1:
            raise ConfigurationError(
                f"negatives must be >= 1, got {self.negatives}"
            )
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {self.epochs}")
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if self.min_count < 1:
            raise ConfigurationError(
                f"min_count must be >= 1, got {self.min_count}"
            )


class CbowTrainer:
    """Train CBOW embeddings over tokenised sequences.

    Usage::

        trainer = CbowTrainer(CbowConfig(dim=32), rng=7)
        trainer.fit(sequences)
        matrix, vocab = trainer.input_vectors, trainer.vocab
    """

    def __init__(self, config: CbowConfig, rng: RngLike = None) -> None:
        self.config = config
        self._rng = ensure_rng(rng)
        self.vocab: Vocabulary = Vocabulary(include_specials=False)
        self.input_vectors = np.zeros((0, config.dim))
        self._output_vectors = np.zeros((0, config.dim))
        self._noise_cdf = np.zeros(0)
        self._fitted = False

    # -- setup ----------------------------------------------------------

    def _build_vocab(self, sequences: Sequence[Sequence[str]]) -> List[List[int]]:
        self.vocab = Vocabulary.from_corpus(
            sequences, min_count=self.config.min_count, include_specials=False
        )
        if len(self.vocab) == 0:
            raise DataError("CBOW training corpus produced an empty vocabulary")
        encoded: List[List[int]] = []
        for tokens in sequences:
            ids = [self.vocab.id_of(token) for token in tokens if token in self.vocab]
            if len(ids) >= 2:  # need at least one (context, centre) pair
                encoded.append(ids)
        if not encoded:
            raise DataError(
                "no sequence of length >= 2 survived vocabulary pruning"
            )
        return encoded

    def _build_noise_distribution(self) -> None:
        counts = np.array(
            [self.vocab.count_of(word) for word in self.vocab.words],
            dtype=np.float64,
        )
        weights = np.power(np.maximum(counts, 1.0), self.config.power)
        self._noise_cdf = np.cumsum(weights / weights.sum())

    def _sample_negatives(self, count: int) -> np.ndarray:
        picks = self._rng.random(count)
        return np.searchsorted(self._noise_cdf, picks)

    def _keep_probabilities(self, total_tokens: int) -> np.ndarray:
        """Per-word keep probability under frequent-word subsampling.

        word2vec's discard rule: keep with probability
        ``sqrt(t / f) + t / f`` (clamped to 1) where ``f`` is the word's
        relative frequency — aggressively thins hub words so they stop
        dominating every context.
        """
        if self.config.subsample <= 0:
            return np.ones(len(self.vocab))
        threshold = self.config.subsample
        keep = np.ones(len(self.vocab))
        for word_id, word in enumerate(self.vocab.words):
            frequency = self.vocab.count_of(word) / max(total_tokens, 1)
            if frequency > threshold:
                ratio = threshold / frequency
                keep[word_id] = min(1.0, np.sqrt(ratio) + ratio)
        return keep

    # -- training ---------------------------------------------------------

    def fit(self, sequences: Sequence[Sequence[str]]) -> "CbowTrainer":
        """Train on ``sequences`` (lists of tokens)."""
        encoded = self._build_vocab(sequences)
        self._build_noise_distribution()
        vocab_size = len(self.vocab)
        dim = self.config.dim
        bound = 0.5 / dim
        self.input_vectors = self._rng.uniform(
            -bound, bound, size=(vocab_size, dim)
        )
        self._output_vectors = np.zeros((vocab_size, dim))
        total_tokens = sum(len(ids) for ids in encoded)
        keep = self._keep_probabilities(total_tokens)
        base_lr = self.config.learning_rate
        for epoch in range(self.config.epochs):
            if self.config.lr_decay:
                lr = base_lr * (1.0 - epoch / self.config.epochs)
                lr = max(lr, base_lr * 0.05)
            else:
                lr = base_lr
            order = self._rng.permutation(len(encoded))
            total_loss = 0.0
            total_positions = 0
            for sequence_index in order:
                ids = encoded[int(sequence_index)]
                if self.config.subsample > 0:
                    mask = self._rng.random(len(ids)) < keep[ids]
                    ids = [word_id for word_id, kept in zip(ids, mask) if kept]
                    if len(ids) < 2:
                        continue
                loss, positions = self._train_sequence(ids, lr)
                total_loss += loss
                total_positions += positions
            mean_loss = total_loss / max(total_positions, 1)
            logger.debug(
                "cbow epoch %d/%d mean loss %.4f",
                epoch + 1,
                self.config.epochs,
                mean_loss,
            )
        self._fitted = True
        return self

    def _train_sequence(self, ids: List[int], lr: float) -> tuple:
        window = self.config.window
        negatives = self.config.negatives
        loss_sum = 0.0
        positions = 0
        length = len(ids)
        ids_array = np.asarray(ids, dtype=np.intp)
        for centre in range(length):
            lo = max(0, centre - window)
            hi = min(length, centre + window + 1)
            context = np.concatenate(
                [ids_array[lo:centre], ids_array[centre + 1 : hi]]
            )
            if context.size == 0:
                continue
            positions += 1
            context_mean = self.input_vectors[context].mean(axis=0)
            targets = np.empty(negatives + 1, dtype=np.intp)
            targets[0] = ids_array[centre]
            targets[1:] = self._sample_negatives(negatives)
            labels = np.zeros(negatives + 1)
            labels[0] = 1.0
            output_rows = self._output_vectors[targets]
            scores = output_rows @ context_mean
            # Stable sigmoid + loss
            probabilities = np.where(
                scores >= 0,
                1.0 / (1.0 + np.exp(-scores)),
                np.exp(scores) / (1.0 + np.exp(scores)),
            )
            eps = 1e-10
            loss_sum += -float(
                np.log(probabilities[0] + eps)
                + np.log(1.0 - probabilities[1:] + eps).sum()
            )
            error = probabilities - labels  # d loss / d scores
            grad_context = error @ output_rows
            self._output_vectors[targets] -= lr * np.outer(error, context_mean)
            self.input_vectors[context] -= lr * grad_context / context.size
        return loss_sum, positions

    # -- results ----------------------------------------------------------

    def vector_of(self, word: str) -> np.ndarray:
        """The trained input vector of ``word`` (raises before fit)."""
        if not self._fitted:
            raise DataError("CbowTrainer.vector_of called before fit")
        return self.input_vectors[self.vocab.id_of(word)]

    @property
    def fitted(self) -> bool:
        return self._fitted
