"""Sparse + dense fusion: one Phase-I candidate list from two signals.

The flair ``BiomedicalEntityLinker`` recipe in miniature: run the
sparse (TF-IDF inverted-index) and dense (IVF ANN) retrievers over the
same query, union their candidate pools, and re-score the union with
*both* signals before ranking.  The symmetric re-scoring matters — a
candidate only the dense side surfaced still gets its **exact** sparse
cosine (the sparse query already accumulated raw scores for every
touched document, and untouched documents truly score 0), and a
candidate only the sparse side surfaced gets its exact dense cosine
via one gathered dot product.  Naively scoring missing sides as 0
would let pool membership, not evidence, decide the ranking.

Two fusion methods:

* ``weighted_sum`` — ``w·cos_sparse + (1−w)·(cos_dense+1)/2``; both
  signals on a [0, 1] scale, ``w`` (``fusion_weight``) sliding between
  dense-only (0) and sparse-only (1).
* ``rrf`` — reciprocal-rank fusion ``w/(60+r_s) + (1−w)/(60+r_d)``
  with ranks computed over the union by each signal; robust when the
  two score distributions are incomparable.

Ties always break on document position, so every mode is
deterministic.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.retrieval.ann import DenseIndex
from repro.retrieval.inverted import InvertedIndex
from repro.text.tfidf import TfIdfMatch
from repro.utils.errors import ConfigurationError

#: Fusion methods ``fuse_candidates`` understands.
FUSION_METHODS = ("weighted_sum", "rrf")

#: The RRF dampening constant (the literature-standard 60).
RRF_K = 60

#: How many candidates each side contributes to the union, as a
#: multiple of the requested k — slack so documents near the cut line
#: of one signal can be rescued by the other.
POOL_MULTIPLIER = 2


def _ranks(positions: np.ndarray, scores: np.ndarray) -> np.ndarray:
    """0-based ranks of each union member under ``(-score, position)``."""
    order = np.lexsort((positions, -scores))
    ranks = np.empty(len(order), dtype=np.int64)
    ranks[order] = np.arange(len(order))
    return ranks


def fuse_candidates(
    positions: np.ndarray,
    sparse_scores: np.ndarray,
    dense_scores: np.ndarray,
    fusion_weight: float = 0.5,
    method: str = "weighted_sum",
) -> np.ndarray:
    """Fused scores for union candidates scored by both signals.

    ``positions`` are the union's document positions; ``sparse_scores``
    are exact TF-IDF cosines in [0, 1]; ``dense_scores`` are exact
    embedding cosines in [−1, 1].  Returns one fused score per
    candidate (higher is better); the caller ranks on
    ``(-fused, position)``.
    """
    if not 0.0 <= fusion_weight <= 1.0:
        raise ConfigurationError(
            f"fusion_weight must be in [0, 1], got {fusion_weight}"
        )
    if method == "weighted_sum":
        return fusion_weight * sparse_scores + (1.0 - fusion_weight) * (
            (dense_scores + 1.0) / 2.0
        )
    if method == "rrf":
        sparse_ranks = _ranks(positions, sparse_scores)
        dense_ranks = _ranks(positions, dense_scores)
        return fusion_weight / (RRF_K + 1 + sparse_ranks) + (
            1.0 - fusion_weight
        ) / (RRF_K + 1 + dense_ranks)
    raise ConfigurationError(
        f"unknown fusion method {method!r} (expected one of {FUSION_METHODS})"
    )


class HybridRetriever:
    """Phase-I retrieval over a sparse and a dense index in concert.

    The two indexes must address the same corpus in the same order:
    sparse document position ``p`` and dense vector row ``p`` are the
    same concept (both follow the compiled artifact's concept order).
    ``encode_query`` maps query tokens to a dense query vector — the
    same encoder the concept vectors came from — and may return ``None``
    when a query cannot be encoded, in which case dense and hybrid
    searches degrade to the sparse answer.
    """

    def __init__(
        self,
        sparse: InvertedIndex,
        dense: Optional[DenseIndex],
        encode_query: Optional[
            Callable[[Sequence[str]], Optional[np.ndarray]]
        ] = None,
        nprobe: int = 8,
        fusion_weight: float = 0.5,
        fusion_method: str = "weighted_sum",
    ) -> None:
        if dense is not None and len(dense) != len(sparse):
            raise ConfigurationError(
                f"sparse index has {len(sparse)} documents but dense index "
                f"has {len(dense)} vectors — they must cover the same corpus"
            )
        if fusion_method not in FUSION_METHODS:
            raise ConfigurationError(
                f"unknown fusion method {fusion_method!r} "
                f"(expected one of {FUSION_METHODS})"
            )
        if not 0.0 <= fusion_weight <= 1.0:
            raise ConfigurationError(
                f"fusion_weight must be in [0, 1], got {fusion_weight}"
            )
        if nprobe < 1:
            raise ConfigurationError(f"nprobe must be >= 1, got {nprobe}")
        self._sparse = sparse
        self._dense = dense
        self._encode_query = encode_query
        self._nprobe = nprobe
        self._fusion_weight = fusion_weight
        self._fusion_method = fusion_method
        self._keys = sparse.keys

    # -- introspection --------------------------------------------------

    @property
    def sparse(self) -> InvertedIndex:
        """The sparse (inverted TF-IDF) side."""
        return self._sparse

    @property
    def dense(self) -> Optional[DenseIndex]:
        """The dense (IVF ANN) side, when compiled."""
        return self._dense

    def __len__(self) -> int:
        return len(self._keys)

    # -- retrieval ------------------------------------------------------

    def search(
        self, tokens: Sequence[str], k: int, mode: str = "hybrid"
    ) -> List[TfIdfMatch]:
        """Top-``k`` candidates under ``mode`` (sparse|dense|hybrid)."""
        if mode == "sparse":
            return self.search_sparse(tokens, k)
        if mode == "dense":
            return self.search_dense(tokens, k)
        if mode == "hybrid":
            return self.search_hybrid(tokens, k)
        raise ConfigurationError(
            f"unknown retrieval mode {mode!r} "
            "(expected 'sparse', 'dense' or 'hybrid')"
        )

    def search_sparse(self, tokens: Sequence[str], k: int) -> List[TfIdfMatch]:
        """Sparse-only top-``k`` (bit-identical to the exact scan)."""
        return self._sparse.search(tokens, k)

    def search_dense(self, tokens: Sequence[str], k: int) -> List[TfIdfMatch]:
        """Dense-only top-``k`` (IVF cluster probe), sparse fallback.

        Scores are embedding cosines in [−1, 1] — a different scale
        from sparse TF-IDF cosines, comparable within a ranking but
        not across modes.
        """
        query = self._query_vector(tokens)
        if query is None:
            return self._sparse.search(tokens, k)
        return [
            TfIdfMatch(key=self._keys[position], score=sim)
            for position, sim in self._dense.search(
                query, k, nprobe=self._nprobe
            )
        ]

    def search_hybrid(self, tokens: Sequence[str], k: int) -> List[TfIdfMatch]:
        """Fused top-``k``: union both pools, re-score with both signals."""
        query = self._query_vector(tokens)
        if query is None:
            return self._sparse.search(tokens, k)
        pool = max(k, POOL_MULTIPLIER * k)
        sparse_result = self._sparse.search_scored(tokens, pool)
        dense_pairs = self._dense.search(query, pool, nprobe=self._nprobe)
        dense_positions = np.asarray(
            [position for position, _ in dense_pairs], dtype=np.int64
        )
        union = np.union1d(sparse_result.positions, dense_positions)
        if len(union) == 0:
            return []
        sparse_scores = sparse_result.cosine_of(union)
        dense_scores = self._dense.similarities_of(query, union)
        fused = fuse_candidates(
            union,
            sparse_scores,
            dense_scores,
            fusion_weight=self._fusion_weight,
            method=self._fusion_method,
        )
        order = np.lexsort((union, -fused))[:k]
        return [
            TfIdfMatch(
                key=self._keys[int(union[rank])], score=float(fused[rank])
            )
            for rank in order
        ]

    def _query_vector(self, tokens: Sequence[str]) -> Optional[np.ndarray]:
        if self._dense is None or self._encode_query is None:
            return None
        return self._encode_query(tokens)
