"""Array-backed inverted index: the sublinear sparse retriever.

Same scoring model as :class:`repro.text.tfidf.TfIdfIndex` (ltc-style
TF-IDF with L2 document normalisation), different execution: postings
are frozen into contiguous NumPy arrays at build time — one
``(doc_id, weight)`` pair per (term, document) — and a query
accumulates term contributions with vectorised fancy-index adds
instead of a Python dict loop.  The per-document accumulation order is
the same as the exact scan's (terms in query first-occurrence order;
each document appears at most once per term), every arithmetic step
(weight product, accumulation, norm division) runs in IEEE-754 double
exactly as the scalar code does, and ties are broken on the same
``(-cosine, doc_id)`` key — so for the hits it returns, the scores are
**bit-identical** to ``TfIdfIndex.search`` and the top-k lists are
equal element-for-element.  The property suite
(``tests/retrieval/test_inverted.py``) holds this over randomized
corpora.

Posting lists are stored impact-ordered (weight descending) — harmless
for exact scoring, since per-term accumulation is element-wise — which
makes early termination a slice: ``max_postings_per_term`` caps each
term's scan to its highest-impact postings (a WAND-flavoured
approximation; opt-in, off by default, and excluded from the
bit-identity guarantee).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.text.tfidf import CorpusStats, TfIdfIndex, TfIdfMatch
from repro.utils.errors import DataError, NotFittedError

#: Touched-document sets at or below this size are fully sorted; above
#: it, an argpartition pre-selects the top-k value range first and only
#: the boundary-tie superset is sorted (identical output, less work).
_FULL_SORT_LIMIT = 4096


class SparseHits:
    """One query's result: the top-k hits plus a whole-corpus scorer.

    The fusion layer needs the *exact* sparse cosine of documents the
    dense side surfaced, not just of the sparse top-k.  Scoring a query
    already accumulated raw scores for every touched document, so that
    lookup is a division away; untouched documents have true cosine 0.
    """

    __slots__ = ("hits", "positions", "_raw", "_norms", "_query_norm")

    def __init__(
        self,
        hits: List[TfIdfMatch],
        positions: np.ndarray,
        raw: Optional[np.ndarray],
        norms: Optional[np.ndarray],
        query_norm: float,
    ) -> None:
        self.hits = hits
        #: Document positions of ``hits``, in hit order (what the dense
        #: side and the fusion layer address documents by).
        self.positions = positions
        self._raw = raw
        self._norms = norms
        self._query_norm = query_norm

    def cosine_of(self, positions: np.ndarray) -> np.ndarray:
        """Exact query cosines for arbitrary document positions."""
        if self._raw is None:
            return np.zeros(len(positions), dtype=np.float64)
        positions = np.asarray(positions, dtype=np.int64)
        return self._raw[positions] / (
            self._norms[positions] * self._query_norm
        )


class InvertedIndex:
    """Vectorised TF-IDF inverted index over frozen concept documents.

    Build with :meth:`build` (fits a :class:`TfIdfIndex` internally so
    the weights cannot drift from the reference implementation) or
    rehydrate a compiled one with :meth:`from_arrays`.
    """

    def __init__(self) -> None:
        self._keys: List[Hashable] = []
        self._norms: np.ndarray = np.zeros(0, dtype=np.float64)
        self._terms: List[str] = []
        self._term_slot: Dict[str, int] = {}
        self._offsets: np.ndarray = np.zeros(1, dtype=np.int64)
        self._docs: np.ndarray = np.zeros(0, dtype=np.int32)
        self._weights: np.ndarray = np.zeros(0, dtype=np.float64)
        self._df: Dict[str, int] = {}
        self._doc_count = 0
        self._fitted = False

    # -- construction -------------------------------------------------

    @classmethod
    def build(
        cls,
        documents: Sequence[Tuple[Hashable, Sequence[str]]],
        stats: Optional[CorpusStats] = None,
    ) -> "InvertedIndex":
        """Index ``(key, tokens)`` documents (optionally global stats).

        Delegates weight computation to ``TfIdfIndex.fit`` — the same
        tf/idf formulas, the same smoothing — then freezes its postings
        into arrays.  ``stats`` has the usual meaning: external global
        document frequencies so a partial index scores on the corpus
        scale.
        """
        reference = TfIdfIndex().fit(documents, stats=stats)
        return cls.from_tfidf(reference)

    @classmethod
    def from_tfidf(cls, reference: TfIdfIndex) -> "InvertedIndex":
        """Freeze a fitted :class:`TfIdfIndex` into array postings."""
        stats = reference.stats()  # raises NotFittedError when unfitted
        index = cls()
        index._keys = [
            key for key in getattr(reference, "_keys")
        ]
        index._norms = np.asarray(
            getattr(reference, "_norms"), dtype=np.float64
        )
        index._df = dict(stats.df)
        index._doc_count = stats.doc_count
        postings: Dict[str, List[Tuple[int, float]]] = getattr(
            reference, "_postings"
        )
        terms = sorted(postings)
        offsets = np.zeros(len(terms) + 1, dtype=np.int64)
        doc_blocks: List[np.ndarray] = []
        weight_blocks: List[np.ndarray] = []
        for slot, term in enumerate(terms):
            entries = postings[term]
            docs = np.asarray([doc for doc, _ in entries], dtype=np.int32)
            weights = np.asarray(
                [weight for _, weight in entries], dtype=np.float64
            )
            # Impact order (weight descending, doc id breaking ties):
            # harmless for exact scoring — per-term accumulation is
            # element-wise — and it turns early termination into a
            # prefix slice.
            order = np.lexsort((docs, -weights))
            doc_blocks.append(docs[order])
            weight_blocks.append(weights[order])
            offsets[slot + 1] = offsets[slot] + len(entries)
        index._terms = terms
        index._term_slot = {term: slot for slot, term in enumerate(terms)}
        index._offsets = offsets
        index._docs = (
            np.concatenate(doc_blocks)
            if doc_blocks
            else np.zeros(0, dtype=np.int32)
        )
        index._weights = (
            np.concatenate(weight_blocks)
            if weight_blocks
            else np.zeros(0, dtype=np.float64)
        )
        index._fitted = True
        return index

    # -- queries -------------------------------------------------------

    def _idf(self, term: str) -> float:
        return 1.0 + math.log(
            (self._doc_count + 1) / (self._df.get(term, 0) + 1)
        )

    def _query_weights(
        self, tokens: Sequence[str]
    ) -> Tuple[Dict[str, float], float]:
        """Query-side weights and L2 norm, exactly as the exact scan.

        Terms are admitted by corpus document frequency (not posting
        presence) and iterated in first-occurrence order, so both the
        per-document accumulation order and the query norm's summation
        order reproduce ``TfIdfIndex.search`` bit for bit.
        """
        query_freq = Counter(tokens)
        weights = {
            term: (1.0 + math.log(count)) * self._idf(term)
            for term, count in query_freq.items()
            if self._df.get(term, 0) > 0
        }
        if not weights:
            return {}, 0.0
        norm = math.sqrt(sum(weight * weight for weight in weights.values()))
        return weights, norm

    def search(
        self,
        tokens: Sequence[str],
        k: int = 10,
        max_postings_per_term: int = 0,
    ) -> List[TfIdfMatch]:
        """Top-``k`` hits — the exact scan's answer, as it types it.

        With ``max_postings_per_term`` 0 (the default) the result is
        bit-identical to ``TfIdfIndex.search`` over the same documents:
        same hit set, same order, same float scores.  A positive value
        scans only that many highest-impact postings per term — an
        approximation that trades recall on very common terms for
        bounded per-term work.
        """
        return self.search_scored(
            tokens, k, max_postings_per_term=max_postings_per_term
        ).hits

    def search_scored(
        self,
        tokens: Sequence[str],
        k: int = 10,
        max_postings_per_term: int = 0,
    ) -> SparseHits:
        """:meth:`search` plus the whole-corpus scorer for fusion."""
        if not self._fitted:
            raise NotFittedError("InvertedIndex.search called before build")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        empty = np.zeros(0, dtype=np.int64)
        query_weights, query_norm = self._query_weights(tokens)
        if not query_weights:
            return SparseHits([], empty, None, None, 0.0)
        scores = np.zeros(len(self._keys), dtype=np.float64)
        for term, query_weight in query_weights.items():
            slot = self._term_slot.get(term)
            if slot is None:
                continue
            lo = int(self._offsets[slot])
            hi = int(self._offsets[slot + 1])
            if max_postings_per_term > 0:
                hi = min(hi, lo + max_postings_per_term)
            # Each document appears at most once per term, so this
            # fancy-index add is the scalar loop's accumulation,
            # vectorised; weight products and sums run in the same
            # IEEE-754 doubles.
            scores[self._docs[lo:hi]] += query_weight * self._weights[lo:hi]
        # All weights are strictly positive, so "touched" is exactly
        # "score > 0" — the same candidate set the dict scan builds.
        touched = np.flatnonzero(scores)
        if len(touched) == 0:
            return SparseHits([], empty, scores, self._norms, query_norm)
        cosines = scores[touched] / (self._norms[touched] * query_norm)
        if len(touched) > k and len(touched) > _FULL_SORT_LIMIT:
            # Pre-select on value alone, then sort only the documents
            # at or above the k-th cosine — the boundary-tie superset —
            # which preserves the exact (-cosine, doc_id) order.
            top = np.argpartition(-cosines, k - 1)[:k]
            pivot = cosines[top].min()
            keep = np.flatnonzero(cosines >= pivot)
            order = np.lexsort((touched[keep], -cosines[keep]))
            chosen = keep[order[:k]]
        else:
            order = np.lexsort((touched, -cosines))
            chosen = order[:k]
        positions = touched[chosen].astype(np.int64)
        hits = [
            TfIdfMatch(key=self._keys[doc_id], score=float(cosine))
            for doc_id, cosine in zip(positions, cosines[chosen])
        ]
        return SparseHits(hits, positions, scores, self._norms, query_norm)

    def postings_examined(self, tokens: Sequence[str]) -> int:
        """Postings a query would touch (Figure 11 CR accounting)."""
        if not self._fitted:
            raise NotFittedError(
                "InvertedIndex.postings_examined called before build"
            )
        total = 0
        for term in set(tokens):
            slot = self._term_slot.get(term)
            if slot is not None:
                total += int(self._offsets[slot + 1] - self._offsets[slot])
        return total

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def keys(self) -> List[Hashable]:
        """Indexed document keys, position-ordered."""
        return list(self._keys)

    def stats(self) -> CorpusStats:
        """The corpus statistics driving the IDF weights."""
        if not self._fitted:
            raise NotFittedError("InvertedIndex.stats called before build")
        return CorpusStats(doc_count=self._doc_count, df=dict(self._df))

    # -- persistence ----------------------------------------------------

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The compiled-artifact slab form (``np.savez``-ready).

        Keys and corpus statistics are *not* duplicated here: the
        artifact already stores the concept order and global TF-IDF
        stats in ``artifact.json``, and :meth:`from_arrays` takes them
        back as parameters.
        """
        if not self._fitted:
            raise NotFittedError("InvertedIndex.to_arrays called before build")
        return {
            "terms": np.asarray(self._terms, dtype=np.str_),
            "offsets": self._offsets,
            "docs": self._docs,
            "weights": self._weights,
            "norms": self._norms,
        }

    @classmethod
    def from_arrays(
        cls,
        arrays: Mapping[str, np.ndarray],
        keys: Sequence[Hashable],
        stats: CorpusStats,
    ) -> "InvertedIndex":
        """Rehydrate from :meth:`to_arrays` output plus artifact state."""
        index = cls()
        try:
            terms = [str(term) for term in arrays["terms"]]
            offsets = np.asarray(arrays["offsets"], dtype=np.int64)
            docs = np.asarray(arrays["docs"], dtype=np.int32)
            weights = np.asarray(arrays["weights"], dtype=np.float64)
            norms = np.asarray(arrays["norms"], dtype=np.float64)
        except KeyError as exc:
            raise DataError(
                f"sparse index arrays are missing field {exc}"
            ) from exc
        if len(offsets) != len(terms) + 1:
            raise DataError(
                f"sparse index is inconsistent: {len(terms)} terms but "
                f"{len(offsets)} offsets"
            )
        if len(norms) != len(keys):
            raise DataError(
                f"sparse index is inconsistent: {len(keys)} keys but "
                f"{len(norms)} document norms"
            )
        index._keys = list(keys)
        index._norms = norms
        index._terms = terms
        index._term_slot = {term: slot for slot, term in enumerate(terms)}
        index._offsets = offsets
        index._docs = docs
        index._weights = weights
        index._df = dict(stats.df)
        index._doc_count = stats.doc_count
        index._fitted = True
        return index
