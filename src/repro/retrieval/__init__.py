"""Sublinear Phase-I retrieval over a compiled concept artifact.

The original Phase-I path (:class:`repro.text.tfidf.TfIdfIndex`) scores
every document sharing a term with the query inside a Python dict loop
— O(matching documents) of interpreter work per query, which dominates
CR time once the ontology passes ~10⁴ concepts and is hopeless at the
ROADMAP's million-concept north star.  This package is the retrieval
layer that replaces that scan with sublinear (or at least
constant-factor-collapsed) structures while keeping the exact scan as
the always-available reference path:

* :mod:`repro.retrieval.inverted` — an array-backed inverted index
  with precomputed TF-IDF postings and document norms.  Scoring is
  vectorised NumPy over impact-ordered posting lists; the cosines (and
  tie order) of returned hits are **bit-identical** to
  ``TfIdfIndex.search``, so it can stand in for the exact scan without
  perturbing a single ranking.  Impact-ordered early termination is
  available as an opt-in approximation knob.
* :mod:`repro.retrieval.ann` — a pure-NumPy IVF (inverted-file)
  approximate nearest-neighbour index over the artifact's L2-normalised
  concept encoder final states: k-means centroids trained offline at
  ``repro compile`` time, ``nprobe`` nearest clusters probed per query.
* :mod:`repro.retrieval.hybrid` — the fusion layer: sparse and dense
  candidate sets are unioned and re-scored with *both* signals
  (weighted-sum or reciprocal-rank fusion), the flair
  ``BiomedicalEntityLinker`` sparse+dense recipe in miniature.

Mode selection, ``nprobe``, and fusion knobs travel through
:class:`repro.core.config.RetrievalConfig`;
:class:`repro.engine.shards.ShardedConceptEngine` dispatches Phase I
on it (``exact`` remains the default and the correctness oracle).
"""

from repro.retrieval.ann import DenseIndex
from repro.retrieval.hybrid import HybridRetriever, fuse_candidates
from repro.retrieval.inverted import InvertedIndex

__all__ = [
    "DenseIndex",
    "HybridRetriever",
    "InvertedIndex",
    "fuse_candidates",
]
