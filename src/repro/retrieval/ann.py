"""Pure-NumPy IVF approximate nearest-neighbour dense retriever.

The compiled artifact already freezes a concept-encoder final state for
every concept; this module compiles those vectors into an IVF
(inverted-file) index at ``repro compile`` time — the classic
cluster-probe design used by FAISS's ``IndexIVFFlat`` and by the CSIRO
semantic-search system for clinical ontologies, here in plain NumPy:

* **train**: L2-normalise the vectors and run seeded Lloyd k-means
  (``n_clusters ≈ √N`` by default) to produce coarse centroids; every
  vector is assigned to its nearest centroid, and the per-cluster
  member lists are frozen CSR-style.
* **search**: normalise the query, rank centroids by inner product,
  probe the ``nprobe`` nearest clusters, and score only their members —
  examining ~``nprobe/C`` of the corpus instead of all of it.

On unit vectors, inner product is cosine, so recall degrades gracefully
as ``nprobe`` shrinks; :meth:`DenseIndex.exhaustive` is the in-module
ground truth the recall tests and the benchmark gate compare against.
Everything is deterministic: seeded initialisation, argpartition
boundaries re-sorted on ``(-similarity, position)``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.utils.errors import DataError, NotFittedError

#: Rows per chunk during k-means assignment — bounds the transient
#: (chunk × clusters) similarity matrix to a few MB at 100k vectors.
_ASSIGN_CHUNK = 8192


def _normalize(vectors: np.ndarray) -> np.ndarray:
    """Row-wise L2 normalisation (zero rows pass through unchanged)."""
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise DataError(
            f"dense vectors must be 2-D (N, dim), got shape {vectors.shape}"
        )
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return vectors / norms


class DenseIndex:
    """IVF cluster-probe index over L2-normalised concept vectors."""

    def __init__(self) -> None:
        self._vectors: np.ndarray = np.zeros((0, 0), dtype=np.float64)
        self._centroids: np.ndarray = np.zeros((0, 0), dtype=np.float64)
        self._cluster_offsets: np.ndarray = np.zeros(1, dtype=np.int64)
        self._cluster_members: np.ndarray = np.zeros(0, dtype=np.int32)
        self._fitted = False

    # -- construction -------------------------------------------------

    @classmethod
    def train(
        cls,
        vectors: np.ndarray,
        n_clusters: Optional[int] = None,
        seed: int = 0,
        iterations: int = 10,
    ) -> "DenseIndex":
        """K-means-train an IVF index over ``(N, dim)`` vectors.

        ``n_clusters`` defaults to ``⌈√N⌉`` (the usual IVF rule of
        thumb: probe cost and cluster-scan cost balance near √N).
        Training is Lloyd's algorithm with seeded distinct-point
        initialisation, stopping early once assignments stabilise.
        """
        unit = _normalize(vectors)
        count = unit.shape[0]
        if count == 0:
            raise DataError("cannot train a dense index over zero vectors")
        if n_clusters is None:
            n_clusters = max(1, int(np.ceil(np.sqrt(count))))
        n_clusters = min(n_clusters, count)
        if n_clusters < 1:
            raise DataError(f"n_clusters must be >= 1, got {n_clusters}")
        rng = np.random.default_rng(seed)
        chosen = rng.choice(count, size=n_clusters, replace=False)
        centroids = unit[np.sort(chosen)].copy()
        assignment = np.zeros(count, dtype=np.int32)
        for _ in range(max(1, iterations)):
            previous = assignment
            assignment = cls._assign(unit, centroids)
            if np.array_equal(previous, assignment):
                break
            for cluster in range(n_clusters):
                members = np.flatnonzero(assignment == cluster)
                if len(members):
                    centroids[cluster] = unit[members].mean(axis=0)
                # An emptied cluster keeps its old centroid; it can
                # re-capture points on a later iteration and is harmless
                # at probe time (its member list is simply empty).
        index = cls()
        index._vectors = unit
        index._centroids = centroids
        order = np.argsort(assignment, kind="stable")
        index._cluster_members = order.astype(np.int32)
        index._cluster_offsets = np.zeros(n_clusters + 1, dtype=np.int64)
        counts = np.bincount(assignment, minlength=n_clusters)
        np.cumsum(counts, out=index._cluster_offsets[1:])
        index._fitted = True
        return index

    @staticmethod
    def _assign(unit: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Nearest centroid per vector, chunked to bound memory.

        On unit vectors, ``argmin ‖v − c‖²`` equals
        ``argmax (v·c − ‖c‖²/2)`` — one matmul per chunk instead of a
        full pairwise-distance tensor.
        """
        half_sq = 0.5 * np.einsum("ij,ij->i", centroids, centroids)
        assignment = np.zeros(unit.shape[0], dtype=np.int32)
        for start in range(0, unit.shape[0], _ASSIGN_CHUNK):
            block = unit[start : start + _ASSIGN_CHUNK]
            scores = block @ centroids.T
            scores -= half_sq
            assignment[start : start + _ASSIGN_CHUNK] = np.argmax(
                scores, axis=1
            )
        return assignment

    # -- queries -------------------------------------------------------

    def search(
        self, query: np.ndarray, k: int, nprobe: int = 8
    ) -> List[Tuple[int, float]]:
        """Approximate top-``k`` ``(position, cosine)`` for ``query``.

        Probes the ``nprobe`` centroid-nearest clusters and ranks their
        members by inner product with the normalised query (== cosine).
        Ties break on position, so results are deterministic.
        """
        members, sims = self._probe(query, nprobe)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if len(members) == 0:
            return []
        if len(members) > k:
            top = np.argpartition(-sims, k - 1)[:k]
            pivot = sims[top].min()
            keep = np.flatnonzero(sims >= pivot)
            order = np.lexsort((members[keep], -sims[keep]))
            chosen = keep[order[:k]]
        else:
            order = np.lexsort((members, -sims))
            chosen = order
        return [
            (int(position), float(sim))
            for position, sim in zip(members[chosen], sims[chosen])
        ]

    def _probe(
        self, query: np.ndarray, nprobe: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Member positions and similarities for the probed clusters."""
        if not self._fitted:
            raise NotFittedError("DenseIndex.search called before train")
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        unit_query = self._unit_query(query)
        centroid_sims = self._centroids @ unit_query
        nprobe = min(nprobe, len(self._centroids))
        if nprobe < len(self._centroids):
            probed = np.argpartition(-centroid_sims, nprobe - 1)[:nprobe]
        else:
            probed = np.arange(len(self._centroids))
        blocks = [
            self._cluster_members[
                self._cluster_offsets[cluster] : self._cluster_offsets[
                    cluster + 1
                ]
            ]
            for cluster in np.sort(probed)
        ]
        members = (
            np.concatenate(blocks) if blocks else np.zeros(0, dtype=np.int32)
        )
        if len(members) == 0:
            return members, np.zeros(0, dtype=np.float64)
        sims = self._vectors[members] @ unit_query
        return members, sims

    def exhaustive(self, query: np.ndarray, k: int) -> List[Tuple[int, float]]:
        """Exact top-``k`` over *all* vectors — the recall ground truth."""
        if not self._fitted:
            raise NotFittedError("DenseIndex.exhaustive called before train")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        sims = self._vectors @ self._unit_query(query)
        positions = np.arange(len(sims))
        if len(sims) > k:
            top = np.argpartition(-sims, k - 1)[:k]
            pivot = sims[top].min()
            keep = np.flatnonzero(sims >= pivot)
            order = np.lexsort((positions[keep], -sims[keep]))
            chosen = keep[order[:k]]
        else:
            chosen = np.lexsort((positions, -sims))
        return [(int(position), float(sims[position])) for position in chosen]

    def similarities_of(
        self, query: np.ndarray, positions: np.ndarray
    ) -> np.ndarray:
        """Exact cosines of arbitrary positions (fusion's gather side)."""
        if not self._fitted:
            raise NotFittedError(
                "DenseIndex.similarities_of called before train"
            )
        positions = np.asarray(positions, dtype=np.int64)
        return self._vectors[positions] @ self._unit_query(query)

    def _unit_query(self, query: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self._vectors.shape[1]:
            raise DataError(
                f"query has dim {query.shape[0]}, index has dim "
                f"{self._vectors.shape[1]}"
            )
        norm = float(np.linalg.norm(query))
        return query / norm if norm > 0 else query

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return int(self._vectors.shape[0])

    @property
    def n_clusters(self) -> int:
        """The trained coarse-quantiser size C."""
        return int(self._centroids.shape[0])

    def vectors_examined(self, nprobe: int) -> float:
        """Mean members scanned for an ``nprobe``-cluster probe.

        The expected per-query scan cost (CR accounting); exact per
        query would need the query, but cluster sizes are near-uniform
        after k-means so the mean is the useful number.
        """
        if not self._fitted:
            raise NotFittedError(
                "DenseIndex.vectors_examined called before train"
            )
        nprobe = min(max(1, nprobe), self.n_clusters)
        return len(self) * nprobe / self.n_clusters

    # -- persistence ----------------------------------------------------

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The compiled-artifact slab form (``np.savez``-ready).

        The normalised vectors themselves are *not* duplicated: the
        artifact already carries every concept's encoder final state,
        and :meth:`from_arrays` re-derives the unit vectors from it
        (normalisation is deterministic).
        """
        if not self._fitted:
            raise NotFittedError("DenseIndex.to_arrays called before train")
        return {
            "centroids": self._centroids,
            "cluster_offsets": self._cluster_offsets,
            "cluster_members": self._cluster_members,
        }

    @classmethod
    def from_arrays(
        cls, arrays: Mapping[str, np.ndarray], vectors: np.ndarray
    ) -> "DenseIndex":
        """Rehydrate from :meth:`to_arrays` output plus the raw vectors."""
        index = cls()
        try:
            centroids = np.asarray(arrays["centroids"], dtype=np.float64)
            offsets = np.asarray(arrays["cluster_offsets"], dtype=np.int64)
            members = np.asarray(arrays["cluster_members"], dtype=np.int32)
        except KeyError as exc:
            raise DataError(
                f"dense index arrays are missing field {exc}"
            ) from exc
        unit = _normalize(vectors)
        if len(offsets) != len(centroids) + 1:
            raise DataError(
                f"dense index is inconsistent: {len(centroids)} centroids "
                f"but {len(offsets)} offsets"
            )
        if len(members) != unit.shape[0]:
            raise DataError(
                f"dense index is inconsistent: {unit.shape[0]} vectors but "
                f"{len(members)} cluster members"
            )
        if centroids.shape[0] and centroids.shape[1] != unit.shape[1]:
            raise DataError(
                f"dense index is inconsistent: vectors have dim "
                f"{unit.shape[1]}, centroids dim {centroids.shape[1]}"
            )
        index._vectors = unit
        index._centroids = centroids
        index._cluster_offsets = offsets
        index._cluster_members = members
        index._fitted = True
        return index
