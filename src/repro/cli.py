"""Command-line interface: ``python -m repro <command>``.

Ten commands cover the deployment lifecycle:

* ``generate`` — synthesise a dataset bundle to a directory
  (ontology.json, kb.json, queries.jsonl);
* ``train`` — pre-train embeddings + train COM-AID on a generated
  dataset, saving a complete pipeline directory (``--run-dir`` also
  records per-epoch telemetry for ``repro runs``);
* ``compile`` — precompile every concept's encoder states, structure
  memories, and Phase-I index into a checksummed artifact directory
  that ``link``/``serve`` can mount via ``--artifact-dir`` (and shard
  with ``--shards``);
* ``link`` — load a saved pipeline and link one or more queries;
* ``trace`` — link queries with tracing forced on and print each
  request's span tree (the offline twin of ``GET /v1/traces``); with
  ``--file`` it renders traces captured from a running server instead,
  including stitched multi-process trees (worker ``[pid N]`` spans,
  queue-wait/fusion/dispatch);
* ``top`` — one ``top``-style snapshot of a running serving tier:
  rolling SLO window (availability, burn rate, p99 vs deadline),
  admission-queue and shed counters, and the per-worker slot table;
* ``evaluate`` — load a saved pipeline and score it against a
  generated dataset's ground-truth queries;
* ``serve`` — load a saved pipeline and run the long-lived HTTP
  linking service (micro-batching, bounded caches, metrics, traces);
* ``runs`` — list training-run telemetry directories, or diff two
  runs epoch by epoch;
* ``verify-pipeline`` — check a saved pipeline's (and/or a compiled
  artifact's, via ``--artifact``) manifest and per-file checksums
  without loading the model;
* ``lifecycle`` — run the closed-loop model-lifecycle drill: pool
  uncertain queries off live traffic, resolve them against ground
  truth, retrain, recompile, and blue/green hot-swap under client
  load, printing a JSON report (exit 1 if the swap failed or dropped
  requests).

``link`` and ``serve`` accept ``--config FILE``: a JSON file shaped
like :meth:`repro.core.config.RuntimeConfig.to_dict` output.  Flags
layered on top win, but only when they are moved off their defaults —
a flag left at its default defers to the file.

Example session::

    python -m repro generate --dataset hospital-x-like --out data/ --seed 7
    python -m repro train --data data/ --out model/ --dim 24 --epochs 8 \\
        --run-dir runs/
    python -m repro compile --model model/ --out artifact/
    python -m repro link --model model/ "ckd 5" "fe def anemia"
    python -m repro trace --model model/ "ckd 5"
    python -m repro runs --dir runs/
    python -m repro evaluate --model model/ --data data/ --limit 100
    python -m repro serve --model model/ --artifact-dir artifact/ \\
        --shards 4 --port 8080 --log-json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.config import (
    SHED_POLICIES,
    ComAidConfig,
    LinkerConfig,
    RuntimeConfig,
    TenantConfig,
    TrainingConfig,
)
from repro.core.persistence import (
    load_pipeline,
    save_pipeline,
    verify_pipeline,
)
from repro.core.trainer import ComAidTrainer
from repro.datasets.generator import LinkedQuery
from repro.datasets.registry import get_dataset_builder
from repro.embeddings.cbow import CbowConfig
from repro.embeddings.pretrain import pretrain_word_vectors
from repro.eval.metrics import mean_reciprocal_rank, top1_accuracy
from repro.kb.corpus import SnippetCorpus
from repro.kb.knowledge_base import KnowledgeBase
from repro.ontology.loaders import load_ontology_json, save_ontology_json
from repro.utils.errors import ReproError

#: argparse defaults for the flags that can also come from ``--config``.
#: Registered into the parser *and* consulted when layering flags over
#: the file, so the two can never drift: a flag still sitting at its
#: default defers to the config file.
_LINKER_FLAG_DEFAULTS = {"k": 20, "cache_size": 4096}
_SERVING_FLAG_DEFAULTS = {
    "host": "127.0.0.1",
    "port": 8080,
    "max_batch_size": 8,
    "batch_wait_ms": 2.0,
    "request_timeout": 30.0,
    "trace_sample": 1.0,
    "trace_buffer": 64,
    "workers": 0,
    "admission_queue": 256,
    "deadline_ms": 0.0,
    "shed_policy": "reject_new",
    "slo_window": 60.0,
    "slo_availability": 0.999,
}

#: argparse dest → config dataclass field, where the two differ.
_FLAG_TO_FIELD = {
    "cache_size": "encoding_cache_size",
    "request_timeout": "request_timeout_s",
    "trace_sample": "trace_sample_rate",
    "slo_window": "slo_window_s",
}


def _shards_value(text: str) -> object:
    """``--shards`` parser: a positive integer or the literal ``auto``."""
    if text == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}"
        )


def _flag_overrides(
    args: argparse.Namespace, defaults: dict
) -> dict:
    """Flags moved off their registered defaults, keyed by config field."""
    overrides = {}
    for dest, default in defaults.items():
        value = getattr(args, dest, default)
        if value != default:
            overrides[_FLAG_TO_FIELD.get(dest, dest)] = value
    return overrides


def _runtime_config(args: argparse.Namespace) -> RuntimeConfig:
    """The layered runtime config: ``--config`` file under flag overrides.

    Every command that needs a :class:`LinkerConfig` or
    :class:`ServingConfig` builds it here, so raw flag/file values pass
    through exactly one validation path (``RuntimeConfig``).
    """
    if getattr(args, "config", None):
        runtime = RuntimeConfig.from_file(args.config)
    else:
        runtime = RuntimeConfig()
    linker_overrides = _flag_overrides(args, _LINKER_FLAG_DEFAULTS)
    if getattr(args, "artifact_dir", None) is not None:
        linker_overrides["artifact_dir"] = args.artifact_dir
    if getattr(args, "shards", None) is not None:
        linker_overrides["shards"] = args.shards
    if getattr(args, "retrieval_mode", None) is not None:
        import dataclasses

        linker_overrides["retrieval"] = dataclasses.replace(
            runtime.linker.retrieval, mode=args.retrieval_mode
        )
    if linker_overrides:
        runtime = runtime.replace_section("linker", **linker_overrides)
    if hasattr(args, "host"):  # serve-only flags
        serving_overrides = _flag_overrides(args, _SERVING_FLAG_DEFAULTS)
        if args.no_warm:
            serving_overrides["warm_on_start"] = False
        if serving_overrides:
            runtime = runtime.replace_section("serving", **serving_overrides)
    return runtime


def _cmd_generate(args: argparse.Namespace) -> int:
    builder = get_dataset_builder(args.dataset)
    bundle = builder(rng=args.seed, query_count=args.queries)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    save_ontology_json(bundle.ontology, out / "ontology.json")
    bundle.kb.save_json(out / "kb.json")
    with open(out / "queries.jsonl", "w", encoding="utf-8") as handle:
        for query in bundle.queries:
            handle.write(
                json.dumps(
                    {"text": query.text, "cid": query.cid,
                     "channels": list(query.channels)}
                )
                + "\n"
            )
    with open(out / "corpus.jsonl", "w", encoding="utf-8") as handle:
        for snippet in bundle.corpus:
            handle.write(
                json.dumps({"text": snippet.text, "cid": snippet.cid}) + "\n"
            )
    print(f"wrote dataset to {out}: {bundle.summary()}")
    return 0


def _load_dataset_dir(path: Path):
    ontology = load_ontology_json(path / "ontology.json")
    kb = KnowledgeBase.load_json(ontology, path / "kb.json")
    corpus = SnippetCorpus()
    corpus_file = path / "corpus.jsonl"
    if corpus_file.exists():
        with open(corpus_file, encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                corpus.add(record["text"], cid=record.get("cid"))
    queries: List[LinkedQuery] = []
    queries_file = path / "queries.jsonl"
    if queries_file.exists():
        with open(queries_file, encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                queries.append(
                    LinkedQuery(
                        text=record["text"],
                        cid=record["cid"],
                        channels=tuple(record.get("channels", ())),
                    )
                )
    return ontology, kb, corpus, queries


def _cmd_train(args: argparse.Namespace) -> int:
    data = Path(args.data)
    ontology, kb, corpus, _ = _load_dataset_dir(data)
    vectors = None
    if not args.no_pretrain:
        if len(corpus) == 0:
            print("warning: no corpus.jsonl found; skipping pre-training")
        else:
            vectors = pretrain_word_vectors(
                corpus,
                CbowConfig(
                    dim=args.dim, window=4, epochs=args.cbow_epochs,
                    negatives=10, subsample=3e-3,
                ),
                rng=args.seed,
            )
    trainer = ComAidTrainer(
        ComAidConfig(dim=args.dim, beta=args.beta),
        TrainingConfig(
            epochs=args.epochs, batch_size=args.batch_size,
            optimizer="adagrad", learning_rate=args.learning_rate,
            sampled_softmax=args.sampled_softmax,
        ),
        rng=args.seed,
    )
    model = trainer.fit(
        kb,
        word_vectors=vectors,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume_from=args.resume,
        run_dir=args.run_dir,
        run_id=args.run_id,
    )
    # Provenance lands in the pipeline manifest (and /metrics): which
    # seed produced the deployed weights, and whether training resumed
    # from a checkpoint rather than running uninterrupted.
    metadata = {
        "seed": args.seed,
        "epochs": args.epochs,
        "resumed_from": str(args.resume) if args.resume else None,
        "checkpoint_dir": (
            str(args.checkpoint_dir) if args.checkpoint_dir else None
        ),
    }
    out = save_pipeline(
        args.out, model, ontology, kb=kb, word_vectors=vectors,
        metadata=metadata,
    )
    print(
        f"trained on {trainer.history.examples} pairs "
        f"(final loss {trainer.history.final_loss():.3f}, "
        f"{trainer.history.seconds:.0f}s); saved pipeline to {out}"
    )
    return 0


def _cmd_verify_pipeline(args: argparse.Namespace) -> int:
    if not args.model and not args.artifact:
        print(
            "error: provide --model and/or --artifact to verify",
            file=sys.stderr,
        )
        return 2
    if args.model:
        manifest = verify_pipeline(args.model)
        files = manifest.get("files", {})
        total = sum(int(entry.get("bytes", 0)) for entry in files.values())
        print(
            f"pipeline {args.model} OK: {len(files)} files, "
            f"{total} bytes, all checksums match"
        )
        metadata = manifest.get("metadata") or {}
        if metadata:
            print(f"  metadata: {json.dumps(metadata, sort_keys=True)}")
    if args.artifact:
        from repro.engine.compile import verify_artifact

        manifest = verify_artifact(args.artifact)
        files = manifest.get("files", {})
        total = sum(int(entry.get("bytes", 0)) for entry in files.values())
        header = json.loads(
            (Path(args.artifact) / "artifact.json").read_text(
                encoding="utf-8"
            )
        )
        indexes = sorted(header.get("retrieval") or {}) or ["none"]
        print(
            f"artifact {args.artifact} OK: {len(files)} files, "
            f"{total} bytes, manifest + per-index checksums match "
            f"(indexes={','.join(indexes)})"
        )
    return 0


def _cmd_lifecycle(args: argparse.Namespace) -> int:
    """Closed-loop lifecycle drill: pool → retrain → recompile → swap."""
    from repro.eval.experiments.lifecycle_drill import run_lifecycle_drill

    workdir = Path(args.workdir) if args.workdir else None
    report = run_lifecycle_drill(
        scale=args.scale,
        seed=args.seed,
        workdir=workdir,
        clients=args.clients,
        retrain_epochs=args.retrain_epochs,
    )
    print(json.dumps(report, indent=2, sort_keys=True, default=str))
    swap_window = report["swap_window"]
    ok = (
        report["promoted"]
        and report["fingerprint_changed"]
        and swap_window["failures"] == 0
        and swap_window["degraded"] == 0
    )
    return 0 if ok else 1


def _cmd_compile(args: argparse.Namespace) -> int:
    # Imported here: only this command needs the engine's compiler.
    from repro.engine.compile import compile_artifact

    model, ontology, kb, _, _ = load_pipeline(args.model)
    target = compile_artifact(
        args.out,
        model,
        ontology,
        kb=kb,
        index_aliases=not args.no_aliases,
        metadata={"pipeline": str(args.model)},
        index=args.index,
        index_seed=args.index_seed,
    )
    header = json.loads((target / "artifact.json").read_text(encoding="utf-8"))
    indexes = sorted(header.get("retrieval", {})) or ["none"]
    print(
        f"compiled {header['concepts']} concepts "
        f"(dim {header['dim']}, beta {header['beta']}, "
        f"aliases={not args.no_aliases}, "
        f"indexes={','.join(indexes)}) to {target}"
    )
    return 0


def _cmd_link(args: argparse.Namespace) -> int:
    runtime = _runtime_config(args)
    _, ontology, _, _, linker = load_pipeline(args.model, runtime.linker)
    for query in args.queries:
        result = linker.link(query)
        print(f"query: {query!r}")
        if result.rewrites:
            rewrites = ", ".join(
                f"{r.original}->{r.replacement}" for r in result.rewrites
            )
            print(f"  rewrites: {rewrites}")
        if not result.ranked:
            print("  (no candidates)")
            continue
        for candidate in result.ranked[: args.top]:
            description = ontology.get(candidate.cid).description
            print(
                f"  {candidate.cid:<10} logp={candidate.log_prob:8.2f}  "
                f"{description}"
            )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.trace import Tracer, format_trace

    if args.file:
        return _print_trace_file(Path(args.file), format_trace)
    if not args.model or not args.queries:
        print(
            "error: provide --model and queries, or --file to render "
            "captured traces",
            file=sys.stderr,
        )
        return 2
    _, ontology, _, _, linker = load_pipeline(
        args.model, LinkerConfig(k=args.k)
    )
    tracer = Tracer(sample_rate=1.0, capacity=max(len(args.queries), 1))
    for query in args.queries:
        root = tracer.start_trace("cli.link", query=query)
        with root:
            result = linker.link(query)
            root.set_tag("results", len(result.ranked))
            if result.degraded:
                root.set_tag("degraded", True)
                root.set_tag("degraded_reason", result.degraded_reason)
        trace_dict = tracer.find(root.request_id)
        if trace_dict is not None:
            print(format_trace(trace_dict))
        top = result.ranked[0] if result.ranked else None
        if top is not None:
            description = ontology.get(top.cid).description
            print(f"  -> {top.cid} logp={top.log_prob:.2f}  {description}")
        else:
            print("  -> (no candidates)")
        print()
    return 0


def _print_trace_file(path: Path, format_trace) -> int:
    """Render traces captured from ``GET /v1/traces`` (or one trace dict).

    This is how multi-process traces reach the offline printer: scrape
    the serving tier's ring buffer to a file, render it here.  The
    stitched trees print as one tree per request — worker-side spans
    show their ``[pid N]`` origin, queue-wait/fusion/dispatch spans
    appear in place.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return 1
    if isinstance(payload, dict) and "spans" in payload:
        traces = [payload]
    elif isinstance(payload, dict):
        traces = payload.get("traces") or []
    elif isinstance(payload, list):
        traces = payload
    else:
        traces = []
    if not traces:
        print(f"no traces in {path}", file=sys.stderr)
        return 1
    for trace_dict in traces:
        print(format_trace(trace_dict))
        print()
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """One ``top``-style snapshot of a running serving tier."""
    import urllib.error
    import urllib.request

    base = args.url.rstrip("/")
    try:
        with urllib.request.urlopen(
            base + "/v1/metrics", timeout=args.timeout
        ) as response:
            snapshot = json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, json.JSONDecodeError) as error:
        print(f"error: cannot fetch {base}/v1/metrics: {error}",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True, default=str))
        return 0
    for line in format_top(snapshot, base):
        print(line)
    return 0


def format_top(snapshot: dict, origin: str = "") -> List[str]:
    """The ``repro top`` lines for one ``/v1/metrics`` snapshot.

    Pure formatting (testable offline): SLO window, request counters,
    admission-queue state, and the per-worker slot table when the
    multi-process front-end is present.
    """
    lines: List[str] = []
    state = "ready" if snapshot.get("ready") else "NOT READY"
    lines.append(
        f"repro top — {origin or 'snapshot'} "
        f"(uptime {snapshot.get('uptime_seconds', 0.0):.0f}s, {state})"
    )
    slo = snapshot.get("slo") or {}
    if slo:
        availability = slo.get("availability", 1.0) * 100.0
        objective = slo.get("availability_objective", 0.0) * 100.0
        burn = slo.get("error_budget_burn_rate", 0.0)
        p99_ms = slo.get("p99_s", 0.0) * 1e3
        slo_line = (
            f"SLO {slo.get('window_s', 0):.0f}s window: "
            f"availability {availability:.2f}% "
            f"(objective {objective:.2f}%, burn {burn:.2f}x)  "
            f"p99 {p99_ms:.1f}ms"
        )
        deadline_ms = slo.get("deadline_ms") or 0.0
        if deadline_ms:
            hit = slo.get("deadline_hit_ratio", 0.0) * 100.0
            slo_line += f"  deadline {deadline_ms:.0f}ms (late {hit:.1f}%)"
        lines.append(slo_line)
        lines.append(
            f"window requests: {slo.get('ok', 0)} ok / "
            f"{slo.get('shed', 0)} shed / {slo.get('errors', 0)} errors"
        )
    frontend = snapshot.get("frontend") or {}
    if frontend:
        lines.append(
            f"queue depth {frontend.get('queue_depth', 0)}/"
            f"{frontend.get('queue_bound', 0)} "
            f"({frontend.get('shed_policy', '?')})  "
            f"inflight {frontend.get('inflight_jobs', 0)}  "
            f"sheds: reject_new={frontend.get('shed_queue_full', 0)} "
            f"drop_oldest={frontend.get('shed_dropped_oldest', 0)} "
            f"deadline={frontend.get('shed_deadline', 0)}  "
            f"deaths={frontend.get('worker_deaths', 0)} "
            f"redispatches={frontend.get('redispatches', 0)}"
        )
        workers = frontend.get("workers") or []
        if workers:
            lines.append(
                f"{'worker':<7}{'pid':<8}{'ready':<6}{'jobs':>6}"
                f"{'queries':>9}{'errors':>8}{'degraded':>10}"
                f"{'respawns':>10}{'busy_s':>9}"
            )
            for entry in workers:
                lines.append(
                    f"{entry.get('worker_id', '?'):<7}"
                    f"{entry.get('pid', 0):<8}"
                    f"{'yes' if entry.get('ready') else 'no':<6}"
                    f"{entry.get('jobs', 0):>6}"
                    f"{entry.get('queries', 0):>9}"
                    f"{entry.get('errors', 0):>8}"
                    f"{entry.get('degraded', 0):>10}"
                    f"{entry.get('respawns', 0):>10}"
                    f"{entry.get('busy_s', 0.0):>9.2f}"
                )
    return lines


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs.runlog import diff_runs, list_runs, load_run

    if args.diff:
        run_a = load_run(Path(args.dir) / args.diff[0])
        run_b = load_run(Path(args.dir) / args.diff[1])
        report = diff_runs(run_a, run_b)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0
        print(f"run A: {report['run_a']} ({report['epochs_a']} epochs)")
        print(f"run B: {report['run_b']} ({report['epochs_b']} epochs)")
        for entry in report["per_epoch"]:
            delta = entry.get("delta")
            delta_text = f"{delta:+.4f}" if delta is not None else "n/a"
            print(
                f"  epoch {entry['epoch']:>3}: "
                f"A={entry['loss_a']:.4f} B={entry['loss_b']:.4f} "
                f"delta={delta_text}"
            )
        if "final_loss_delta" in report:
            print(f"final loss delta (B-A): {report['final_loss_delta']:+.4f}")
        return 0

    runs = list_runs(args.dir)
    if not runs:
        print(f"no runs under {args.dir}")
        return 0
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "run_id": run.run_id,
                        "epochs": len(run.epochs),
                        "final_loss": run.final_loss,
                        "seconds": run.seconds,
                        "tokens_per_s": run.mean_tokens_per_s,
                        "completed": run.completed,
                    }
                    for run in runs
                ],
                indent=2,
            )
        )
        return 0
    print(
        f"{'run':<28} {'epochs':>6} {'final_loss':>10} "
        f"{'seconds':>8} {'tok/s':>10} status"
    )
    for run in runs:
        loss = f"{run.final_loss:.4f}" if run.final_loss is not None else "-"
        seconds = f"{run.seconds:.1f}" if run.seconds is not None else "-"
        rate = (
            f"{run.mean_tokens_per_s:.0f}"
            if run.mean_tokens_per_s is not None
            else "-"
        )
        status = "complete" if run.completed else "partial"
        print(
            f"{run.run_id:<28} {len(run.epochs):>6} {loss:>10} "
            f"{seconds:>8} {rate:>10} {status}"
        )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    _, _, _, _, linker = load_pipeline(args.model, LinkerConfig(k=args.k))
    _, _, _, queries = _load_dataset_dir(Path(args.data))
    if not queries:
        print("no queries.jsonl in the dataset directory", file=sys.stderr)
        return 1
    if args.limit:
        queries = queries[: args.limit]
    ranked_lists = [
        [c.cid for c in linker.link(query.text).ranked] for query in queries
    ]
    gold = [query.cid for query in queries]
    accuracy = top1_accuracy(ranked_lists, gold)
    mrr = mean_reciprocal_rank(ranked_lists, gold)
    print(f"queries={len(queries)} accuracy={accuracy:.4f} mrr={mrr:.4f}")
    return 0


def _apply_tenant_flags(
    args: argparse.Namespace, runtime: RuntimeConfig
) -> Tuple[RuntimeConfig, Optional[str]]:
    """Fold repeated ``--artifact NAME=DIR`` pairs into the config.

    Returns ``(runtime, error)``; a non-``None`` error names the
    conflicting flags.  Tenants may come from exactly one place: the
    config file's ``tenants`` section or the ``--artifact`` pairs —
    and the multi-tenant tier is threaded-only, so ``--workers`` and
    the single-tenant ``--artifact-dir`` are refused alongside either.
    """
    pairs = getattr(args, "tenant_artifacts", None) or []
    if pairs and runtime.tenants.enabled:
        return runtime, (
            "tenants are declared twice: drop --artifact NAME=DIR or the "
            "config file's 'tenants' section (--config); use exactly one"
        )
    if pairs and getattr(args, "artifact_dir", None) is not None:
        return runtime, (
            "--artifact NAME=DIR (multi-tenant) conflicts with "
            "--artifact-dir DIR (single-tenant); use one or the other"
        )
    if pairs:
        definitions: Dict[str, TenantConfig] = {}
        for pair in pairs:
            name, sep, directory = pair.partition("=")
            if not sep or not name or not directory:
                return runtime, (
                    f"--artifact expects NAME=DIR, got {pair!r}"
                )
            if name in definitions:
                return runtime, (
                    f"tenant {name!r} is declared twice via --artifact"
                )
            definitions[name] = TenantConfig(artifact_dir=directory)
        runtime = runtime.replace_section(
            "tenants", definitions=definitions, default=next(iter(definitions))
        )
    if runtime.tenants.enabled and runtime.serving.workers > 0:
        return runtime, (
            "multi-tenant serving runs on the threaded tier; --workers "
            "(or the config's serving.workers) must be 0 when tenants "
            "are declared"
        )
    return runtime, None


def _serve_multi_tenant(args: argparse.Namespace, runtime: RuntimeConfig) -> int:
    """``repro serve`` with a populated ``tenants`` section."""
    from repro.serving.server import create_server, run_server
    from repro.tenancy import (
        MultiTenantLinkingService,
        TenantRegistry,
        pipeline_loader,
    )

    config = runtime.serving
    registry = TenantRegistry(
        runtime.tenants,
        serving=config,
        linker_config=runtime.linker,
        loader=pipeline_loader(args.model),
    )
    service = MultiTenantLinkingService(registry)
    server = create_server(service, host=config.host, port=config.port)
    service.start()
    print(
        f"serving on http://{config.host}:{server.port} "
        f"(model={args.model}, tenants={registry.names}, "
        f"default={runtime.tenants.default})",
        flush=True,
    )
    run_server(server)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so the four offline commands never pay for (or
    # depend on) the serving stack.
    from repro.serving.server import create_server, run_server
    from repro.serving.service import LinkingService

    if args.log_json:
        from repro.obs.logjson import configure_json_logging

        configure_json_logging()
    runtime = _runtime_config(args)
    runtime, tenant_error = _apply_tenant_flags(args, runtime)
    if tenant_error is not None:
        print(f"error: {tenant_error}", file=sys.stderr)
        return 2
    if runtime.tenants.enabled:
        return _serve_multi_tenant(args, runtime)
    config = runtime.serving
    if config.workers > 0:
        import dataclasses

        from repro.serving.service import ProcPoolLinkingService

        # Workers mount the compiled artifact read-only via mmap (when
        # one is configured) so N processes share one set of page-cache
        # pages, and fuse Phase-II decodes across the requests of each
        # dispatched job.  The pipeline loads once here, pre-fork; the
        # closure's captures reach the children copy-on-write.
        worker_config = dataclasses.replace(
            runtime.linker,
            mmap_artifact=runtime.linker.artifact_dir is not None,
            fuse_phase2=True,
        )
        _, ontology, _, _, linker = load_pipeline(args.model, worker_config)
        service = ProcPoolLinkingService(lambda: linker, ontology, config)
    else:
        _, _, _, _, linker = load_pipeline(args.model, runtime.linker)
        service = LinkingService(linker, config)
    server = create_server(service, host=config.host, port=config.port)
    service.start()
    # One parseable line before blocking, so wrappers (and the smoke
    # test) can discover an ephemeral port and start polling /readyz.
    print(
        f"serving on http://{config.host}:{server.port} "
        f"(model={args.model}, warm={config.warm_on_start}, "
        f"workers={config.workers})",
        flush=True,
    )
    run_server(server)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="NCL / COM-AID command-line interface"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="synthesise a dataset bundle into a directory"
    )
    generate.add_argument(
        "--dataset", default="hospital-x-like",
        help="dataset preset (hospital-x-like | mimic-iii-like | snomed-like)",
    )
    generate.add_argument("--out", required=True, help="output directory")
    generate.add_argument("--seed", type=int, default=2018)
    generate.add_argument("--queries", type=int, default=400)
    generate.set_defaults(func=_cmd_generate)

    train = commands.add_parser(
        "train", help="pre-train + train COM-AID on a generated dataset"
    )
    train.add_argument("--data", required=True, help="generated dataset dir")
    train.add_argument("--out", required=True, help="pipeline output dir")
    train.add_argument("--dim", type=int, default=24)
    train.add_argument("--beta", type=int, default=2)
    train.add_argument("--epochs", type=int, default=8)
    train.add_argument("--cbow-epochs", type=int, default=15)
    train.add_argument("--batch-size", type=int, default=8)
    train.add_argument("--learning-rate", type=float, default=0.1)
    train.add_argument("--sampled-softmax", type=int, default=0)
    train.add_argument("--no-pretrain", action="store_true")
    train.add_argument("--seed", type=int, default=5)
    train.add_argument(
        "--checkpoint-dir", default=None,
        help="write atomic training checkpoints into this directory",
    )
    train.add_argument(
        "--checkpoint-every", type=int, default=0,
        help="checkpoint every N epochs (0 = only when resuming support "
        "is unused); requires --checkpoint-dir",
    )
    train.add_argument(
        "--resume", default=None,
        help="resume from a checkpoint directory (or a checkpoint root, "
        "which picks the latest epoch)",
    )
    train.add_argument(
        "--run-dir", default=None,
        help="record per-epoch telemetry under this directory "
        "(listable with `repro runs`)",
    )
    train.add_argument(
        "--run-id", default=None,
        help="run directory name under --run-dir (default: timestamped)",
    )
    train.set_defaults(func=_cmd_train)

    compile_cmd = commands.add_parser(
        "compile",
        help="precompile concept encodings + Phase-I index into an artifact",
    )
    compile_cmd.add_argument(
        "--model", required=True, help="saved pipeline dir"
    )
    compile_cmd.add_argument(
        "--out", required=True, help="artifact output directory"
    )
    compile_cmd.add_argument(
        "--no-aliases", action="store_true",
        help="index canonical descriptions only (must match the linker's "
        "index_aliases at serve time)",
    )
    compile_cmd.add_argument(
        "--index", choices=["none", "sparse", "dense", "both"],
        default="both",
        help="also compile the sublinear retrieval indexes into the "
        "artifact (default: both; 'none' keeps the pre-retrieval layout)",
    )
    compile_cmd.add_argument(
        "--index-seed", type=int, default=0,
        help="k-means seed for the dense (IVF) index",
    )
    compile_cmd.set_defaults(func=_cmd_compile)

    link = commands.add_parser("link", help="link queries with a saved pipeline")
    link.add_argument("--model", required=True, help="saved pipeline dir")
    link.add_argument(
        "--config", default=None,
        help="JSON RuntimeConfig file (flags moved off their defaults win)",
    )
    link.add_argument("--k", type=int, default=_LINKER_FLAG_DEFAULTS["k"])
    link.add_argument("--top", type=int, default=3)
    link.add_argument(
        "--artifact-dir", default=None,
        help="serve from a compiled concept artifact (`repro compile`)",
    )
    link.add_argument(
        "--shards", type=_shards_value, default=None,
        help="scatter-gather shard count, or 'auto' to size to the "
        "machine (requires --artifact-dir)",
    )
    link.add_argument(
        "--retrieval-mode",
        choices=["exact", "sparse", "dense", "hybrid"], default=None,
        help="Phase-I retrieval strategy (non-exact modes require "
        "--artifact-dir; dense/hybrid need `repro compile --index`)",
    )
    link.add_argument("queries", nargs="+", help="query text(s)")
    link.set_defaults(func=_cmd_link)

    trace = commands.add_parser(
        "trace",
        help="link queries with tracing forced on and print span trees",
    )
    trace.add_argument("--model", default=None, help="saved pipeline dir")
    trace.add_argument("--k", type=int, default=20)
    trace.add_argument(
        "--file", default=None,
        help="render traces captured from GET /v1/traces (JSON file) "
        "instead of linking — stitched multi-process trees print with "
        "their worker [pid N] and queue-wait spans",
    )
    trace.add_argument("queries", nargs="*", help="query text(s)")
    trace.set_defaults(func=_cmd_trace)

    top = commands.add_parser(
        "top",
        help="one top-style snapshot of a running serving tier "
        "(SLO window, admission queue, per-worker table)",
    )
    top.add_argument(
        "--url", default="http://127.0.0.1:8080",
        help="base URL of the serving instance",
    )
    top.add_argument("--timeout", type=float, default=5.0)
    top.add_argument(
        "--json", action="store_true",
        help="print the raw /v1/metrics snapshot instead of the table",
    )
    top.set_defaults(func=_cmd_top)

    runs = commands.add_parser(
        "runs", help="list or diff training-run telemetry directories"
    )
    runs.add_argument(
        "--dir", required=True, help="runs root (the train --run-dir)"
    )
    runs.add_argument(
        "--diff", nargs=2, metavar=("RUN_A", "RUN_B"), default=None,
        help="compare two run ids epoch by epoch",
    )
    runs.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )
    runs.set_defaults(func=_cmd_runs)

    evaluate = commands.add_parser(
        "evaluate", help="score a saved pipeline on a dataset's queries"
    )
    evaluate.add_argument("--model", required=True)
    evaluate.add_argument("--data", required=True)
    evaluate.add_argument("--k", type=int, default=20)
    evaluate.add_argument("--limit", type=int, default=0)
    evaluate.set_defaults(func=_cmd_evaluate)

    serve = commands.add_parser(
        "serve", help="run the HTTP linking service on a saved pipeline"
    )
    serve.add_argument("--model", required=True, help="saved pipeline dir")
    serve.add_argument(
        "--config", default=None,
        help="JSON RuntimeConfig file (flags moved off their defaults win)",
    )
    serve.add_argument("--host", default=_SERVING_FLAG_DEFAULTS["host"])
    serve.add_argument(
        "--port", type=int, default=_SERVING_FLAG_DEFAULTS["port"],
        help="0 picks an ephemeral port",
    )
    serve.add_argument("--k", type=int, default=_LINKER_FLAG_DEFAULTS["k"])
    serve.add_argument(
        "--cache-size", type=int,
        default=_LINKER_FLAG_DEFAULTS["cache_size"],
        help="encoding LRU capacity (0 = unbounded)",
    )
    serve.add_argument(
        "--artifact-dir", default=None,
        help="serve from a compiled concept artifact (`repro compile`)",
    )
    serve.add_argument(
        "--artifact", action="append", default=None, metavar="NAME=DIR",
        dest="tenant_artifacts",
        help="declare tenant NAME serving compiled artifact DIR over the "
        "shared --model pipeline (repeatable; enables the multi-tenant "
        "tier; the first pair is the default tenant)",
    )
    serve.add_argument(
        "--shards", type=_shards_value, default=None,
        help="scatter-gather shard count, or 'auto' to size to the "
        "machine (requires --artifact-dir)",
    )
    serve.add_argument(
        "--retrieval-mode",
        choices=["exact", "sparse", "dense", "hybrid"], default=None,
        help="Phase-I retrieval strategy (non-exact modes require "
        "--artifact-dir; dense/hybrid need `repro compile --index`)",
    )
    serve.add_argument(
        "--max-batch-size", type=int,
        default=_SERVING_FLAG_DEFAULTS["max_batch_size"],
        help="micro-batcher flush threshold",
    )
    serve.add_argument(
        "--batch-wait-ms", type=float,
        default=_SERVING_FLAG_DEFAULTS["batch_wait_ms"],
        help="micro-batcher deadline in milliseconds (0 = no coalescing)",
    )
    serve.add_argument(
        "--request-timeout", type=float,
        default=_SERVING_FLAG_DEFAULTS["request_timeout"],
        help="per-request budget in seconds (exceeded -> HTTP 504)",
    )
    serve.add_argument(
        "--no-warm", action="store_true",
        help="skip warm-up; readiness flips immediately, caches fill lazily",
    )
    serve.add_argument(
        "--trace-sample", type=float,
        default=_SERVING_FLAG_DEFAULTS["trace_sample"],
        help="fraction of requests traced into GET /v1/traces "
        "(deterministic; 0 disables tracing)",
    )
    serve.add_argument(
        "--trace-buffer", type=int,
        default=_SERVING_FLAG_DEFAULTS["trace_buffer"],
        help="how many finished traces the ring buffer retains",
    )
    serve.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON logs (request-ID correlated) on stderr",
    )
    serve.add_argument(
        "--workers", type=int,
        default=_SERVING_FLAG_DEFAULTS["workers"],
        help="forked worker processes (0 = in-process threaded tier; "
        ">= 1 enables the GIL-free multi-process tier)",
    )
    serve.add_argument(
        "--admission-queue", type=int,
        default=_SERVING_FLAG_DEFAULTS["admission_queue"],
        help="bound on queued requests before shedding (0 = unbounded)",
    )
    serve.add_argument(
        "--deadline-ms", type=float,
        default=_SERVING_FLAG_DEFAULTS["deadline_ms"],
        help="per-request queueing budget in milliseconds; requests "
        "still queued past it are shed instead of served late "
        "(0 = no deadline)",
    )
    serve.add_argument(
        "--shed-policy", choices=list(SHED_POLICIES),
        default=_SERVING_FLAG_DEFAULTS["shed_policy"],
        help="what to do when the admission queue is full: reject the "
        "new request, or drop the oldest queued one",
    )
    serve.add_argument(
        "--slo-window", type=float,
        default=_SERVING_FLAG_DEFAULTS["slo_window"],
        help="rolling SLO window in seconds (availability / p99 vs "
        "deadline, reported by /v1/metrics and `repro top`)",
    )
    serve.add_argument(
        "--slo-availability", type=float,
        default=_SERVING_FLAG_DEFAULTS["slo_availability"],
        help="availability objective the error-budget burn rate is "
        "computed against (e.g. 0.999)",
    )
    serve.set_defaults(func=_cmd_serve)

    verify = commands.add_parser(
        "verify-pipeline",
        help="check a saved pipeline's (and/or compiled artifact's) "
        "manifest and checksums",
    )
    verify.add_argument(
        "--model", default=None, help="saved pipeline dir"
    )
    verify.add_argument(
        "--artifact", default=None,
        help="compiled artifact dir; additionally re-hashes each "
        "compiled retrieval index against the artifact header",
    )
    verify.set_defaults(func=_cmd_verify_pipeline)

    lifecycle = commands.add_parser(
        "lifecycle",
        help="run the closed-loop model-lifecycle drill (pool -> retrain "
        "-> recompile -> blue/green hot swap under load)",
    )
    lifecycle.add_argument(
        "--scale", choices=["tiny", "small", "default"], default="tiny"
    )
    lifecycle.add_argument("--seed", type=int, default=7)
    lifecycle.add_argument(
        "--workdir", default=None,
        help="directory for the active deployment and candidate "
        "artifacts (default: a temporary directory)",
    )
    lifecycle.add_argument(
        "--clients", type=int, default=2,
        help="closed-loop client threads hammering the swap window",
    )
    lifecycle.add_argument("--retrain-epochs", type=int, default=2)
    lifecycle.set_defaults(func=_cmd_lifecycle)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
