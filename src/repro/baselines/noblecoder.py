"""Dictionary-based annotator in the style of NOBLECoder [42].

NOBLECoder links text by greedy lookup through two hash tables: a
*word-to-term* table (which dictionary terms contain a given word) and
a *term-to-concept* table.  A term matches when (enough of) its words
appear in the query; matched terms vote for their concepts.

The paper's analysis of this method (Section 6.4) hinges on two
behaviours this implementation reproduces faithfully:

* an out-of-dictionary core word (``ckd``) leaves the query unlinked or
  mislinked — the dictionary cannot cover evolving shorthand;
* a query whose words straddle two concepts' terms gets linked to both
  (its ``exacerbation of eczema`` example), so :meth:`rank` can return
  several concepts with equal scores.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.base import BaselineLinker, RankedList
from repro.kb.knowledge_base import KnowledgeBase
from repro.ontology.ontology import Ontology
from repro.text.tokenize import tokenize
from repro.utils.errors import ConfigurationError


class NobleCoderLinker(BaselineLinker):
    """Greedy dictionary matcher over concept terms.

    Parameters
    ----------
    ontology / kb:
        Terms are the canonical descriptions of fine-grained concepts
        plus (optionally) their knowledge-base aliases — the dictionary
        a NOBLECoder deployment would extract from UMLS.
    partial_threshold:
        Minimum fraction of a term's words that must appear in the
        query for the term to match ("best match" mode).  1.0 requires
        complete terms ("precise match" mode).
    """

    name = "NC"

    def __init__(
        self,
        ontology: Ontology,
        kb: Optional[KnowledgeBase] = None,
        include_aliases: bool = True,
        partial_threshold: float = 1.0,
    ) -> None:
        if not 0.0 < partial_threshold <= 1.0:
            raise ConfigurationError(
                f"partial_threshold must be in (0, 1], got {partial_threshold}"
            )
        self.partial_threshold = partial_threshold
        self._terms: List[Tuple[str, ...]] = []  # term id -> words
        self._term_concepts: List[str] = []  # term id -> cid
        self._word_to_terms: Dict[str, List[int]] = defaultdict(list)
        for leaf in ontology.fine_grained():
            self._add_term(leaf.words, leaf.cid)
            if kb is not None and include_aliases:
                for alias in kb.aliases_of(leaf.cid):
                    self._add_term(tuple(tokenize(alias)), leaf.cid)

    def _add_term(self, words: Tuple[str, ...], cid: str) -> None:
        if not words:
            return
        term_id = len(self._terms)
        self._terms.append(words)
        self._term_concepts.append(cid)
        for word in set(words):
            self._word_to_terms[word].append(term_id)

    # -- lookup ---------------------------------------------------------------

    def matched_terms(
        self, query_words: Sequence[str]
    ) -> List[Tuple[int, float]]:
        """Terms whose match fraction clears the threshold.

        Match fraction = |term words ∩ query words| / |term words|.
        Only terms sharing at least one word with the query are
        examined (the word-to-term table's job).
        """
        query_set: Set[str] = set(query_words)
        candidate_ids: Set[int] = set()
        for word in query_set:
            candidate_ids.update(self._word_to_terms.get(word, ()))
        results: List[Tuple[int, float]] = []
        for term_id in candidate_ids:
            words = self._terms[term_id]
            matched = sum(1 for word in set(words) if word in query_set)
            fraction = matched / len(set(words))
            if fraction >= self.partial_threshold:
                results.append((term_id, fraction))
        return results

    def rank(self, query: str, k: int = 10) -> RankedList:
        query_words = tokenize(query)
        if not query_words:
            return []
        matches = self.matched_terms(query_words)
        if not matches:
            return []
        # A concept's score is its best term's (fraction, term length):
        # longer exact matches are more specific, NOBLE's tie-break.
        best: Dict[str, Tuple[float, int]] = {}
        for term_id, fraction in matches:
            cid = self._term_concepts[term_id]
            key = (fraction, len(self._terms[term_id]))
            if cid not in best or key > best[cid]:
                best[cid] = key
        ranked = sorted(
            best.items(), key=lambda item: (-item[1][0], -item[1][1], item[0])
        )
        return [
            (cid, fraction) for cid, (fraction, _) in ranked[:k]
        ]

    @property
    def term_count(self) -> int:
        return len(self._terms)
