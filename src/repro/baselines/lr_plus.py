"""The extended logistic regression baseline LR⁺ (paper Section 6.1).

Tsuruoka et al. [43] learn a string-similarity measure for dictionary
look-up with logistic regression over hand-crafted features of a
(query, dictionary-term) pair: character bigrams, prefix/suffix
agreement, shared numbers, and an acronym feature.  The paper extends
it with *structural* features — the same feature functions applied to
the aggregated canonical descriptions of the concept's ancestors — and
restricts candidates to NCL's Phase-I retrieval because the multi-class
formulation collapses beyond ~30 concepts.

This module implements the pairwise scorer: a from-scratch logistic
regression trained on positive ⟨alias, its concept⟩ pairs and sampled
negative ⟨alias, other concept⟩ pairs, scoring query–concept pairs at
link time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import BaselineLinker, RankedList
from repro.core.candidates import CandidateGenerator
from repro.kb.knowledge_base import KnowledgeBase
from repro.ontology.ontology import Ontology
from repro.text.ngrams import ngram_jaccard
from repro.text.tokenize import tokenize
from repro.utils.errors import ConfigurationError, NotFittedError
from repro.utils.rng import RngLike, ensure_rng

FEATURE_NAMES: Tuple[str, ...] = (
    "char_bigram_jaccard",
    "prefix_match",
    "suffix_match",
    "shared_numbers",
    "acronym",
    "token_overlap",
    "struct_char_bigram_jaccard",
    "struct_token_overlap",
    "struct_shared_numbers",
)


def _numbers(tokens: Sequence[str]) -> set:
    return {token for token in tokens if any(char.isdigit() for char in token)}


def _acronym_of(tokens: Sequence[str]) -> str:
    return "".join(token[0] for token in tokens if token and token[0].isalpha())


def textual_features(query_tokens: Sequence[str], term_tokens: Sequence[str]) -> List[float]:
    """The six textual features of [43] (our faithful adaptation)."""
    query_text = " ".join(query_tokens)
    term_text = " ".join(term_tokens)
    bigram = ngram_jaccard(query_text, term_text, n=2)
    prefix = float(
        bool(query_text and term_text) and query_text[:3] == term_text[:3]
    )
    suffix = float(
        bool(query_text and term_text) and query_text[-3:] == term_text[-3:]
    )
    query_numbers = _numbers(query_tokens)
    term_numbers = _numbers(term_tokens)
    if query_numbers or term_numbers:
        shared_numbers = len(query_numbers & term_numbers) / len(
            query_numbers | term_numbers
        )
    else:
        shared_numbers = 1.0
    term_acronym = _acronym_of(term_tokens)
    acronym = float(
        any(len(token) >= 2 and token == term_acronym for token in query_tokens)
    )
    query_set, term_set = set(query_tokens), set(term_tokens)
    union = query_set | term_set
    overlap = len(query_set & term_set) / len(union) if union else 0.0
    return [bigram, prefix, suffix, shared_numbers, acronym, overlap]


def structural_features(
    query_tokens: Sequence[str], ancestor_tokens: Sequence[str]
) -> List[float]:
    """The paper's added features over the aggregated ancestor text."""
    if not ancestor_tokens:
        return [0.0, 0.0, 0.0]
    query_text = " ".join(query_tokens)
    ancestor_text = " ".join(ancestor_tokens)
    bigram = ngram_jaccard(query_text, ancestor_text, n=2)
    query_set, ancestor_set = set(query_tokens), set(ancestor_tokens)
    union = query_set | ancestor_set
    overlap = len(query_set & ancestor_set) / len(union) if union else 0.0
    query_numbers = _numbers(query_tokens)
    ancestor_numbers = _numbers(ancestor_tokens)
    if query_numbers or ancestor_numbers:
        shared = len(query_numbers & ancestor_numbers) / len(
            query_numbers | ancestor_numbers
        )
    else:
        shared = 1.0
    return [bigram, overlap, shared]


@dataclass(frozen=True)
class LrPlusConfig:
    """Training settings for the pairwise logistic regression."""

    epochs: int = 30
    learning_rate: float = 0.5
    l2: float = 1e-4
    negatives_per_positive: int = 3

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {self.epochs}")
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if self.l2 < 0:
            raise ConfigurationError(f"l2 must be >= 0, got {self.l2}")
        if self.negatives_per_positive < 1:
            raise ConfigurationError(
                "negatives_per_positive must be >= 1, got "
                f"{self.negatives_per_positive}"
            )


class LrPlusLinker(BaselineLinker):
    """Pairwise LR⁺ scorer over Phase-I candidates."""

    name = "LR+"

    def __init__(
        self,
        ontology: Ontology,
        kb: KnowledgeBase,
        config: Optional[LrPlusConfig] = None,
        candidate_k: int = 20,
        rng: RngLike = None,
    ) -> None:
        if candidate_k < 1:
            raise ConfigurationError(f"candidate_k must be >= 1, got {candidate_k}")
        self.config = config if config is not None else LrPlusConfig()
        self._ontology = ontology
        self._kb = kb
        self._rng = ensure_rng(rng)
        self._candidate_k = candidate_k
        self._candidates = CandidateGenerator(ontology, kb=kb, index_aliases=True)
        self._ancestor_tokens = {
            leaf.cid: self._aggregate_ancestors(leaf.cid)
            for leaf in ontology.fine_grained()
        }
        self._weights = np.zeros(len(FEATURE_NAMES) + 1)  # + bias
        self._fitted = False

    def _aggregate_ancestors(self, cid: str) -> List[str]:
        tokens: List[str] = []
        for ancestor in self._ontology.ancestors_of(cid):
            tokens.extend(ancestor.words)
        return tokens

    def _pair_features(self, query_tokens: Sequence[str], cid: str) -> np.ndarray:
        concept = self._ontology.get(cid)
        features = textual_features(query_tokens, concept.words)
        features.extend(
            structural_features(query_tokens, self._ancestor_tokens.get(cid, []))
        )
        features.append(1.0)  # bias
        return np.asarray(features)

    # -- training --------------------------------------------------------------

    def fit(self) -> "LrPlusLinker":
        """Train on KB aliases: positives vs sampled sibling negatives."""
        leaves = [leaf.cid for leaf in self._ontology.fine_grained()]
        if len(leaves) < 2:
            raise ConfigurationError("LR+ needs at least two fine-grained concepts")
        rows: List[np.ndarray] = []
        labels: List[float] = []
        for cid, alias in self._kb.labeled_snippets():
            tokens = tokenize(alias)
            if not tokens:
                continue
            rows.append(self._pair_features(tokens, cid))
            labels.append(1.0)
            for _ in range(self.config.negatives_per_positive):
                negative = cid
                while negative == cid:
                    negative = leaves[int(self._rng.integers(len(leaves)))]
                rows.append(self._pair_features(tokens, negative))
                labels.append(0.0)
        if not rows:
            raise ConfigurationError("no training pairs for LR+")
        features = np.vstack(rows)
        targets = np.asarray(labels)
        weights = np.zeros(features.shape[1])
        lr = self.config.learning_rate
        for _ in range(self.config.epochs):
            scores = features @ weights
            probabilities = np.where(
                scores >= 0,
                1.0 / (1.0 + np.exp(-scores)),
                np.exp(scores) / (1.0 + np.exp(scores)),
            )
            gradient = features.T @ (probabilities - targets) / len(targets)
            gradient += self.config.l2 * weights
            weights -= lr * gradient
        self._weights = weights
        self._fitted = True
        return self

    # -- linking --------------------------------------------------------------------

    def score(self, query_tokens: Sequence[str], cid: str) -> float:
        """Logit of (query tokens, concept) under the trained classifier."""
        if not self._fitted:
            raise NotFittedError("LrPlusLinker.score called before fit")
        logit = float(self._pair_features(query_tokens, cid) @ self._weights)
        return logit

    def rank(self, query: str, k: int = 10) -> RankedList:
        if not self._fitted:
            raise NotFittedError("LrPlusLinker.rank called before fit")
        tokens = tokenize(query)
        if not tokens:
            return []
        candidates = self._candidates.generate(tokens, k=self._candidate_k)
        scored = [
            (cid, self.score(tokens, cid)) for cid, _ in candidates
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:k]

    @property
    def feature_weights(self) -> dict:
        """Learned weight per feature name (diagnostics)."""
        names = FEATURE_NAMES + ("bias",)
        return dict(zip(names, self._weights.tolist()))
