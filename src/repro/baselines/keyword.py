"""Keyword-matcher-only linker (NCL Phase I without Phase II).

Not a paper baseline, but the natural internal ablation: ranking by the
TF-IDF cosine of NCL's own candidate generator — optionally after NCL's
query rewriting — isolates how much of NCL's quality comes from the
COM-AID re-ranking versus plain keyword retrieval.  The ablation bench
(``benchmarks/test_ablations.py``) reports both.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import BaselineLinker, RankedList
from repro.core.candidates import CandidateGenerator
from repro.core.rewriter import QueryRewriter
from repro.embeddings.similarity import WordVectors
from repro.kb.knowledge_base import KnowledgeBase
from repro.ontology.ontology import Ontology
from repro.text.tokenize import tokenize


class KeywordLinker(BaselineLinker):
    """Rank fine-grained concepts by Phase-I TF-IDF cosine alone."""

    name = "keyword"

    def __init__(
        self,
        ontology: Ontology,
        kb: Optional[KnowledgeBase] = None,
        word_vectors: Optional[WordVectors] = None,
        rewrite_queries: bool = True,
        index_aliases: bool = True,
    ) -> None:
        self._candidates = CandidateGenerator(
            ontology, kb=kb, index_aliases=index_aliases
        )
        self._rewriter: Optional[QueryRewriter] = None
        if rewrite_queries:
            self._rewriter = QueryRewriter(
                self._candidates.omega, word_vectors=word_vectors
            )

    def rank(self, query: str, k: int = 10) -> RankedList:
        tokens = tokenize(query)
        if not tokens:
            return []
        if self._rewriter is not None:
            tokens, _ = self._rewriter.rewrite(tokens)
        return self._candidates.generate(tokens, k=k)
