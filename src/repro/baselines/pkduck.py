"""Abbreviation-aware approximate string join in the style of pkduck [44].

pkduck measures the similarity of two strings under a dictionary of
abbreviation rules: a string may be transformed by applying rules
(abbreviating sub-phrases), and the similarity is the maximum token
Jaccard over the derived strings.  Tao, Deng and Stonebraker's
contribution is making that join fast with prefix filtering; the
*semantics* — which this reproduction needs — is the rule-closure
Jaccard, implemented here directly (our dictionaries are small enough
that candidate enumeration with an inverted index suffices).

The join threshold θ plays the role it does in the paper's Figure 7:
lower θ joins more (noisier) pairs and raises recall.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.baselines.base import BaselineLinker, RankedList
from repro.datasets import lexicon
from repro.kb.knowledge_base import KnowledgeBase
from repro.ontology.ontology import Ontology
from repro.text.tokenize import tokenize
from repro.utils.errors import ConfigurationError

# An abbreviation rule: (phrase tokens) -> (abbreviated tokens).
Rule = Tuple[Tuple[str, ...], Tuple[str, ...]]


def default_rules() -> List[Rule]:
    """Rules derived from the clinical lexicon, both granularities."""
    rules: List[Rule] = []
    for word, shorthands in lexicon.WORD_ABBREVIATIONS.items():
        for shorthand in shorthands:
            rules.append(((word,), (shorthand,)))
    for phrase, acronym in lexicon.PHRASE_ACRONYMS.items():
        rules.append((tuple(phrase.split()), (acronym,)))
    return rules


def _apply_rules_once(
    tokens: Tuple[str, ...], rules_by_first: Dict[str, List[Rule]]
) -> Set[Tuple[str, ...]]:
    """All strings derivable by applying exactly one rule to ``tokens``."""
    derived: Set[Tuple[str, ...]] = set()
    for index, token in enumerate(tokens):
        for source, target in rules_by_first.get(token, ()):
            end = index + len(source)
            if tuple(tokens[index:end]) == source:
                derived.add(tokens[:index] + target + tokens[end:])
    return derived


def derive_strings(
    tokens: Sequence[str],
    rules: Optional[List[Rule]] = None,
    max_applications: int = 2,
    max_derived: int = 64,
) -> Set[Tuple[str, ...]]:
    """The derivation closure of ``tokens`` under the rule set.

    Bounded by ``max_applications`` rule applications and
    ``max_derived`` results (pkduck's derivations are similarly bounded
    by its pkduck-string definition; clinical strings are short, so the
    bound is rarely hit).
    """
    rule_list = rules if rules is not None else default_rules()
    rules_by_first: Dict[str, List[Rule]] = defaultdict(list)
    for source, target in rule_list:
        rules_by_first[source[0]].append((source, target))
    frontier: Set[Tuple[str, ...]] = {tuple(tokens)}
    closure: Set[Tuple[str, ...]] = {tuple(tokens)}
    for _ in range(max_applications):
        next_frontier: Set[Tuple[str, ...]] = set()
        for candidate in frontier:
            for derived in _apply_rules_once(candidate, rules_by_first):
                if derived not in closure:
                    closure.add(derived)
                    next_frontier.add(derived)
                    if len(closure) >= max_derived:
                        return closure
        if not next_frontier:
            break
        frontier = next_frontier
    return closure


def _jaccard(left: FrozenSet[str], right: FrozenSet[str]) -> float:
    if not left and not right:
        return 1.0
    union = len(left | right)
    return len(left & right) / union if union else 0.0


def pkduck_similarity(
    left: Sequence[str],
    right: Sequence[str],
    rules: Optional[List[Rule]] = None,
) -> float:
    """Max token Jaccard over the two strings' derivation closures.

    Symmetric: either side may be abbreviated to meet the other.
    """
    left_forms = {frozenset(form) for form in derive_strings(left, rules)}
    right_forms = {frozenset(form) for form in derive_strings(right, rules)}
    return max(
        _jaccard(lf, rf) for lf in left_forms for rf in right_forms
    )


class PkduckLinker(BaselineLinker):
    """Approximate string join between queries and concept strings.

    Each fine-grained concept contributes its canonical description as
    a join target (the paper's Figure 7 analysis describes joining
    queries with "canonical concept descriptions"; pass
    ``include_aliases=True`` to also join against knowledge-base
    aliases).  A query joins with every string whose pkduck similarity
    clears ``theta``, and concepts are ranked by their best joined
    string.
    """

    name = "pkduck"

    def __init__(
        self,
        ontology: Ontology,
        kb: Optional[KnowledgeBase] = None,
        theta: float = 0.5,
        include_aliases: bool = False,
        rules: Optional[List[Rule]] = None,
    ) -> None:
        if not 0.0 < theta <= 1.0:
            raise ConfigurationError(f"theta must be in (0, 1], got {theta}")
        self.theta = theta
        self._rules = rules if rules is not None else default_rules()
        self._strings: List[Tuple[str, ...]] = []
        self._string_concepts: List[str] = []
        # Signature index: a string is findable through any token of any
        # of its derived forms (the prefix-filter analogue).
        self._token_to_strings: Dict[str, Set[int]] = defaultdict(set)
        for leaf in ontology.fine_grained():
            self._add_string(leaf.words, leaf.cid)
            if kb is not None and include_aliases:
                for alias in kb.aliases_of(leaf.cid):
                    self._add_string(tuple(tokenize(alias)), leaf.cid)

    def _add_string(self, words: Tuple[str, ...], cid: str) -> None:
        if not words:
            return
        string_id = len(self._strings)
        self._strings.append(words)
        self._string_concepts.append(cid)
        for form in derive_strings(words, self._rules):
            for token in form:
                self._token_to_strings[token].add(string_id)

    def rank(self, query: str, k: int = 10) -> RankedList:
        query_tokens = tuple(tokenize(query))
        if not query_tokens:
            return []
        query_forms = {
            frozenset(form) for form in derive_strings(query_tokens, self._rules)
        }
        candidate_ids: Set[int] = set()
        for form in query_forms:
            for token in form:
                candidate_ids.update(self._token_to_strings.get(token, ()))
        best: Dict[str, float] = {}
        for string_id in candidate_ids:
            target_forms = {
                frozenset(form)
                for form in derive_strings(self._strings[string_id], self._rules)
            }
            similarity = max(
                _jaccard(qf, tf) for qf in query_forms for tf in target_forms
            )
            if similarity < self.theta:
                continue
            cid = self._string_concepts[string_id]
            if similarity > best.get(cid, -1.0):
                best[cid] = similarity
        ranked = sorted(best.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    @property
    def string_count(self) -> int:
        return len(self._strings)
