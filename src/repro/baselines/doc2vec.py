"""Paragraph vectors (Doc2Vec, PV-DBOW variant) [26] from scratch.

Each fine-grained concept is one document (its canonical description
plus aliases).  Training follows the distributed-bag-of-words
objective: the document vector predicts each of its words through a
negative-sampling softmax.  A query is linked by *inferring* a vector
for it — gradient steps on a fresh document vector with the word
(output) matrix frozen — and ranking concepts by cosine similarity.

The paper tunes d and reports Doc2Vec peaking below 0.12 accuracy: the
document-level similarity cannot separate fine-grained siblings that
share most of their words.  That failure mode is architectural and
reproduces here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.base import BaselineLinker, RankedList
from repro.kb.knowledge_base import KnowledgeBase
from repro.ontology.ontology import Ontology
from repro.text.tokenize import tokenize
from repro.text.vocab import Vocabulary
from repro.utils.errors import ConfigurationError, NotFittedError
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class Doc2VecConfig:
    """PV-DBOW hyper-parameters."""

    dim: int = 32
    epochs: int = 20
    negatives: int = 5
    learning_rate: float = 0.05
    infer_steps: int = 30
    power: float = 0.75

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {self.dim}")
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {self.epochs}")
        if self.negatives < 1:
            raise ConfigurationError(
                f"negatives must be >= 1, got {self.negatives}"
            )
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if self.infer_steps < 1:
            raise ConfigurationError(
                f"infer_steps must be >= 1, got {self.infer_steps}"
            )


class Doc2VecLinker(BaselineLinker):
    """PV-DBOW document vectors per concept, cosine ranking."""

    name = "Doc2Vec"

    def __init__(
        self,
        ontology: Ontology,
        kb: Optional[KnowledgeBase] = None,
        config: Optional[Doc2VecConfig] = None,
        rng: RngLike = None,
    ) -> None:
        self.config = config if config is not None else Doc2VecConfig()
        self._rng = ensure_rng(rng)
        self._cids: List[str] = []
        documents: List[List[str]] = []
        for leaf in ontology.fine_grained():
            words = list(leaf.words)
            if kb is not None:
                for alias in kb.aliases_of(leaf.cid):
                    words.extend(tokenize(alias))
            self._cids.append(leaf.cid)
            documents.append(words)
        self._vocab = Vocabulary.from_corpus(documents, include_specials=False)
        self._encoded = [
            [self._vocab.id_of(word) for word in words if word in self._vocab]
            for words in documents
        ]
        self._doc_vectors = np.zeros((0, self.config.dim))
        self._word_vectors = np.zeros((0, self.config.dim))
        self._noise_cdf = np.zeros(0)
        self._fitted = False

    # -- training -------------------------------------------------------------

    def fit(self) -> "Doc2VecLinker":
        """Train document and word vectors with PV-DBOW negative sampling."""
        dim = self.config.dim
        bound = 0.5 / dim
        self._doc_vectors = self._rng.uniform(
            -bound, bound, size=(len(self._encoded), dim)
        )
        self._word_vectors = np.zeros((len(self._vocab), dim))
        counts = np.array(
            [self._vocab.count_of(word) for word in self._vocab.words],
            dtype=np.float64,
        )
        weights = np.power(np.maximum(counts, 1.0), self.config.power)
        self._noise_cdf = np.cumsum(weights / weights.sum())
        lr = self.config.learning_rate
        for _ in range(self.config.epochs):
            order = self._rng.permutation(len(self._encoded))
            for doc_index in order:
                self._train_document(int(doc_index), lr)
        self._fitted = True
        return self

    def _train_document(self, doc_index: int, lr: float) -> None:
        word_ids = self._encoded[doc_index]
        if not word_ids:
            return
        doc_vector = self._doc_vectors[doc_index]
        for word_id in word_ids:
            self._negative_sampling_step(
                doc_vector, word_id, lr, update_words=True
            )

    def _negative_sampling_step(
        self,
        vector: np.ndarray,
        target_id: int,
        lr: float,
        update_words: bool,
    ) -> None:
        negatives = self.config.negatives
        targets = np.empty(negatives + 1, dtype=np.intp)
        targets[0] = target_id
        targets[1:] = np.searchsorted(
            self._noise_cdf, self._rng.random(negatives)
        )
        labels = np.zeros(negatives + 1)
        labels[0] = 1.0
        rows = self._word_vectors[targets]
        scores = rows @ vector
        probabilities = np.where(
            scores >= 0,
            1.0 / (1.0 + np.exp(-scores)),
            np.exp(scores) / (1.0 + np.exp(scores)),
        )
        error = probabilities - labels
        grad_vector = error @ rows
        if update_words:
            self._word_vectors[targets] -= lr * np.outer(error, vector)
        vector -= lr * grad_vector

    # -- inference ----------------------------------------------------------------

    def infer(self, tokens: Sequence[str]) -> np.ndarray:
        """Infer a paragraph vector for unseen text (word matrix frozen)."""
        if not self._fitted:
            raise NotFittedError("Doc2VecLinker.infer called before fit")
        word_ids = [
            self._vocab.id_of(token) for token in tokens if token in self._vocab
        ]
        dim = self.config.dim
        vector = self._rng.uniform(-0.5 / dim, 0.5 / dim, size=dim)
        if not word_ids:
            return vector
        lr = self.config.learning_rate
        for _ in range(self.config.infer_steps):
            for word_id in word_ids:
                self._negative_sampling_step(
                    vector, word_id, lr, update_words=False
                )
        return vector

    def rank(self, query: str, k: int = 10) -> RankedList:
        if not self._fitted:
            raise NotFittedError("Doc2VecLinker.rank called before fit")
        tokens = tokenize(query)
        if not tokens:
            return []
        vector = self.infer(tokens)
        norm = np.linalg.norm(vector)
        if norm == 0.0:
            return []
        doc_norms = np.linalg.norm(self._doc_vectors, axis=1)
        doc_norms[doc_norms == 0.0] = 1.0
        scores = (self._doc_vectors @ vector) / (doc_norms * norm)
        order = np.argsort(-scores)
        return [
            (self._cids[int(index)], float(scores[int(index)]))
            for index in order[:k]
        ]
