"""Combined annotator: rank-fusion over multiple linkers.

The paper's related work (Section 2.2) distinguishes a third category —
*combined annotators* [24, 27] that aggregate multiple methods — and
notes that "as a concept linking method, our proposed NCL can also be
combined with the other annotators".  This module provides that
combination via reciprocal-rank fusion (RRF), a robust, score-scale-free
aggregator:

    RRF(c) = Σ_m  w_m / (k + rank_m(c))

where ``rank_m(c)`` is concept ``c``'s rank under method ``m`` (absent
concepts contribute nothing) and ``k`` dampens the head of each list.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.base import BaselineLinker, RankedList
from repro.utils.errors import ConfigurationError

#: Any ``(query, k) -> RankedList`` callable can join an ensemble.
RankFn = Callable[[str, int], RankedList]


class EnsembleLinker(BaselineLinker):
    """Reciprocal-rank fusion of several linkers.

    Parameters
    ----------
    members:
        ``(name, rank_fn)`` pairs; :class:`BaselineLinker` instances
        can be passed directly via :meth:`from_linkers`.
    weights:
        Optional per-member positive weights (default: all 1.0).
    dampening:
        The RRF ``k`` constant (default 60, the literature standard).
    pool_k:
        How many candidates to request from each member per query.
    """

    name = "ensemble"

    def __init__(
        self,
        members: Sequence[Tuple[str, RankFn]],
        weights: Optional[Sequence[float]] = None,
        dampening: float = 60.0,
        pool_k: int = 20,
    ) -> None:
        if not members:
            raise ConfigurationError("ensemble needs at least one member")
        if dampening <= 0:
            raise ConfigurationError(
                f"dampening must be positive, got {dampening}"
            )
        if pool_k < 1:
            raise ConfigurationError(f"pool_k must be >= 1, got {pool_k}")
        member_weights = (
            list(weights) if weights is not None else [1.0] * len(members)
        )
        if len(member_weights) != len(members):
            raise ConfigurationError(
                f"{len(member_weights)} weights for {len(members)} members"
            )
        if any(weight <= 0 for weight in member_weights):
            raise ConfigurationError("ensemble weights must be positive")
        self._members = list(members)
        self._weights = member_weights
        self._dampening = dampening
        self._pool_k = pool_k

    @classmethod
    def from_linkers(
        cls,
        linkers: Sequence[BaselineLinker],
        weights: Optional[Sequence[float]] = None,
        **kwargs,
    ) -> "EnsembleLinker":
        members = [
            (linker.name, linker.rank) for linker in linkers
        ]
        return cls(members, weights=weights, **kwargs)

    @property
    def member_names(self) -> List[str]:
        return [name for name, _ in self._members]

    def rank(self, query: str, k: int = 10) -> RankedList:
        scores: Dict[str, float] = {}
        for (name, rank_fn), weight in zip(self._members, self._weights):
            ranked = rank_fn(query, self._pool_k)
            for position, (cid, _) in enumerate(ranked, start=1):
                scores[cid] = scores.get(cid, 0.0) + weight / (
                    self._dampening + position
                )
        fused = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return fused[:k]
