"""Word Mover's Distance [25] over pre-trained word embeddings.

WMD measures document dissimilarity as the minimum cumulative embedding
distance needed to "move" one document's normalised bag-of-words onto
the other's — an optimal-transport problem.  Clinical snippets are a
handful of words, so we solve the transport LP exactly with
``scipy.optimize.linprog``; the cheap *relaxed* lower bound (each word
moves wholesale to its nearest counterpart; Kusner et al.'s RWMD) is
used to prune candidates before exact evaluation.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.baselines.base import BaselineLinker, RankedList
from repro.embeddings.similarity import WordVectors
from repro.ontology.ontology import Ontology
from repro.text.tokenize import tokenize
from repro.utils.errors import ConfigurationError, DataError


def _bow(tokens: Sequence[str], vectors: WordVectors) -> Tuple[List[str], np.ndarray]:
    """In-vocabulary words and their normalised frequencies."""
    counts = Counter(token for token in tokens if token in vectors)
    if not counts:
        return [], np.zeros(0)
    words = sorted(counts)
    weights = np.array([counts[word] for word in words], dtype=np.float64)
    return words, weights / weights.sum()


def _distance_matrix(
    left_words: Sequence[str],
    right_words: Sequence[str],
    vectors: WordVectors,
) -> np.ndarray:
    left = vectors.vectors_for(left_words)
    right = vectors.vectors_for(right_words)
    diff = left[:, None, :] - right[None, :, :]
    return np.sqrt((diff * diff).sum(axis=2))


def relaxed_word_movers_distance(
    left: Sequence[str], right: Sequence[str], vectors: WordVectors
) -> float:
    """The RWMD lower bound: max of the two one-sided relaxations."""
    left_words, left_weights = _bow(left, vectors)
    right_words, right_weights = _bow(right, vectors)
    if not left_words or not right_words:
        return float("inf")
    costs = _distance_matrix(left_words, right_words, vectors)
    forward = float(left_weights @ costs.min(axis=1))
    backward = float(right_weights @ costs.min(axis=0))
    return max(forward, backward)


def word_movers_distance(
    left: Sequence[str], right: Sequence[str], vectors: WordVectors
) -> float:
    """Exact WMD via the transportation LP.

    Returns ``inf`` when either side has no in-vocabulary words (the
    documents are incomparable — mirrors WMD implementations that skip
    OOV-only documents).
    """
    left_words, left_weights = _bow(left, vectors)
    right_words, right_weights = _bow(right, vectors)
    if not left_words or not right_words:
        return float("inf")
    costs = _distance_matrix(left_words, right_words, vectors)
    n, m = costs.shape
    # Variables: flow T[i, j] >= 0, flattened row-major.
    # Row sums = left_weights, column sums = right_weights.
    equality_rows = []
    equality_values = []
    for i in range(n):
        row = np.zeros(n * m)
        row[i * m : (i + 1) * m] = 1.0
        equality_rows.append(row)
        equality_values.append(left_weights[i])
    for j in range(m):
        column = np.zeros(n * m)
        column[j::m] = 1.0
        equality_rows.append(column)
        equality_values.append(right_weights[j])
    result = linprog(
        c=costs.ravel(),
        A_eq=np.vstack(equality_rows),
        b_eq=np.asarray(equality_values),
        bounds=[(0, None)] * (n * m),
        method="highs",
    )
    if not result.success:
        raise DataError(f"WMD transport LP failed: {result.message}")
    return float(result.fun)


class WmdLinker(BaselineLinker):
    """Rank concepts by ascending WMD to the query.

    ``prune_to`` candidates survive the RWMD lower-bound screen before
    exact WMD is computed (Kusner et al.'s prefetch-and-prune).
    """

    name = "WMD"

    def __init__(
        self,
        ontology: Ontology,
        vectors: WordVectors,
        prune_to: int = 50,
    ) -> None:
        if prune_to < 1:
            raise ConfigurationError(f"prune_to must be >= 1, got {prune_to}")
        self._vectors = vectors
        self._prune_to = prune_to
        self._documents: List[Tuple[str, Tuple[str, ...]]] = [
            (leaf.cid, leaf.words) for leaf in ontology.fine_grained()
        ]

    def rank(self, query: str, k: int = 10) -> RankedList:
        query_tokens = tokenize(query)
        if not query_tokens:
            return []
        lower_bounds: List[Tuple[float, str, Tuple[str, ...]]] = []
        for cid, words in self._documents:
            bound = relaxed_word_movers_distance(
                query_tokens, words, self._vectors
            )
            if np.isfinite(bound):
                lower_bounds.append((bound, cid, words))
        lower_bounds.sort(key=lambda item: item[0])
        scored: List[Tuple[str, float]] = []
        for bound, cid, words in lower_bounds[: self._prune_to]:
            distance = word_movers_distance(query_tokens, words, self._vectors)
            if np.isfinite(distance):
                # Negate: the harness ranks by descending score.
                scored.append((cid, -distance))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:k]
