"""Competitor methods from the paper's Section 6.4 comparison.

Every baseline implements :class:`BaselineLinker` — ``rank(query, k)``
returning ordered ``(cid, score)`` — so the evaluation harness treats
NCL and the baselines uniformly.

* :class:`NobleCoderLinker` — dictionary-based annotator in the style
  of NOBLECoder [42]: word-to-term and term-to-concept hash tables with
  greedy best-match lookup.
* :class:`PkduckLinker` — abbreviation-aware approximate string join in
  the style of pkduck [44], with a join similarity threshold θ.
* :class:`WmdLinker` — Word Mover's Distance [25] over pre-trained
  word embeddings (exact optimal transport via scipy).
* :class:`Doc2VecLinker` — PV-DBOW paragraph vectors [26] trained from
  scratch; concepts ranked by document-vector cosine.
* :class:`LrPlusLinker` — the extended logistic regression LR⁺ [43]:
  the original's hand-crafted textual features plus the paper's added
  structural features.
"""

from repro.baselines.base import BaselineLinker, RankedList
from repro.baselines.doc2vec import Doc2VecConfig, Doc2VecLinker
from repro.baselines.ensemble import EnsembleLinker
from repro.baselines.keyword import KeywordLinker
from repro.baselines.lr_plus import LrPlusConfig, LrPlusLinker
from repro.baselines.noblecoder import NobleCoderLinker
from repro.baselines.pkduck import PkduckLinker, pkduck_similarity
from repro.baselines.wmd import WmdLinker, word_movers_distance

__all__ = [
    "BaselineLinker",
    "Doc2VecConfig",
    "Doc2VecLinker",
    "EnsembleLinker",
    "KeywordLinker",
    "LrPlusConfig",
    "LrPlusLinker",
    "NobleCoderLinker",
    "PkduckLinker",
    "RankedList",
    "WmdLinker",
    "pkduck_similarity",
    "word_movers_distance",
]
