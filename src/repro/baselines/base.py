"""Common interface for baseline linkers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Tuple

RankedList = List[Tuple[str, float]]


class BaselineLinker(ABC):
    """A concept linker ranking fine-grained concepts for a text query.

    ``rank`` returns up to ``k`` ``(cid, score)`` pairs in descending
    score order; an empty list means the method abstains (dictionary
    methods legitimately find nothing for heavily distorted queries —
    the paper's NOBLECoder analysis hinges on exactly that).
    """

    name: str = "baseline"

    @abstractmethod
    def rank(self, query: str, k: int = 10) -> RankedList:
        """Rank fine-grained concepts for ``query``."""

    def link(self, query: str, k: int = 10) -> str:
        """Convenience: the top-1 cid, or ``""`` when abstaining."""
        ranked = self.rank(query, k=k)
        return ranked[0][0] if ranked else ""
