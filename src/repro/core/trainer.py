"""COM-AID training (paper Section 4.2, refinement phase).

Builds the model vocabulary, optionally seeds the embedding table from
CBOW pre-training, constructs the ⟨canonical, alias⟩ example set from
the knowledge base, and minimises the negative log-likelihood (Eq. 10)
with mini-batch gradient descent and global-norm clipping.

The trainer also supports *incremental* training on newly collected
feedback pairs (Appendix A): :meth:`continue_training` runs additional
epochs over extra examples without re-initialising parameters, which is
what the feedback controller triggers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.checkpoint import (
    CheckpointState,
    load_checkpoint,
    save_checkpoint,
    snapshot_from_trainer,
)
from repro.core.comaid import ComAid
from repro.core.config import ComAidConfig, TrainingConfig
from repro.kb.knowledge_base import KnowledgeBase, TrainingPair
from repro.nn.clip import clip_global_norm
from repro.obs.runlog import RunLogger, rng_fingerprint
from repro.nn.optim import make_optimizer
from repro.embeddings.similarity import WordVectors
from repro.ontology.ontology import Ontology
from repro.ontology.paths import structural_context
from repro.text.tokenize import tokenize
from repro.text.vocab import Vocabulary
from repro.utils.errors import ConfigurationError, DataError, NotFittedError
from repro.utils.faults import probe
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, derive_rng, ensure_rng
from repro.utils.timing import Stopwatch

logger = get_logger("core.trainer")


@dataclass
class TrainingHistory:
    """Per-epoch mean losses and wall-clock timings."""

    epoch_losses: List[float] = field(default_factory=list)
    seconds: float = 0.0
    examples: int = 0

    def final_loss(self) -> float:
        """Mean token loss of the last recorded epoch."""
        if not self.epoch_losses:
            raise NotFittedError("no training epochs recorded")
        return self.epoch_losses[-1]


@dataclass
class _Example:
    """A fully id-encoded training pair."""

    concept_ids: List[int]
    ancestor_ids: List[List[int]]
    query_ids: List[int]


class ComAidTrainer:
    """Train :class:`ComAid` from a knowledge base.

    Usage::

        trainer = ComAidTrainer(ComAidConfig(dim=24), TrainingConfig(), rng=7)
        model = trainer.fit(kb, word_vectors=vectors)
    """

    def __init__(
        self,
        model_config: ComAidConfig,
        training_config: Optional[TrainingConfig] = None,
        rng: RngLike = None,
    ) -> None:
        self.model_config = model_config
        self.training_config = (
            training_config if training_config is not None else TrainingConfig()
        )
        self._rng = ensure_rng(rng)
        self.model: Optional[ComAid] = None
        self.history = TrainingHistory()
        self._ontology: Optional[Ontology] = None
        self._ancestor_ids: Dict[str, List[List[int]]] = {}

    # -- vocabulary -----------------------------------------------------------

    def build_vocabulary(
        self,
        kb: KnowledgeBase,
        word_vectors: Optional[WordVectors] = None,
    ) -> Vocabulary:
        """Model vocabulary Ω′: concept words, alias words, and (when
        pre-trained vectors are supplied) every pre-training word, so
        unlabeled-corpus-only words like ``dm`` keep their embeddings.
        """
        sequences: List[Tuple[str, ...]] = []
        for concept in kb.ontology:
            sequences.append(concept.words)
        for _, alias in kb.labeled_snippets():
            sequences.append(tuple(tokenize(alias)))
        if word_vectors is not None:
            tags = word_vectors.tag_words
            sequences.extend(
                (word,) for word in word_vectors.words if word not in tags
            )
        return Vocabulary.from_corpus(sequences)

    # -- example construction ----------------------------------------------------

    def _ancestors_for(self, model: ComAid, ontology: Ontology, cid: str) -> List[List[int]]:
        """Encoded ancestor descriptions along the β-path (Def. 4.1)."""
        if not self.model_config.use_structure_attention:
            return []
        cached = self._ancestor_ids.get(cid)
        if cached is not None:
            return cached
        path = structural_context(ontology, cid, self.model_config.beta)
        ancestor_ids = [
            model.words_to_ids(list(concept.words)) for concept in path[1:]
        ]
        self._ancestor_ids[cid] = ancestor_ids
        return ancestor_ids

    def _encode_pairs(
        self, model: ComAid, ontology: Ontology, pairs: Sequence[TrainingPair]
    ) -> List[_Example]:
        examples: List[_Example] = []
        for pair in pairs:
            concept_ids = model.words_to_ids(tokenize(pair.canonical))
            query_ids = model.words_to_ids(tokenize(pair.alias))
            if not concept_ids or not query_ids:
                continue
            examples.append(
                _Example(
                    concept_ids=concept_ids,
                    ancestor_ids=self._ancestors_for(model, ontology, pair.cid),
                    query_ids=query_ids,
                )
            )
        if not examples:
            raise DataError("no usable training pairs after encoding")
        return examples

    # -- training --------------------------------------------------------------

    def fit(
        self,
        kb: KnowledgeBase,
        word_vectors: Optional[WordVectors] = None,
        pairs: Optional[Sequence[TrainingPair]] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 0,
        resume_from: Optional[Union[str, Path]] = None,
        run_dir: Optional[Union[str, Path]] = None,
        run_id: Optional[str] = None,
    ) -> ComAid:
        """Train a fresh model on the knowledge base's alias pairs.

        ``word_vectors`` seeds the embedding table (the pre-training
        hand-off); omit it to reproduce the COM-AID⁻o1 ablation.
        ``pairs`` overrides the training set (robustness studies).

        With ``checkpoint_dir`` and ``checkpoint_every=N`` an atomic
        checkpoint (parameters, optimiser state, RNG streams, history)
        is written after every N-th epoch.  ``resume_from`` continues a
        killed run from a checkpoint directory (or a checkpoint root,
        resuming its newest complete checkpoint): given the same
        knowledge base, configs, and seed, the resumed run reproduces
        the uninterrupted run's epoch losses and final parameters
        bit-for-bit (wall-clock ``history.seconds`` is the one field
        that legitimately differs).

        ``run_dir`` enables training telemetry: per-epoch JSONL records
        (loss, token throughput, gradient norms, checkpoint wall time,
        RNG stream fingerprint) land under ``run_dir/<run_id>/`` as the
        run progresses, for ``repro runs`` to list and diff.
        """
        if checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if checkpoint_every > 0 and checkpoint_dir is None:
            raise ConfigurationError(
                "checkpoint_every > 0 requires a checkpoint_dir"
            )
        vocab = self.build_vocabulary(kb, word_vectors)
        model = ComAid(
            self.model_config, vocab, rng=derive_rng(self._rng, "model-init")
        )
        if word_vectors is not None:
            self._seed_embeddings(model, word_vectors)
        self.model = model
        self._ontology = kb.ontology
        self._ancestor_ids = {}
        training_pairs = list(pairs) if pairs is not None else kb.training_pairs()
        if not training_pairs:
            raise DataError("knowledge base has no training pairs")
        examples = self._encode_pairs(model, kb.ontology, training_pairs)
        self.history = TrainingHistory(examples=len(examples))
        resume_state: Optional[CheckpointState] = None
        if resume_from is not None:
            resume_state = self._validate_resume(
                load_checkpoint(resume_from), len(examples)
            )
            model.load_state_dict(resume_state.model_state)
            self.history = TrainingHistory(
                epoch_losses=list(resume_state.epoch_losses),
                seconds=resume_state.seconds,
                examples=len(examples),
            )
            logger.info(
                "resuming from epoch %d/%d",
                resume_state.epoch,
                self.training_config.epochs,
            )
        runlog: Optional[RunLogger] = None
        if run_dir is not None:
            runlog = RunLogger(
                run_dir,
                run_id=run_id,
                meta={
                    "model_config": dataclasses.asdict(self.model_config),
                    "training_config": dataclasses.asdict(
                        self.training_config
                    ),
                    "examples": len(examples),
                    "pretrained_embeddings": word_vectors is not None,
                    "resumed_epoch": (
                        resume_state.epoch if resume_state is not None else 0
                    ),
                    "rng_fingerprint_start": rng_fingerprint(self._rng),
                },
            )
        try:
            self._run_epochs(
                examples,
                self.training_config.epochs,
                resume_state=resume_state,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                runlog=runlog,
            )
            if runlog is not None:
                runlog.finish(
                    epochs=len(self.history.epoch_losses),
                    final_loss=(
                        self.history.epoch_losses[-1]
                        if self.history.epoch_losses
                        else None
                    ),
                    seconds=self.history.seconds,
                    examples=self.history.examples,
                )
        finally:
            if runlog is not None:
                runlog.close()
        return model

    def _validate_resume(
        self, state: CheckpointState, example_count: int
    ) -> CheckpointState:
        """Refuse checkpoints from a different config or training set."""
        if state.model_config is not None:
            current = dataclasses.asdict(self.model_config)
            if state.model_config != current:
                raise ConfigurationError(
                    "checkpoint was taken with a different model config: "
                    f"{state.model_config} != {current}"
                )
        if state.training_config is not None:
            current = dataclasses.asdict(self.training_config)
            if state.training_config != current:
                raise ConfigurationError(
                    "checkpoint was taken with a different training config: "
                    f"{state.training_config} != {current}"
                )
        if state.examples and state.examples != example_count:
            raise DataError(
                f"checkpoint trained on {state.examples} examples but the "
                f"current knowledge base encodes {example_count}"
            )
        if state.epoch > self.training_config.epochs:
            raise ConfigurationError(
                f"checkpoint is at epoch {state.epoch}, beyond the requested "
                f"{self.training_config.epochs} epochs"
            )
        return state

    def adopt(self, model: ComAid, ontology: Ontology) -> None:
        """Attach an externally built model for incremental training.

        The lifecycle controller retrains a *clone* of the serving
        model (the live weights must not shift under traffic), and the
        CLI retrains models loaded from a saved pipeline — neither came
        out of this trainer's :meth:`fit`.  Adopting one makes
        :meth:`continue_training` legal on it; the per-concept ancestor
        cache is reset because the adopted model's id space may differ.
        """
        if model.config != self.model_config:
            raise ConfigurationError(
                "adopted model's architecture config does not match the "
                f"trainer's: {model.config} != {self.model_config}"
            )
        self.model = model
        self._ontology = ontology
        self._ancestor_ids = {}

    def continue_training(
        self,
        extra_pairs: Sequence[TrainingPair],
        epochs: int = 1,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 0,
    ) -> None:
        """Incrementally train the fitted model on ``extra_pairs``.

        This is the feedback-controller retraining hook (Appendix A):
        parameters are *not* re-initialised, so representation shifts
        can be observed between snapshots (Figure 10).  With
        ``checkpoint_dir``/``checkpoint_every`` the incremental epochs
        checkpoint atomically exactly like :meth:`fit` — the lifecycle
        controller's background retrain survives a crash the same way a
        fresh training run does.
        """
        if self.model is None or self._ontology is None:
            raise NotFittedError("continue_training requires a fitted model")
        if checkpoint_every > 0 and checkpoint_dir is None:
            raise ConfigurationError(
                "checkpoint_every > 0 requires a checkpoint_dir"
            )
        examples = self._encode_pairs(self.model, self._ontology, extra_pairs)
        self._run_epochs(
            examples,
            epochs,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
        )

    def _seed_embeddings(self, model: ComAid, vectors: WordVectors) -> None:
        words = [word for word in model.vocab.words if word in vectors]
        if not words:
            logger.warning("no vocabulary overlap with pre-trained vectors")
            return
        matrix = vectors.as_matrix(words)
        if matrix.shape[1] != model.config.dim:
            raise DataError(
                f"pre-trained vectors have dim {matrix.shape[1]}, model "
                f"expects {model.config.dim}"
            )
        ids = [model.vocab.id_of(word) for word in words]
        model.embedding.load_pretrained(matrix, ids)
        logger.info("seeded %d/%d embeddings from pre-training", len(ids), len(model.vocab))

    def _run_epochs(
        self,
        examples: List[_Example],
        epochs: int,
        resume_state: Optional[CheckpointState] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 0,
        runlog: Optional[RunLogger] = None,
    ) -> None:
        assert self.model is not None
        model = self.model
        settings = self.training_config
        optimizer = make_optimizer(
            settings.optimizer,
            model.parameters().values(),
            lr=settings.learning_rate,
        )
        if settings.sampled_softmax > 0:
            model.set_output_sampler(
                settings.sampled_softmax,
                rng=derive_rng(self._rng, "output-sampler"),
            )
        start_epoch = 0
        order = np.arange(len(examples))
        if resume_state is not None:
            start_epoch = resume_state.epoch
            optimizer.load_state_dict(resume_state.optimizer_state)
            # Epoch shuffles compose in place, so the permutation as of
            # the checkpointed epoch must be restored, not replayed.
            order = np.asarray(resume_state.order, dtype=order.dtype).copy()
            if len(order) != len(examples):
                raise DataError(
                    f"checkpoint order has {len(order)} entries for "
                    f"{len(examples)} examples"
                )
            if resume_state.sampler_rng_state is not None:
                model.restore_output_sampler_rng(resume_state.sampler_rng_state)
            # Restore the shuffle stream last: the derive_rng calls above
            # advanced the parent generator exactly as the original run
            # did before its first epoch.
            if resume_state.rng_state is not None:
                self._rng.bit_generator.state = resume_state.rng_state
        watch = Stopwatch().start()
        for epoch in range(start_epoch, epochs):
            epoch_started = watch.elapsed
            if settings.shuffle:
                self._rng.shuffle(order)
            epoch_loss = 0.0
            token_count = 0
            grad_norm_sum = 0.0
            grad_norm_max = 0.0
            batch_count = 0
            for start in range(0, len(order), settings.batch_size):
                batch = order[start : start + settings.batch_size]
                model.zero_grad()
                scale = 1.0 / len(batch)
                for index in batch:
                    example = examples[int(index)]
                    cache = model.forward(
                        example.concept_ids,
                        example.ancestor_ids,
                        example.query_ids,
                    )
                    model.backward(cache, scale=scale)
                    epoch_loss += cache.loss
                    token_count += len(example.query_ids) + 1
                grad_norm = clip_global_norm(
                    model.parameters().values(), settings.clip_norm
                )
                grad_norm_sum += grad_norm
                grad_norm_max = max(grad_norm_max, grad_norm)
                batch_count += 1
                optimizer.step()
            mean_loss = epoch_loss / max(token_count, 1)
            self.history.epoch_losses.append(mean_loss)
            logger.info(
                "epoch %d/%d mean token loss %.4f", epoch + 1, epochs, mean_loss
            )
            checkpoint_seconds = 0.0
            if (
                checkpoint_dir is not None
                and checkpoint_every > 0
                and (epoch + 1) % checkpoint_every == 0
            ):
                checkpoint_watch = Stopwatch().start()
                save_checkpoint(
                    checkpoint_dir,
                    snapshot_from_trainer(self, optimizer, epoch + 1, order),
                )
                checkpoint_seconds = checkpoint_watch.stop()
            if runlog is not None:
                epoch_seconds = watch.elapsed - epoch_started
                runlog.log_epoch(
                    epoch + 1,
                    mean_loss=mean_loss,
                    tokens=token_count,
                    seconds=epoch_seconds,
                    tokens_per_s=(
                        token_count / epoch_seconds if epoch_seconds > 0 else 0.0
                    ),
                    grad_norm_mean=(
                        grad_norm_sum / batch_count if batch_count else 0.0
                    ),
                    grad_norm_max=grad_norm_max,
                    checkpoint_s=checkpoint_seconds,
                    rng=rng_fingerprint(self._rng),
                )
            probe("trainer.epoch_end")
        self.history.seconds += watch.stop()
        if settings.sampled_softmax > 0:
            model.clear_output_sampler()
