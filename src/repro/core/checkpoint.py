"""Atomic training checkpoints: snapshot, verify, resume.

A checkpoint captures everything :class:`~repro.core.trainer.ComAidTrainer`
needs to continue a run *bit-for-bit* from an epoch boundary:

* the COM-AID parameters (``model.state_dict()``),
* the optimiser's accumulator state (``optimizer.state_dict()``),
* the trainer RNG's bit-generator state (shuffle stream) and, when
  sampled softmax is active, the output sampler's RNG state,
* the cumulative example permutation (epoch shuffles compose in place),
* the :class:`TrainingHistory` losses recorded so far.

On disk each checkpoint is one directory:

.. code-block:: text

    <checkpoint_dir>/
      epoch-0003/
        state.npz        arrays: model.*, optim.*, order
        manifest.json    epoch, RNG states, history, config echo,
                         sha256 + byte size of state.npz
      LATEST             name of the newest complete checkpoint

Durability comes from staging: ``state.npz`` and ``manifest.json`` are
written (and fsynced) into a hidden temp directory which is then
``os.replace``-d to its final name, so a crash at any point leaves
either no ``epoch-K`` directory or a complete one — never a torn one.
The ``LATEST`` pointer is itself updated via temp-file + ``os.replace``
and only after the checkpoint directory is committed; stale staging
directories from killed runs are swept on the next save.

:func:`load_checkpoint` re-hashes ``state.npz`` against the manifest and
raises :class:`~repro.utils.errors.DataError` naming the damaged file on
any truncation or corruption.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.obs import trace
from repro.utils.errors import DataError
from repro.utils.faults import probe

PathLike = Union[str, Path]

CHECKPOINT_FORMAT = 1
LATEST_FILE = "LATEST"
STATE_FILE = "state.npz"
MANIFEST_FILE = "manifest.json"
_STAGING_PREFIX = ".staging-"


@dataclass
class CheckpointState:
    """In-memory image of one checkpoint (see module docstring)."""

    epoch: int
    model_state: Dict[str, np.ndarray]
    optimizer_state: Dict[str, np.ndarray]
    rng_state: dict
    order: np.ndarray
    epoch_losses: List[float]
    seconds: float
    examples: int
    sampler_rng_state: Optional[dict] = None
    model_config: Optional[dict] = None
    training_config: Optional[dict] = None


def _sha256_of(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_atomic(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp file + ``os.replace``."""
    staging = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    with open(staging, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(staging, path)


def _sweep_staging(directory: Path) -> None:
    """Remove torn staging directories left behind by killed runs."""
    for entry in directory.glob(f"{_STAGING_PREFIX}*"):
        if entry.is_dir():
            shutil.rmtree(entry, ignore_errors=True)


def checkpoint_name(epoch: int) -> str:
    """Directory name for the checkpoint taken after ``epoch`` epochs."""
    return f"epoch-{epoch:04d}"


def save_checkpoint(directory: PathLike, state: CheckpointState) -> Path:
    """Atomically write ``state`` under ``directory`` and advance LATEST.

    Returns the committed checkpoint path (``<directory>/epoch-KKKK``).
    Re-saving an epoch that already exists replaces it.
    """
    with trace.span("checkpoint.save", epoch=state.epoch):
        return _save_checkpoint(directory, state)


def _save_checkpoint(directory: PathLike, state: CheckpointState) -> Path:
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    _sweep_staging(base)
    name = checkpoint_name(state.epoch)
    final = base / name
    staging = base / f"{_STAGING_PREFIX}{name}-{os.getpid()}"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()

    arrays: Dict[str, np.ndarray] = {"order": np.asarray(state.order)}
    for key, value in state.model_state.items():
        arrays[f"model.{key}"] = value
    for key, value in state.optimizer_state.items():
        arrays[f"optim.{key}"] = value
    probe("checkpoint.write_state")
    state_path = staging / STATE_FILE
    with open(state_path, "wb") as handle:
        np.savez(handle, **arrays)
        handle.flush()
        os.fsync(handle.fileno())

    manifest = {
        "format": CHECKPOINT_FORMAT,
        "epoch": state.epoch,
        "rng_state": state.rng_state,
        "sampler_rng_state": state.sampler_rng_state,
        "history": {
            "epoch_losses": list(state.epoch_losses),
            "seconds": state.seconds,
            "examples": state.examples,
        },
        "model_config": state.model_config,
        "training_config": state.training_config,
        "files": {
            STATE_FILE: {
                "sha256": _sha256_of(state_path),
                "bytes": state_path.stat().st_size,
            }
        },
    }
    probe("checkpoint.write_manifest")
    manifest_path = staging / MANIFEST_FILE
    with open(manifest_path, "wb") as handle:
        handle.write(json.dumps(manifest, indent=2).encode("utf-8"))
        handle.flush()
        os.fsync(handle.fileno())

    probe("checkpoint.commit")
    if final.exists():
        # Re-saving the same epoch (e.g. a re-run over an old dir):
        # park the stale copy so the replace below stays atomic.
        stale = base / f"{_STAGING_PREFIX}stale-{name}-{os.getpid()}"
        os.replace(final, stale)
        shutil.rmtree(stale, ignore_errors=True)
    os.replace(staging, final)
    probe("checkpoint.advance_latest")
    _write_atomic(base / LATEST_FILE, (name + "\n").encode("utf-8"))
    return final


def _checkpoint_dirs(directory: Path) -> List[Path]:
    return sorted(
        entry
        for entry in directory.glob("epoch-*")
        if entry.is_dir() and (entry / MANIFEST_FILE).exists()
    )


def latest_checkpoint(directory: PathLike) -> Optional[Path]:
    """Newest complete checkpoint under ``directory`` (None when empty).

    Prefers the LATEST pointer; falls back to scanning ``epoch-*``
    directories when the pointer is missing or dangling (e.g. a crash
    landed between the directory commit and the pointer update).
    """
    base = Path(directory)
    pointer = base / LATEST_FILE
    if pointer.exists():
        name = pointer.read_text(encoding="utf-8").strip()
        candidate = base / name
        if candidate.is_dir() and (candidate / MANIFEST_FILE).exists():
            return candidate
    complete = _checkpoint_dirs(base)
    return complete[-1] if complete else None


def _read_manifest(path: Path) -> dict:
    manifest_path = path / MANIFEST_FILE
    if not manifest_path.exists():
        raise DataError(f"checkpoint {path} has no {MANIFEST_FILE}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DataError(
            f"checkpoint manifest {manifest_path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or "epoch" not in manifest:
        raise DataError(f"checkpoint manifest {manifest_path} is malformed")
    return manifest


def verify_checkpoint(path: PathLike) -> dict:
    """Check a checkpoint's files against its manifest.

    Returns the parsed manifest on success; raises
    :class:`DataError` naming the missing/corrupt file otherwise.
    """
    root = Path(path)
    manifest = _read_manifest(root)
    for name, expected in manifest.get("files", {}).items():
        target = root / name
        if not target.exists():
            raise DataError(f"checkpoint {root} is missing {name}")
        size = target.stat().st_size
        if size != expected.get("bytes"):
            raise DataError(
                f"checkpoint file {target} is truncated: "
                f"{size} bytes, manifest says {expected.get('bytes')}"
            )
        digest = _sha256_of(target)
        if digest != expected.get("sha256"):
            raise DataError(
                f"checkpoint file {target} is corrupt "
                f"(sha256 {digest[:12]}… != manifest {str(expected.get('sha256'))[:12]}…)"
            )
    return manifest


def load_checkpoint(path: PathLike) -> CheckpointState:
    """Load and integrity-check one checkpoint directory.

    ``path`` may be a specific ``epoch-KKKK`` directory or a checkpoint
    root, in which case the newest complete checkpoint is used.
    """
    root = Path(path)
    if not root.exists():
        raise DataError(f"checkpoint path {root} does not exist")
    if not (root / MANIFEST_FILE).exists():
        newest = latest_checkpoint(root)
        if newest is None:
            raise DataError(f"{root} contains no complete checkpoint")
        root = newest
    manifest = verify_checkpoint(root)
    state_path = root / STATE_FILE
    try:
        with np.load(state_path) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except (OSError, ValueError, KeyError) as exc:
        raise DataError(
            f"checkpoint file {state_path} cannot be read: {exc}"
        ) from exc
    if "order" not in arrays:
        raise DataError(f"checkpoint file {state_path} is missing 'order'")
    model_state = {
        key[len("model."):]: value
        for key, value in arrays.items()
        if key.startswith("model.")
    }
    optimizer_state = {
        key[len("optim."):]: value
        for key, value in arrays.items()
        if key.startswith("optim.")
    }
    history = manifest.get("history", {})
    return CheckpointState(
        epoch=int(manifest["epoch"]),
        model_state=model_state,
        optimizer_state=optimizer_state,
        rng_state=manifest.get("rng_state"),
        order=arrays["order"],
        epoch_losses=[float(x) for x in history.get("epoch_losses", [])],
        seconds=float(history.get("seconds", 0.0)),
        examples=int(history.get("examples", 0)),
        sampler_rng_state=manifest.get("sampler_rng_state"),
        model_config=manifest.get("model_config"),
        training_config=manifest.get("training_config"),
    )


def prune_checkpoints(directory: PathLike, keep: int) -> List[Path]:
    """Delete all but the ``keep`` newest complete checkpoints.

    Returns the removed paths.  The checkpoint named by LATEST is never
    removed, whatever ``keep`` says.
    """
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    base = Path(directory)
    complete = _checkpoint_dirs(base)
    newest = latest_checkpoint(base)
    removed: List[Path] = []
    for entry in complete[:-keep] if keep < len(complete) else []:
        if newest is not None and entry == newest:
            continue
        shutil.rmtree(entry, ignore_errors=True)
        removed.append(entry)
    return removed


def snapshot_from_trainer(
    trainer: "ComAidTrainer",  # noqa: F821 - import cycle (trainer imports us)
    optimizer,
    epoch: int,
    order: np.ndarray,
) -> CheckpointState:
    """Assemble a :class:`CheckpointState` from live trainer internals."""
    model = trainer.model
    assert model is not None
    return CheckpointState(
        epoch=epoch,
        model_state=model.state_dict(),
        optimizer_state=optimizer.state_dict(),
        rng_state=trainer._rng.bit_generator.state,
        order=np.asarray(order).copy(),
        epoch_losses=list(trainer.history.epoch_losses),
        seconds=trainer.history.seconds,
        examples=trainer.history.examples,
        sampler_rng_state=model.output_sampler_rng_state(),
        model_config=dataclasses.asdict(trainer.model_config),
        training_config=dataclasses.asdict(trainer.training_config),
    )
