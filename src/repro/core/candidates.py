"""Phase-I candidate generation (paper Section 5).

A lightweight TF-IDF keyword matcher over the fine-grained concepts:
each concept's document is its canonical description (optionally
extended with its knowledge-base aliases), and a query retrieves the
top-``k`` cosine-similar concepts.  The matcher also exposes the
ontology word vocabulary Ω that query rewriting replaces OOV words
into.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.kb.knowledge_base import KnowledgeBase
from repro.ontology.ontology import Ontology
from repro.text.tfidf import TfIdfIndex
from repro.text.tokenize import tokenize
from repro.utils.errors import ConfigurationError


class CandidateGenerator:
    """Top-k fine-grained concept retrieval by TF-IDF cosine."""

    def __init__(
        self,
        ontology: Ontology,
        kb: Optional[KnowledgeBase] = None,
        index_aliases: bool = True,
        restrict_to: Optional[Sequence[str]] = None,
    ) -> None:
        leaves = ontology.fine_grained()
        if restrict_to is not None:
            wanted = set(restrict_to)
            leaves = tuple(leaf for leaf in leaves if leaf.cid in wanted)
        if not leaves:
            raise ConfigurationError("no fine-grained concepts to index")
        self._ontology = ontology
        self._omega: Set[str] = set()
        documents: List[Tuple[str, List[str]]] = []
        for leaf in leaves:
            tokens = list(leaf.words)
            self._omega.update(leaf.words)
            if kb is not None and index_aliases:
                for alias in kb.aliases_of(leaf.cid):
                    tokens.extend(tokenize(alias))
            documents.append((leaf.cid, tokens))
        self._index = TfIdfIndex().fit(documents)
        self._leaf_cids = tuple(leaf.cid for leaf in leaves)

    @property
    def omega(self) -> Set[str]:
        """The ontology description vocabulary Ω (rewrite targets)."""
        return set(self._omega)

    @property
    def indexed_cids(self) -> Tuple[str, ...]:
        return self._leaf_cids

    def generate(self, tokens: Sequence[str], k: int) -> List[Tuple[str, float]]:
        """Top-``k`` candidate cids with their keyword-match scores."""
        return [
            (match.key, match.score) for match in self._index.search(tokens, k=k)
        ]

    def postings_examined(self, tokens: Sequence[str]) -> int:
        """Inverted-index work for this query (Figure 11 CR analysis)."""
        return self._index.postings_examined(tokens)
