"""Phase-I candidate generation (paper Section 5).

A lightweight TF-IDF keyword matcher over the fine-grained concepts:
each concept's document is its canonical description (optionally
extended with its knowledge-base aliases), and a query retrieves the
top-``k`` cosine-similar concepts.  The matcher also exposes the
ontology word vocabulary Ω that query rewriting replaces OOV words
into.

For the sharded engine (:mod:`repro.engine.shards`) a generator can be
restricted to a shard's concepts while weighting with the *global*
corpus statistics (``corpus_stats``), which keeps every shard's cosines
on the same scale as one monolithic index — the precondition for
scatter-gather top-k merging to reproduce the unsharded ranking
exactly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.kb.knowledge_base import KnowledgeBase
from repro.ontology.ontology import Ontology
from repro.text.tfidf import CorpusStats, TfIdfIndex
from repro.text.tokenize import tokenize
from repro.utils.errors import ConfigurationError


def concept_documents(
    ontology: Ontology,
    kb: Optional[KnowledgeBase] = None,
    index_aliases: bool = True,
    restrict_to: Optional[Sequence[str]] = None,
) -> List[Tuple[str, List[str]]]:
    """The Phase-I index documents: one per fine-grained concept.

    Each document is the concept's canonical-description words,
    extended with its knowledge-base alias tokens when
    ``index_aliases``.  Exposed separately from the generator so the
    compile step (:mod:`repro.engine.compile`) can freeze the exact
    documents a deployment was indexed over into the artifact.
    """
    leaves = ontology.fine_grained()
    if restrict_to is not None:
        wanted = set(restrict_to)
        leaves = tuple(leaf for leaf in leaves if leaf.cid in wanted)
    documents: List[Tuple[str, List[str]]] = []
    for leaf in leaves:
        tokens = list(leaf.words)
        if kb is not None and index_aliases:
            for alias in kb.aliases_of(leaf.cid):
                tokens.extend(tokenize(alias))
        documents.append((leaf.cid, tokens))
    return documents


class CandidateGenerator:
    """Top-k fine-grained concept retrieval by TF-IDF cosine."""

    def __init__(
        self,
        ontology: Ontology,
        kb: Optional[KnowledgeBase] = None,
        index_aliases: bool = True,
        restrict_to: Optional[Sequence[str]] = None,
        corpus_stats: Optional[CorpusStats] = None,
    ) -> None:
        """Index the ontology's fine-grained concepts.

        ``restrict_to`` limits the index to the named concepts (in
        ontology order); ``corpus_stats`` overrides the IDF statistics
        with externally supplied global ones, so a restricted (shard)
        index scores on the same scale as the full index.
        """
        documents = concept_documents(
            ontology, kb=kb, index_aliases=index_aliases, restrict_to=restrict_to
        )
        self._finish_init(ontology, documents, corpus_stats)

    @classmethod
    def from_documents(
        cls,
        ontology: Ontology,
        documents: Sequence[Tuple[str, Sequence[str]]],
        corpus_stats: Optional[CorpusStats] = None,
    ) -> "CandidateGenerator":
        """Build a generator over pre-frozen index documents.

        The sharded engine constructs one generator per shard from the
        compiled artifact's frozen documents (not from live ontology +
        KB state), so index contents can never drift from the
        precomputed encodings they were compiled with.
        """
        generator = cls.__new__(cls)
        generator._finish_init(ontology, list(documents), corpus_stats)
        return generator

    def _finish_init(
        self,
        ontology: Ontology,
        documents: List[Tuple[str, Sequence[str]]],
        corpus_stats: Optional[CorpusStats],
    ) -> None:
        if not documents:
            raise ConfigurationError("no fine-grained concepts to index")
        self._ontology = ontology
        self._omega: Set[str] = set()
        for cid, _ in documents:
            self._omega.update(ontology.get(cid).words)
        self._index = TfIdfIndex().fit(documents, stats=corpus_stats)
        self._leaf_cids = tuple(cid for cid, _ in documents)

    @property
    def omega(self) -> Set[str]:
        """The ontology description vocabulary Ω (rewrite targets)."""
        return set(self._omega)

    @property
    def indexed_cids(self) -> Tuple[str, ...]:
        """The indexed concept ids, in ontology (tie-break) order."""
        return self._leaf_cids

    def corpus_stats(self) -> CorpusStats:
        """The index's corpus statistics (global ``df`` / ``doc_count``).

        A full-ontology generator exports these once at compile time;
        shard generators are then constructed with them so every
        shard's scores stay merge-compatible.
        """
        return self._index.stats()

    def generate(self, tokens: Sequence[str], k: int) -> List[Tuple[str, float]]:
        """Top-``k`` candidate cids with their keyword-match scores."""
        return [
            (match.key, match.score) for match in self._index.search(tokens, k=k)
        ]

    def postings_examined(self, tokens: Sequence[str]) -> int:
        """Inverted-index work for this query (Figure 11 CR analysis)."""
        return self._index.postings_examined(tokens)
