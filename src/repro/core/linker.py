"""The two-phase online concept linker (paper Section 5).

Phase I — generate candidates: rewrite OOV query words (OR), then
retrieve the top-``k`` fine-grained concepts from the TF-IDF keyword
index (CR).

Phase II — re-rank with COM-AID: for each candidate, compute
``log p(q|c; Θ)`` with the trained model (ED), after temporarily
removing the words the query shares with the candidate's canonical
description; rank by score (RT).  With ``LinkerConfig.batch_phase2``
(the default) all k candidates are scored by one lock-step batched
decode (:meth:`repro.core.comaid.ComAid.score_batch`) instead of k
sequential decodes — identical rankings, ~an order less Python/matvec
overhead on the Figure 11 "ED" bottleneck.

Timing of the four parts (OR/CR/ED/RT) is recorded per query, which is
exactly the decomposition the paper's Figure 11 reports.  Concept
encodings are cached in thread-safe bounded LRUs
(:class:`repro.serving.cache.LRUCache`, capacity from
``LinkerConfig.encoding_cache_size``), mirroring the paper's
observation that the encode-decode forward passes dominate online
cost; :meth:`NeuralConceptLinker.link_batch` additionally amortises
those encodings across a batch of queries for the serving layer.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.candidates import CandidateGenerator
from repro.core.comaid import ComAid, ConceptEncoding
from repro.core.config import LinkerConfig
from repro.core.rewriter import QueryRewriter, Rewrite
from repro.embeddings.similarity import WordVectors
from repro.kb.knowledge_base import KnowledgeBase
from repro.obs import trace
from repro.ontology.ontology import Ontology
from repro.ontology.paths import structural_context
from repro.serving.cache import CacheStats, LRUCache
from repro.text.tokenize import tokenize
from repro.utils.errors import ConfigurationError
from repro.utils.faults import probe
from repro.utils.logging import get_logger
from repro.utils.timing import PhaseTimer, TimingBreakdown

logger = get_logger("core.linker")


@dataclass(frozen=True)
class RankedConcept:
    """One re-ranked candidate: cid, COM-AID log-prob, keyword score."""

    cid: str
    log_prob: float
    keyword_score: float

    @property
    def loss(self) -> float:
        """The paper's ``Loss = -log p(q|c;Θ)`` (Appendix A)."""
        return -self.log_prob


@dataclass
class LinkResult:
    """Outcome of linking one query.

    ``degraded=True`` marks a result whose ranking is Phase I keyword
    order only (the paper's Section 5 keyword matcher): Phase II either
    raised or overran its per-query budget, so COM-AID scores are
    absent and every ``log_prob`` is ``-inf``.  ``degraded_reason``
    says which (``"error: …"`` or ``"budget: …"``).
    """

    query: str
    tokens: Tuple[str, ...]
    rewritten_tokens: Tuple[str, ...]
    rewrites: Tuple[Rewrite, ...]
    ranked: Tuple[RankedConcept, ...]
    timing: TimingBreakdown = field(default_factory=TimingBreakdown)
    degraded: bool = False
    degraded_reason: Optional[str] = None

    @property
    def top(self) -> Optional[RankedConcept]:
        return self.ranked[0] if self.ranked else None

    def rank_of(self, cid: str) -> Optional[int]:
        """1-based rank of ``cid`` in the result, or None if absent."""
        for position, candidate in enumerate(self.ranked, start=1):
            if candidate.cid == cid:
                return position
        return None


@dataclass
class _PreparedQuery:
    """Phase-I output for one query, awaiting Phase-II scoring."""

    query: str
    tokens: Tuple[str, ...]
    rewritten: Tuple[str, ...]
    rewrites: Tuple[Rewrite, ...]
    keyword_hits: List[Tuple[str, float]]
    timer: PhaseTimer


class NeuralConceptLinker:
    """NCL online linking: Phase I retrieval + Phase II COM-AID re-ranking."""

    def __init__(
        self,
        model: ComAid,
        ontology: Ontology,
        config: Optional[LinkerConfig] = None,
        kb: Optional[KnowledgeBase] = None,
        word_vectors: Optional[WordVectors] = None,
        restrict_to: Optional[Sequence[str]] = None,
        priors: Optional[Dict[str, float]] = None,
        engine: Optional[object] = None,
    ) -> None:
        """Two-phase linker.

        ``priors`` enables the MAP variant the paper offers in Section
        5 (Eq. 11): a non-uniform prior ``p(c)`` over fine-grained
        concepts (e.g. historical coding frequencies).  Candidates are
        then ranked by ``log p(q|c) + log p(c)``; omitted, the prior is
        uniform and ranking reduces to MLE (Eq. 12).  Priors must be
        positive; they are normalised internally, and every supplied
        cid must exist in the ontology.

        ``engine`` injects a pre-built
        :class:`repro.engine.shards.ShardedConceptEngine`; without one,
        ``config.artifact_dir`` (if set) loads the compiled artifact —
        fingerprint-checked against ``model`` — and builds an engine
        with ``config.shards`` shards.  With an engine active, Phase I
        runs scatter-gather retrieval and Phase II scores from the
        precomputed encoding slab; rankings are identical to the
        runtime-encoding path.
        """
        self.model = model
        self.ontology = ontology
        self.config = config if config is not None else LinkerConfig()
        # Retained so swap_engine can rebuild the rewriter and scoring
        # vocabulary over the new model's frozen documents.
        self._kb = kb
        self._word_vectors = word_vectors
        self._restrict_to = restrict_to
        self._engine = engine
        if self._engine is None and self.config.artifact_dir is not None:
            if restrict_to is not None:
                raise ConfigurationError(
                    "restrict_to cannot be combined with artifact_dir: the "
                    "compiled artifact fixes the indexed concept set"
                )
            # Engine imports stay function-local: repro.engine.compile
            # imports the persistence layer, which imports this module.
            from repro.engine.compile import load_artifact
            from repro.engine.shards import ShardedConceptEngine

            artifact = load_artifact(
                self.config.artifact_dir,
                model=model,
                mmap=self.config.mmap_artifact,
            )
            if artifact.index_aliases != self.config.index_aliases:
                raise ConfigurationError(
                    f"artifact was compiled with index_aliases="
                    f"{artifact.index_aliases} but the linker is configured "
                    f"with index_aliases={self.config.index_aliases}; "
                    "recompile or align the config"
                )
            self._engine = ShardedConceptEngine(
                model,
                ontology,
                artifact,
                shards=self.config.resolve_shards(),
                retrieval=self.config.retrieval,
            )
        self._log_priors: Optional[Dict[str, float]] = None
        if priors is not None:
            if not priors:
                raise ConfigurationError("priors mapping is empty")
            total = 0.0
            for cid, mass in priors.items():
                ontology.get(cid)  # raises for unknown cids
                if mass <= 0:
                    raise ConfigurationError(
                        f"prior for {cid!r} must be positive, got {mass}"
                    )
                total += mass
            self._log_priors = {
                cid: math.log(mass / total) for cid, mass in priors.items()
            }
        if self._engine is not None:
            # The monolithic generator is rebuilt from the artifact's
            # *frozen* documents (not live ontology + KB state) so Ω
            # and any direct `candidates` use can never drift from what
            # the engine's shards serve.
            self.candidates = CandidateGenerator.from_documents(
                ontology, self._engine.artifact.documents
            )
        else:
            self.candidates = CandidateGenerator(
                ontology,
                kb=kb,
                index_aliases=self.config.index_aliases,
                restrict_to=restrict_to,
            )
        self.rewriter: Optional[QueryRewriter] = None
        if self.config.rewrite_queries:
            self.rewriter = QueryRewriter(
                self.candidates.omega,
                word_vectors=word_vectors,
                edit_distance_max=self.config.edit_distance_max,
                min_similarity=self.config.rewrite_min_similarity,
            )
        # Scoring vocabulary: Ω plus alias words — exactly the words the
        # decoder saw as training targets, i.e. the words whose decode
        # probabilities carry learned signal.
        self._omega = self.candidates.omega
        self._scoring_vocabulary = set(self._omega)
        if kb is not None:
            for _, alias in kb.labeled_snippets():
                self._scoring_vocabulary.update(tokenize(alias))
        capacity = self.config.encoding_cache_size or None
        self._encoding_cache: LRUCache[str, ConceptEncoding] = LRUCache(
            capacity, name="encodings"
        )
        self._ancestor_cache: LRUCache[str, List[ConceptEncoding]] = LRUCache(
            capacity, name="ancestors"
        )
        #: Provenance from the deployment manifest (seed, resume point,
        #: training losses …); populated by ``load_pipeline`` and
        #: surfaced by the serving layer's ``/metrics``.
        self.pipeline_metadata: Dict[str, Any] = {}

    # -- engine --------------------------------------------------------------

    @property
    def engine(self) -> Optional[object]:
        """The active sharded engine, or None (runtime-encoding path)."""
        return self._engine

    @property
    def model_fingerprint(self) -> str:
        """SHA-256 identity of the weights currently serving.

        From the compiled artifact when an engine is active (free),
        otherwise computed over the live parameters.
        """
        if self._engine is not None:
            value = self._engine.artifact.fingerprint.get("params_sha256")
            if value:
                return str(value)
        # Function-local: repro.engine.compile imports the persistence
        # layer, which imports this module.
        from repro.engine.compile import model_fingerprint

        return str(model_fingerprint(self.model)["params_sha256"])

    def swap_engine(
        self,
        model: ComAid,
        engine: Optional[object],
        artifact_dir: Optional[str] = None,
    ) -> Tuple[ComAid, Optional[object]]:
        """Blue/green flip: adopt new weights and their compiled engine.

        Replaces the model and engine pointers and rebuilds everything
        derived from them — Phase-I candidates (from the new artifact's
        frozen documents), the OOV rewriter, the scoring vocabulary —
        then *replaces* (not clears) the encoding caches: an in-flight
        ``get_or_create`` computed against the old model can only land
        in the orphaned cache object, so a stale encoding can never
        score under the new fingerprint.  Returns the previous
        ``(model, engine)`` so the caller can roll back by swapping
        them straight back in.

        The flip itself is plain attribute assignment; the serving
        layer guarantees atomicity by performing it under the same lock
        that serialises batch scoring (``LinkingService.exclusive``),
        so in-flight requests complete on the old engine and queued
        ones start on the new.
        """
        if engine is not None:
            # Never flip to an engine whose artifact was compiled from
            # other weights — the same stale-artifact guard load-time
            # enforcement gives, re-checked at the swap boundary.
            engine.artifact.check_model(model)
            if engine.artifact.index_aliases != self.config.index_aliases:
                raise ConfigurationError(
                    "candidate artifact was compiled with index_aliases="
                    f"{engine.artifact.index_aliases} but the linker is "
                    f"configured with {self.config.index_aliases}"
                )
        previous = (self.model, self._engine)
        self.model = model
        self._engine = engine
        if engine is not None:
            self.candidates = CandidateGenerator.from_documents(
                self.ontology, engine.artifact.documents
            )
        else:
            self.candidates = CandidateGenerator(
                self.ontology,
                kb=self._kb,
                index_aliases=self.config.index_aliases,
                restrict_to=self._restrict_to,
            )
        if self.config.rewrite_queries:
            self.rewriter = QueryRewriter(
                self.candidates.omega,
                word_vectors=self._word_vectors,
                edit_distance_max=self.config.edit_distance_max,
                min_similarity=self.config.rewrite_min_similarity,
            )
        self._omega = self.candidates.omega
        self._scoring_vocabulary = set(self._omega)
        if self._kb is not None:
            for _, alias in self._kb.labeled_snippets():
                self._scoring_vocabulary.update(tokenize(alias))
        capacity = self.config.encoding_cache_size or None
        self._encoding_cache = LRUCache(capacity, name="encodings")
        self._ancestor_cache = LRUCache(capacity, name="ancestors")
        if artifact_dir is not None:
            import dataclasses

            self.config = dataclasses.replace(
                self.config, artifact_dir=str(artifact_dir)
            )
        return previous

    # -- encoding cache -----------------------------------------------------

    def _concept_encoding(self, cid: str) -> ConceptEncoding:
        if self._engine is not None and cid in self._engine:
            return self._engine.encoding_of(cid)
        return self._encoding_cache.get_or_create(
            cid, lambda: self._encode(cid)
        )

    def _encode(self, cid: str) -> ConceptEncoding:
        concept = self.ontology.get(cid)
        ids = self.model.words_to_ids(list(concept.words))
        return self.model.encode_concept(ids, keep_caches=False)

    def _ancestor_encodings(self, cid: str) -> Union[List[ConceptEncoding], Any]:
        """Ancestor encodings, or a precompiled structure-memory matrix.

        With an engine active the return value is the artifact's
        ``(beta, dim)`` matrix (or ``[]`` without structure attention) —
        both scoring entry points accept either form.
        """
        if not self.model.config.use_structure_attention:
            return []
        if self._engine is not None and cid in self._engine:
            return self._engine.structure_memory_of(cid)
        return self._ancestor_cache.get_or_create(
            cid, lambda: self._encode_ancestors(cid)
        )

    def _encode_ancestors(self, cid: str) -> List[ConceptEncoding]:
        path = structural_context(self.ontology, cid, self.model.config.beta)
        ancestors = []
        for concept in path[1:]:
            ids = self.model.words_to_ids(list(concept.words))
            ancestors.append(self.model.encode_concept(ids, keep_caches=False))
        return ancestors

    def invalidate_cache(self) -> None:
        """Drop cached encodings (call after the model is retrained)."""
        self._encoding_cache.clear()
        self._ancestor_cache.clear()

    def cache_stats(self) -> Tuple[CacheStats, CacheStats]:
        """Snapshots of the encoding and ancestor cache counters."""
        return (self._encoding_cache.stats, self._ancestor_cache.stats)

    def warm_cache(self, cids: Optional[Sequence[str]] = None) -> int:
        """Pre-encode concepts (all indexed leaves by default)."""
        targets = cids if cids is not None else self.candidates.indexed_cids
        for cid in targets:
            self._concept_encoding(cid)
            self._ancestor_encodings(cid)
        return len(self._encoding_cache)

    # -- linking -----------------------------------------------------------------

    def link(self, query: str, k: Optional[int] = None) -> LinkResult:
        """Link ``query`` to its top fine-grained concepts."""
        prepared = self._phase_one(query, self._resolve_k(k))
        return self._phase_two(prepared)

    def link_batch(
        self,
        queries: Sequence[str],
        k: Union[None, int, Sequence[Optional[int]]] = None,
        trace_contexts: Optional[Sequence[object]] = None,
    ) -> List[LinkResult]:
        """Link several queries, amortising Phase-II concept encodings.

        Phase I (OR + CR) runs for every query first, then the union of
        candidate concepts is encoded once — a concept appearing in
        several queries' candidate sets pays its (dominant, per Figure
        11) encode cost a single time per batch, with the shared-encode
        seconds attributed to the first query that needs the concept.
        Rankings are identical to calling :meth:`link` per query in any
        order; batching changes the work schedule, not the scores.

        ``k`` may be a single value for the whole batch or one
        (possibly ``None``) entry per query.

        ``trace_contexts`` carries one (possibly ``None``) span per
        query: this method typically runs on the micro-batcher's worker
        thread, where the submitting request's trace context is not
        ambient, so the serving layer captures each request's span at
        submit time and the per-query work here re-enters it — nesting
        the linker's spans under the right request even though requests
        from several traces share one batch.
        """
        if isinstance(k, (list, tuple)):
            if len(k) != len(queries):
                raise ConfigurationError(
                    f"got {len(k)} k values for {len(queries)} queries"
                )
            top_ks = [self._resolve_k(value) for value in k]
        else:
            top_ks = [self._resolve_k(k)] * len(queries)
        if trace_contexts is not None and len(trace_contexts) != len(queries):
            raise ConfigurationError(
                f"got {len(trace_contexts)} trace contexts for "
                f"{len(queries)} queries"
            )
        contexts: Sequence[object] = (
            trace_contexts
            if trace_contexts is not None
            else [None] * len(queries)
        )
        prepared = []
        for query, top_k, context in zip(queries, top_ks, contexts):
            with trace.attach(context):
                prepared.append(self._phase_one(query, top_k))
        if (
            self.config.fuse_phase2
            and self.config.batch_phase2
            and len(prepared) > 1
        ):
            return self._phase_two_fused(prepared, contexts)
        results = []
        for item, context in zip(prepared, contexts):
            with trace.attach(context):
                results.append(self._phase_two(item))
        return results

    def _resolve_k(self, k: Optional[int]) -> int:
        top_k = k if k is not None else self.config.k
        if top_k < 1:
            raise ConfigurationError(f"k must be >= 1, got {top_k}")
        return top_k

    def _phase_one(self, query: str, top_k: int) -> "_PreparedQuery":
        """Phase I: tokenize, rewrite OOV words (OR), retrieve (CR)."""
        timer = PhaseTimer()
        tokens = tuple(tokenize(query))
        rewrites: Tuple[Rewrite, ...] = ()
        rewritten = tokens
        with timer.phase("OR"), trace.span(
            "linker.rewrite", phase="OR"
        ) as span:
            if self.rewriter is not None and tokens:
                rewritten_list, applied = self.rewriter.rewrite(tokens)
                rewritten = tuple(rewritten_list)
                rewrites = tuple(applied)
                if applied:
                    span.set_tag("rewrites", len(applied))
        with timer.phase("CR"), trace.span(
            "linker.retrieve", phase="CR", k=top_k
        ) as span:
            if not rewritten:
                keyword_hits = []
            elif self._engine is not None:
                keyword_hits = self._engine.retrieve(rewritten, top_k)
                span.set_tag("shards", self._engine.shards)
            else:
                keyword_hits = self.candidates.generate(rewritten, k=top_k)
            span.set_tag("candidates", len(keyword_hits))
        return _PreparedQuery(
            query=query,
            tokens=tokens,
            rewritten=rewritten,
            rewrites=rewrites,
            keyword_hits=keyword_hits,
            timer=timer,
        )

    def _phase_two(self, prepared: "_PreparedQuery") -> LinkResult:
        """Phase II: COM-AID scoring (ED) and ranking (RT).

        ``batch_phase2`` selects between the lock-step batched decode
        (:meth:`ComAid.score_batch`, the default hot path) and the
        per-candidate sequential reference; both produce identical
        rankings, scores, and tie order (the equivalence suite's
        guarantee), so the choice is purely about latency.

        Phase II is guarded either way: when scoring raises (and
        ``degrade_on_error`` is set) or overruns ``phase2_budget_s``,
        the query degrades to the Phase I keyword ranking instead of
        failing — Phase I is already computed at this point and a
        keyword-ranked answer beats an error for an interactive
        clinical user.
        """
        timer = prepared.timer
        config = self.config
        scored: List[RankedConcept] = []
        degraded_reason: Optional[str] = None
        with timer.phase("ED"), trace.span(
            "linker.phase2",
            phase="ED",
            candidates=len(prepared.keyword_hits),
            mode="batched" if config.batch_phase2 else "sequential",
        ) as ed_span:
            budget = config.phase2_budget_s
            deadline = (time.monotonic() + budget) if budget > 0 else None
            try:
                if config.batch_phase2:
                    scored, degraded_reason = self._phase_two_batched(
                        prepared, deadline, budget
                    )
                else:
                    scored, degraded_reason = self._phase_two_sequential(
                        prepared, deadline, budget
                    )
            except Exception as error:  # noqa: BLE001 - degraded-mode guard
                if not config.degrade_on_error:
                    raise
                degraded_reason = f"error: {type(error).__name__}: {error}"
                logger.warning(
                    "phase2 failed for %r; serving keyword ranking: %s",
                    prepared.query,
                    error,
                )
            if degraded_reason is not None:
                ed_span.set_tag("degraded_reason", degraded_reason)
        if degraded_reason is not None:
            return self._degraded_result(prepared, degraded_reason)
        return self._ranked_result(prepared, scored)

    def _ranked_result(
        self, prepared: "_PreparedQuery", scored: List[RankedConcept]
    ) -> LinkResult:
        """Phase RT: sort scored candidates (MAP-aware) into a result."""
        timer = prepared.timer
        with timer.phase("RT"), trace.span(
            "linker.rerank", phase="RT", results=len(scored)
        ):
            if self._log_priors is not None:
                log_priors = self._log_priors
                floor = min(log_priors.values())
                scored.sort(
                    key=lambda item: (
                        -(item.log_prob + log_priors.get(item.cid, floor)),
                        -item.keyword_score,
                    )
                )
            else:
                scored.sort(
                    key=lambda item: (-item.log_prob, -item.keyword_score)
                )
        return LinkResult(
            query=prepared.query,
            tokens=prepared.tokens,
            rewritten_tokens=prepared.rewritten,
            rewrites=prepared.rewrites,
            ranked=tuple(scored),
            timing=timer.breakdown,
        )

    def _phase_two_sequential(
        self,
        prepared: "_PreparedQuery",
        deadline: Optional[float],
        budget: float,
    ) -> Tuple[List[RankedConcept], Optional[str]]:
        """Per-candidate reference path (also the equivalence oracle)."""
        scored: List[RankedConcept] = []
        with trace.span(
            "linker.phase2.decode", phase="ED", mode="sequential"
        ):
            for cid, keyword_score in prepared.keyword_hits:
                probe("linker.phase2")
                if deadline is not None and time.monotonic() > deadline:
                    return scored, (
                        f"budget: phase2 exceeded {budget:.3f}s after "
                        f"{len(scored)}/{len(prepared.keyword_hits)} candidates"
                    )
                log_prob = self._score_candidate(cid, prepared.rewritten)
                scored.append(
                    RankedConcept(
                        cid=cid, log_prob=log_prob, keyword_score=keyword_score
                    )
                )
        return scored, None

    def _phase_two_batched(
        self,
        prepared: "_PreparedQuery",
        deadline: Optional[float],
        budget: float,
    ) -> Tuple[List[RankedConcept], Optional[str]]:
        """Lock-step ED: one batched decode across all candidates.

        The per-candidate ``linker.phase2`` probe and deadline check
        survive in the assembly loop (identical fault-injection and
        budget semantics to the sequential path); the batched decode
        itself sits behind the dedicated ``linker.phase2.batch`` site.
        The decode is all-or-nothing, so a budget overrun inside it is
        detected after the fact and degrades the query exactly like a
        sequential mid-flight overrun.
        """
        hits = prepared.keyword_hits
        log_probs: List[Optional[float]] = [None] * len(hits)
        pending: List[int] = []
        pending_ids: List[List[int]] = []
        for index, (cid, _) in enumerate(hits):
            probe("linker.phase2")
            if deadline is not None and time.monotonic() > deadline:
                return [], (
                    f"budget: phase2 exceeded {budget:.3f}s after "
                    f"{index}/{len(hits)} candidates"
                )
            effective = self._effective_tokens(cid, prepared.rewritten)
            if effective is None:
                log_probs[index] = 0.0
            else:
                pending.append(index)
                pending_ids.append(self.model.words_to_ids(effective))
        if pending:
            probe("linker.phase2.batch")
            with trace.span(
                "linker.phase2.decode", phase="ED", batch=len(pending)
            ) as span:
                if self._engine is not None:
                    # Engine path: candidates came from the engine's own
                    # index, so every cid has a precompiled encoding;
                    # scoring is grouped by shard on the worker pool.
                    span.set_tag("precompiled", True)
                    scores = self._engine.score_batch(
                        pending_ids, [hits[index][0] for index in pending]
                    )
                else:
                    if span.is_recording:
                        cached = sum(
                            1
                            for index in pending
                            if hits[index][0] in self._encoding_cache
                        )
                        span.set_tag("encodings_cached", cached)
                        span.set_tag("encodings_missing", len(pending) - cached)
                    batch = [
                        (
                            self._concept_encoding(hits[index][0]),
                            self._ancestor_encodings(hits[index][0]),
                        )
                        for index in pending
                    ]
                    scores = self.model.score_batch(pending_ids, batch)
            for index, score in zip(pending, scores):
                log_probs[index] = float(score)
            if deadline is not None and time.monotonic() > deadline:
                return [], (
                    f"budget: phase2 exceeded {budget:.3f}s scoring "
                    f"{len(pending)} candidates in one batch"
                )
        scored = [
            RankedConcept(
                cid=cid, log_prob=log_probs[index], keyword_score=keyword_score
            )
            for index, (cid, keyword_score) in enumerate(hits)
        ]
        return scored, None

    def _phase_two_fused(
        self,
        prepared_list: List["_PreparedQuery"],
        contexts: Sequence[object],
    ) -> List[LinkResult]:
        """Cross-query ED fusion: one lock-step decode for a whole batch.

        Every query's surviving candidates are concatenated into a
        single ``score_batch`` call — one GEMM per decoder timestep over
        the union of in-flight candidates instead of one per query.
        ``score_batch`` rows are batch-composition independent (the
        ``batch_phase2`` invariant), so each query's scores are
        identical (≤1e-9, observed 0) to the per-query path; assembly
        probes, per-query budget deadlines, and the degraded-mode guard
        run per query exactly as in :meth:`_phase_two_batched`.  The
        shared decode's wall time is attributed to the first fused
        query's ED phase — splitting it would fabricate per-query
        latencies for work that was done once.
        """
        config = self.config
        budget = config.phase2_budget_s
        deadlines: List[Optional[float]] = [None] * len(prepared_list)
        degraded: List[Optional[str]] = [None] * len(prepared_list)
        log_probs: List[List[Optional[float]]] = []
        pending_ids: List[List[int]] = []
        pending_owner: List[Tuple[int, int]] = []
        for qi, prepared in enumerate(prepared_list):
            hits = prepared.keyword_hits
            log_probs.append([None] * len(hits))
            start = len(pending_owner)
            with trace.attach(contexts[qi]):
                deadline = (time.monotonic() + budget) if budget > 0 else None
                deadlines[qi] = deadline
                with prepared.timer.phase("ED"), trace.span(
                    "linker.phase2",
                    phase="ED",
                    candidates=len(hits),
                    mode="fused",
                ) as ed_span:
                    try:
                        for index, (cid, _) in enumerate(hits):
                            probe("linker.phase2")
                            if (
                                deadline is not None
                                and time.monotonic() > deadline
                            ):
                                degraded[qi] = (
                                    f"budget: phase2 exceeded {budget:.3f}s "
                                    f"after {index}/{len(hits)} candidates"
                                )
                                break
                            effective = self._effective_tokens(
                                cid, prepared.rewritten
                            )
                            if effective is None:
                                log_probs[qi][index] = 0.0
                            else:
                                pending_owner.append((qi, index))
                                pending_ids.append(
                                    self.model.words_to_ids(effective)
                                )
                    except Exception as error:  # noqa: BLE001 - degraded-mode guard
                        if not config.degrade_on_error:
                            raise
                        degraded[qi] = (
                            f"error: {type(error).__name__}: {error}"
                        )
                        logger.warning(
                            "phase2 failed for %r; serving keyword "
                            "ranking: %s",
                            prepared.query,
                            error,
                        )
                    if degraded[qi] is not None:
                        # A degraded query serves its keyword ranking;
                        # its queued candidates must not ride along in
                        # the fused decode.
                        del pending_owner[start:]
                        del pending_ids[start:]
                        ed_span.set_tag("degraded_reason", degraded[qi])
        if pending_ids:
            first_qi = pending_owner[0][0]
            cids = [
                prepared_list[qi].keyword_hits[index][0]
                for qi, index in pending_owner
            ]
            try:
                with trace.attach(contexts[first_qi]):
                    probe("linker.phase2.batch")
                    with prepared_list[first_qi].timer.phase(
                        "ED"
                    ), trace.span(
                        "linker.phase2.decode",
                        phase="ED",
                        batch=len(pending_ids),
                        fused_queries=len({qi for qi, _ in pending_owner}),
                    ) as span:
                        if self._engine is not None:
                            span.set_tag("precompiled", True)
                            scores = self._engine.score_batch(
                                pending_ids, cids
                            )
                        else:
                            batch = [
                                (
                                    self._concept_encoding(cid),
                                    self._ancestor_encodings(cid),
                                )
                                for cid in cids
                            ]
                            scores = self.model.score_batch(
                                pending_ids, batch
                            )
            except Exception as error:  # noqa: BLE001 - degraded-mode guard
                if not config.degrade_on_error:
                    raise
                reason = f"error: {type(error).__name__}: {error}"
                logger.warning(
                    "fused phase2 decode failed; serving keyword "
                    "rankings: %s",
                    error,
                )
                for qi in {owner for owner, _ in pending_owner}:
                    if degraded[qi] is None:
                        degraded[qi] = reason
            else:
                for (qi, index), score in zip(pending_owner, scores):
                    log_probs[qi][index] = float(score)
        results: List[LinkResult] = []
        for qi, prepared in enumerate(prepared_list):
            with trace.attach(contexts[qi]):
                if (
                    degraded[qi] is None
                    and deadlines[qi] is not None
                    and time.monotonic() > deadlines[qi]
                ):
                    degraded[qi] = (
                        f"budget: phase2 exceeded {budget:.3f}s scoring "
                        "the fused batch"
                    )
                if degraded[qi] is not None:
                    results.append(
                        self._degraded_result(prepared, degraded[qi])
                    )
                    continue
                scored = [
                    RankedConcept(
                        cid=cid,
                        log_prob=log_probs[qi][index],
                        keyword_score=keyword_score,
                    )
                    for index, (cid, keyword_score) in enumerate(
                        prepared.keyword_hits
                    )
                ]
                results.append(self._ranked_result(prepared, scored))
        return results

    def _degraded_result(
        self, prepared: "_PreparedQuery", reason: str
    ) -> LinkResult:
        """Phase I fallback: keyword ranking only, tagged ``degraded``."""
        with prepared.timer.phase("RT"), trace.span(
            "linker.rerank", phase="RT", degraded=True
        ):
            ranked = tuple(
                RankedConcept(
                    cid=cid, log_prob=-math.inf, keyword_score=keyword_score
                )
                for cid, keyword_score in sorted(
                    prepared.keyword_hits,
                    key=lambda hit: (-hit[1], hit[0]),
                )
            )
        return LinkResult(
            query=prepared.query,
            tokens=prepared.tokens,
            rewritten_tokens=prepared.rewritten,
            rewrites=prepared.rewrites,
            ranked=ranked,
            timing=prepared.timer.breakdown,
            degraded=True,
            degraded_reason=reason,
        )

    def _score_candidate(self, cid: str, query_tokens: Sequence[str]) -> float:
        """``log p(q|c)`` for one candidate.

        Per Section 5 Phase II, words appearing in both the canonical
        description and the query are temporarily removed before the
        probability is computed — shared words are trivially decodable,
        so scoring concentrates on the discrepant words.  (Removed words
        contribute log-probability 0, i.e. probability 1.)  A query
        fully covered by the description scores 0, the maximum.

        With ``score_omega_only`` (default), words outside the scoring
        vocabulary (Ω plus knowledge-base alias words — the decoder's
        training targets) are excluded: after rewriting, a surviving
        word outside that set is one with no semantic counterpart among
        the concepts (a clinical decoration), and its decode probability
        is untrained noise that differs arbitrarily across candidates.
        Numeric tokens are always kept — stage/type numbers are
        load-bearing.

        This is the sequential reference: the batched path applies the
        same :meth:`_effective_tokens` filter and must agree with this
        method to ≤1e-9 per candidate (the equivalence suite's oracle).
        """
        effective = self._effective_tokens(cid, query_tokens)
        if effective is None:
            return 0.0
        query_ids = self.model.words_to_ids(effective)
        encoding = self._concept_encoding(cid)
        ancestors = self._ancestor_encodings(cid)
        return self.model.score_with_encodings(encoding, ancestors, query_ids)

    def _effective_tokens(
        self, cid: str, query_tokens: Sequence[str]
    ) -> Optional[List[str]]:
        """The query words Phase II actually decodes against ``cid``.

        Applies the Ω/numeric filter (``score_omega_only``) then
        shared-word removal (``remove_shared_words``); returns ``None``
        when every surviving word appears in the canonical description —
        the trivially decodable case both scoring paths short-circuit to
        log-probability 0 without running the model.
        """
        concept = self.ontology.get(cid)
        effective = list(query_tokens)
        if self.config.score_omega_only:
            vocabulary = self._scoring_vocabulary
            effective = [
                token
                for token in effective
                if token in vocabulary or any(char.isdigit() for char in token)
            ]
            if not effective:
                effective = list(query_tokens)
        if self.config.remove_shared_words:
            description_words = set(concept.words)
            effective = [
                token for token in effective if token not in description_words
            ]
            if not effective:
                return None
        return effective
