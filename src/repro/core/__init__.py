"""The paper's primary contribution: COM-AID and the NCL pipeline.

* :class:`ComAid` — the COMposite AttentIonal encode-Decode network
  (paper Section 4): concept encoder, text-structure duet decoder, and
  the ablation switches for COM-AID⁻c / COM-AID⁻w / COM-AID⁻wc.
* :class:`ComAidTrainer` — MLE training on ⟨canonical, alias⟩ pairs
  (Section 4.2) with optional CBOW pre-training hand-off.
* :class:`NeuralConceptLinker` — the two-phase online linker
  (Section 5): TF-IDF candidate generation with query rewriting, then
  COM-AID re-ranking.
* :class:`FeedbackController` — uncertainty pooling and incremental
  retraining (Appendix A).
"""

from repro.core.checkpoint import (
    CheckpointState,
    latest_checkpoint,
    load_checkpoint,
    prune_checkpoints,
    save_checkpoint,
    verify_checkpoint,
)
from repro.core.comaid import ComAid
from repro.core.config import ComAidConfig, LinkerConfig, TrainingConfig, PAPER_DEFAULTS
from repro.core.candidates import CandidateGenerator
from repro.core.feedback import FeedbackController, FeedbackItem
from repro.core.linker import LinkResult, NeuralConceptLinker
from repro.core.persistence import (
    load_pipeline,
    save_pipeline,
    verify_pipeline,
)
from repro.core.rewriter import QueryRewriter
from repro.core.timon import parse_review_csv, render_review_page
from repro.core.trainer import ComAidTrainer

__all__ = [
    "CandidateGenerator",
    "CheckpointState",
    "ComAid",
    "ComAidConfig",
    "ComAidTrainer",
    "FeedbackController",
    "FeedbackItem",
    "latest_checkpoint",
    "LinkResult",
    "LinkerConfig",
    "load_checkpoint",
    "load_pipeline",
    "prune_checkpoints",
    "save_checkpoint",
    "save_pipeline",
    "verify_checkpoint",
    "verify_pipeline",
    "PAPER_DEFAULTS",
    "QueryRewriter",
    "parse_review_csv",
    "render_review_page",
    "TrainingConfig",
]
