"""Query rewriting for out-of-vocabulary words (paper Section 5, Eq. 13).

For each query word ``w`` not in the ontology vocabulary Ω:

1. if ``w`` has a pre-trained embedding (it is in Ω′, which includes
   unlabeled-corpus words like ``dm``), replace it with the
   cosine-nearest word *in Ω* (Eq. 13);
2. otherwise (``w ∉ Ω′`` — typically a typo like ``neuropaty``), first
   map ``w`` to its textually closest word in Ω′ by edit distance, then
   apply step 1;
3. purely numeric tokens (``5`` in ``ckd 5``) are never rewritten —
   they carry stage/type information verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.embeddings.similarity import WordVectors
from repro.text.edit_distance import levenshtein
from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class Rewrite:
    """One applied substitution (for diagnostics and tests)."""

    original: str
    replacement: str
    via: str  # "embedding" | "edit+embedding" | "kept"


class QueryRewriter:
    """Rewrite OOV query words into the ontology vocabulary."""

    def __init__(
        self,
        omega: Set[str],
        word_vectors: Optional[WordVectors] = None,
        edit_distance_max: int = 2,
        min_similarity: float = 0.6,
        min_edit_word_length: int = 4,
    ) -> None:
        if not omega:
            raise ConfigurationError("omega (ontology vocabulary) is empty")
        if edit_distance_max < 0:
            raise ConfigurationError(
                f"edit_distance_max must be >= 0, got {edit_distance_max}"
            )
        if not -1.0 <= min_similarity <= 1.0:
            raise ConfigurationError(
                f"min_similarity must be a cosine in [-1, 1], got {min_similarity}"
            )
        if min_edit_word_length < 1:
            raise ConfigurationError(
                f"min_edit_word_length must be >= 1, got {min_edit_word_length}"
            )
        self._omega = set(omega)
        self._vectors = word_vectors
        self._edit_max = edit_distance_max
        self._min_similarity = min_similarity
        self._min_edit_word_length = min_edit_word_length
        # Candidate pool for the edit-distance fallback: Ω′ when vectors
        # exist (so a typo can first repair to an Ω′ word), else Ω.
        if word_vectors is not None:
            self._edit_pool = [
                word
                for word in word_vectors.words
                if word not in word_vectors.tag_words
            ]
        else:
            self._edit_pool = sorted(self._omega)

    @property
    def omega(self) -> Set[str]:
        return set(self._omega)

    def rewrite(self, tokens: Sequence[str]) -> Tuple[List[str], List[Rewrite]]:
        """Rewrite a tokenised query; returns (new_tokens, rewrites)."""
        rewritten: List[str] = []
        applied: List[Rewrite] = []
        for token in tokens:
            replacement, via = self._rewrite_word(token)
            rewritten.append(replacement)
            if via != "kept":
                applied.append(
                    Rewrite(original=token, replacement=replacement, via=via)
                )
        return rewritten, applied

    def _rewrite_word(self, word: str) -> Tuple[str, str]:
        if word in self._omega or self._is_numeric(word):
            return word, "kept"
        if self._vectors is not None and word in self._vectors:
            nearest = self._nearest_in_omega(word)
            if nearest is not None:
                return nearest, "embedding"
            return word, "kept"
        repaired = self._edit_repair(word)
        if repaired is None:
            return word, "kept"
        if repaired in self._omega:
            return repaired, "edit+embedding"
        if self._vectors is not None and repaired in self._vectors:
            nearest = self._nearest_in_omega(repaired)
            if nearest is not None:
                return nearest, "edit+embedding"
        return word, "kept"

    def _nearest_in_omega(self, word: str) -> Optional[str]:
        """Embedding-nearest Ω word, gated by ``min_similarity``.

        Low-information decorations ("for investigation", "on follow
        up") have no semantic counterpart in Ω; their nearest cosine is
        low and substituting them would inject noise into both
        retrieval and scoring, so they are kept as-is.
        """
        assert self._vectors is not None
        matches = self._vectors.nearest(word, k=1, restrict_to=self._omega)
        if not matches:
            return None
        candidate, similarity = matches[0]
        if similarity < self._min_similarity:
            return None
        return candidate

    def _edit_repair(self, word: str) -> Optional[str]:
        """Closest Ω′ word within the edit-distance budget (ties: shortest,
        then lexicographic, for determinism).

        Very short words are never repaired: a one- or two-character
        token is within edit distance of half the vocabulary, so
        "repairing" it is pure noise ("c" must not become "5").
        """
        if self._edit_max == 0 or len(word) < self._min_edit_word_length:
            return None
        best: Optional[str] = None
        best_key: Optional[Tuple[int, int, str]] = None
        for candidate in self._edit_pool:
            distance = levenshtein(word, candidate, max_distance=self._edit_max)
            if distance > self._edit_max:
                continue
            key = (distance, len(candidate), candidate)
            if best_key is None or key < best_key:
                best, best_key = candidate, key
        return best

    @staticmethod
    def _is_numeric(token: str) -> bool:
        stripped = token.rstrip("%")
        return bool(stripped) and all(
            char.isdigit() or char == "." for char in stripped
        )
