"""Whole-pipeline persistence: save/load a trained NCL deployment.

A deployable NCL instance is more than the COM-AID weights: it needs
the model configuration, the shared vocabulary, the pre-trained word
vectors (query rewriting), the ontology, and the knowledge-base aliases
(Phase-I index + scoring vocabulary).  These helpers lay all of it out
in one directory:

.. code-block:: text

    <dir>/
      config.json        ComAidConfig fields
      vocab.json         Vocabulary snapshot
      model.npz          COM-AID parameters
      vectors.npz        word-vector matrix + words + tag words (optional)
      ontology.json      concept tree
      kb.json            aliases per concept

``save_pipeline`` / ``load_pipeline`` round-trip exactly; the loaded
linker reproduces the original's rankings bit-for-bit (tested).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.comaid import ComAid
from repro.core.config import ComAidConfig, LinkerConfig
from repro.core.linker import NeuralConceptLinker
from repro.embeddings.similarity import WordVectors
from repro.kb.knowledge_base import KnowledgeBase
from repro.nn.serialization import load_module, save_module
from repro.ontology.loaders import load_ontology_json, save_ontology_json
from repro.ontology.ontology import Ontology
from repro.text.vocab import Vocabulary
from repro.utils.errors import DataError

PathLike = Union[str, Path]


def save_pipeline(
    directory: PathLike,
    model: ComAid,
    ontology: Ontology,
    kb: Optional[KnowledgeBase] = None,
    word_vectors: Optional[WordVectors] = None,
) -> Path:
    """Write a complete NCL deployment to ``directory`` (created)."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    (target / "config.json").write_text(
        json.dumps(dataclasses.asdict(model.config), indent=2), encoding="utf-8"
    )
    (target / "vocab.json").write_text(
        json.dumps(model.vocab.to_dict()), encoding="utf-8"
    )
    save_module(model, target / "model.npz")
    save_ontology_json(ontology, target / "ontology.json")
    if kb is not None:
        kb.save_json(target / "kb.json")
    if word_vectors is not None:
        np.savez_compressed(
            target / "vectors.npz",
            matrix=word_vectors.vectors_for(list(word_vectors.words)),
            words=np.array(word_vectors.words, dtype=object),
            tags=np.array(sorted(word_vectors.tag_words), dtype=object),
        )
    return target


def load_pipeline(
    directory: PathLike,
    linker_config: Optional[LinkerConfig] = None,
) -> Tuple[ComAid, Ontology, Optional[KnowledgeBase], Optional[WordVectors], NeuralConceptLinker]:
    """Load a deployment saved by :func:`save_pipeline`.

    Returns ``(model, ontology, kb, word_vectors, linker)``; ``kb`` and
    ``word_vectors`` are ``None`` when absent from the directory.
    """
    source = Path(directory)
    config_path = source / "config.json"
    if not config_path.exists():
        raise DataError(f"{source} does not look like a saved pipeline")
    config = ComAidConfig(**json.loads(config_path.read_text(encoding="utf-8")))
    vocab = Vocabulary.from_dict(
        json.loads((source / "vocab.json").read_text(encoding="utf-8"))
    )
    model = ComAid(config, vocab, rng=0)
    load_module(model, source / "model.npz")
    ontology = load_ontology_json(source / "ontology.json")
    kb: Optional[KnowledgeBase] = None
    if (source / "kb.json").exists():
        kb = KnowledgeBase.load_json(ontology, source / "kb.json")
    vectors: Optional[WordVectors] = None
    if (source / "vectors.npz").exists():
        with np.load(source / "vectors.npz", allow_pickle=True) as archive:
            vectors = WordVectors(
                words=[str(word) for word in archive["words"]],
                matrix=archive["matrix"],
                tag_words=[str(tag) for tag in archive["tags"]],
            )
    linker = NeuralConceptLinker(
        model,
        ontology,
        linker_config if linker_config is not None else LinkerConfig(),
        kb=kb,
        word_vectors=vectors,
    )
    return model, ontology, kb, vectors, linker
