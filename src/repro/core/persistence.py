"""Whole-pipeline persistence: crash-safe save/load of an NCL deployment.

A deployable NCL instance is more than the COM-AID weights: it needs
the model configuration, the shared vocabulary, the pre-trained word
vectors (query rewriting), the ontology, and the knowledge-base aliases
(Phase-I index + scoring vocabulary).  These helpers lay all of it out
in one directory:

.. code-block:: text

    <dir>/
      config.json        ComAidConfig fields
      vocab.json         Vocabulary snapshot
      model.npz          COM-AID parameters
      vectors.npz        word-vector matrix + words + tag words (optional)
      ontology.json      concept tree
      kb.json            aliases per concept
      manifest.json      format version + per-file sha256/byte sizes

``save_pipeline`` / ``load_pipeline`` round-trip exactly; the loaded
linker reproduces the original's rankings bit-for-bit (tested).

Crash safety: every file is written (and fsynced) into a hidden
``<dir>.staging-<pid>`` directory first, then the staging directory is
renamed into place.  A process killed anywhere during the writes leaves
an existing deployment at ``<dir>`` completely untouched; the torn
staging directory is swept by the next save.  ``manifest.json`` records
the SHA-256 of every artifact, so :func:`verify_pipeline` (and the
``repro verify-pipeline`` command) can prove a directory is complete
and uncorrupted before it is put behind traffic.  ``load_pipeline``
converts every underlying failure — missing file, truncated ``.npz``,
malformed JSON — into one :class:`~repro.utils.errors.DataError` that
names the offending artifact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import zipfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.comaid import ComAid
from repro.core.config import ComAidConfig, LinkerConfig
from repro.core.linker import NeuralConceptLinker
from repro.embeddings.similarity import WordVectors
from repro.kb.knowledge_base import KnowledgeBase
from repro.nn.serialization import load_module, save_module
from repro.ontology.loaders import load_ontology_json, save_ontology_json
from repro.ontology.ontology import Ontology
from repro.text.vocab import Vocabulary
from repro.utils.errors import DataError, ReproError
from repro.utils.faults import probe

PathLike = Union[str, Path]

PIPELINE_FORMAT = 1
MANIFEST_FILE = "manifest.json"
_STAGING_MARKER = ".staging-"

#: Artifacts a complete pipeline must contain.
REQUIRED_FILES = ("config.json", "vocab.json", "model.npz", "ontology.json")
#: Artifacts that may be absent (no KB / no pre-trained vectors).
OPTIONAL_FILES = ("kb.json", "vectors.npz")


def _sha256_of(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _fsync_dir_files(directory: Path) -> None:
    for entry in directory.iterdir():
        if entry.is_file():
            fd = os.open(entry, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)


def _sweep_stale_staging(target: Path) -> None:
    """Remove staging/backup leftovers from a previously killed save."""
    for entry in target.parent.glob(f"{target.name}{_STAGING_MARKER}*"):
        if entry.is_dir():
            shutil.rmtree(entry, ignore_errors=True)


@contextmanager
def atomic_directory(directory: PathLike) -> Iterator[Path]:
    """Stage writes to a sibling temp dir; commit atomically on success.

    The generic crash-safety core shared by :func:`save_pipeline` and
    the compiled-artifact writer (:mod:`repro.engine.compile`).  The
    body receives a staging directory to fill; on normal exit every
    staged file is fsynced and the staging directory is renamed over
    ``directory`` (parking any existing deployment first, so a crash in
    the one non-atomic instant still leaves the old bytes on disk under
    the backup name).  On exception the staging directory is removed
    and ``directory`` is untouched.
    """
    target = Path(directory)
    target.parent.mkdir(parents=True, exist_ok=True)
    _sweep_stale_staging(target)
    staging = target.parent / f"{target.name}{_STAGING_MARKER}{os.getpid()}"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    try:
        yield staging
        _fsync_dir_files(staging)
        probe("persistence.commit")
        if target.exists():
            # The one non-atomic instant: park the old deployment, move
            # the new one in, then drop the parked copy.  A crash inside
            # this window leaves the old deployment intact under the
            # backup name; the next save sweeps it.
            backup = target.parent / f"{target.name}{_STAGING_MARKER}old-{os.getpid()}"
            os.replace(target, backup)
            os.replace(staging, target)
            shutil.rmtree(backup, ignore_errors=True)
        else:
            os.replace(staging, target)
    except BaseException:
        # Failed saves must not leave a half-written staging directory
        # masquerading as progress — but never touch ``target`` itself.
        shutil.rmtree(staging, ignore_errors=True)
        raise


def write_manifest(
    staging: PathLike,
    format_version: int,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Checksum every staged file into ``manifest.json``.

    Returns the manifest written: format version, caller metadata, and
    per-file SHA-256 / byte sizes for everything already staged.
    """
    staging_dir = Path(staging)
    manifest: Dict[str, Any] = {
        "format": format_version,
        "metadata": metadata or {},
        "files": {
            entry.name: {
                "sha256": _sha256_of(entry),
                "bytes": entry.stat().st_size,
            }
            for entry in sorted(staging_dir.iterdir())
            if entry.is_file()
        },
    }
    probe("persistence.write.manifest.json")
    (staging_dir / MANIFEST_FILE).write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    return manifest


def verify_manifest_dir(
    directory: PathLike,
    required_files: Sequence[str],
    kind: str = "pipeline",
) -> Dict[str, Any]:
    """Prove a manifest-carrying directory is complete and uncorrupted.

    Checks the manifest exists, every file in ``required_files`` is
    listed, and every manifest-listed file matches its recorded byte
    size and SHA-256.  Returns the parsed manifest on success; raises
    :class:`DataError` naming the first offending file otherwise.
    ``kind`` labels the error messages ("pipeline", "artifact", …).
    """
    source = Path(directory)
    if not source.is_dir():
        raise DataError(f"{source} is not a {kind} directory")
    manifest_path = source / MANIFEST_FILE
    if not manifest_path.exists():
        raise DataError(
            f"{source} has no {MANIFEST_FILE}; re-save the {kind} to "
            "adopt the checksummed format"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DataError(
            f"{kind} manifest {manifest_path} is not valid JSON: {exc}"
        ) from exc
    files = manifest.get("files")
    if not isinstance(files, dict):
        raise DataError(f"{kind} manifest {manifest_path} lists no files")
    for name in required_files:
        if name not in files:
            raise DataError(
                f"{kind} manifest {manifest_path} is missing required "
                f"artifact {name}"
            )
    for name, expected in files.items():
        artifact = source / name
        if not artifact.exists():
            raise DataError(f"{kind} {source} is missing {name}")
        size = artifact.stat().st_size
        if size != expected.get("bytes"):
            raise DataError(
                f"{kind} file {artifact} is truncated: {size} bytes, "
                f"manifest says {expected.get('bytes')}"
            )
        digest = _sha256_of(artifact)
        if digest != expected.get("sha256"):
            raise DataError(
                f"{kind} file {artifact} is corrupt (sha256 "
                f"{digest[:12]}… != manifest {str(expected.get('sha256'))[:12]}…)"
            )
    return manifest


def save_pipeline(
    directory: PathLike,
    model: ComAid,
    ontology: Ontology,
    kb: Optional[KnowledgeBase] = None,
    word_vectors: Optional[WordVectors] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a complete NCL deployment to ``directory``, crash-safely.

    All artifacts are staged into a sibling temp directory and renamed
    into place only once every byte (and the checksum manifest) is on
    disk, so a crash mid-save never corrupts an existing deployment at
    ``directory``.  ``metadata`` (e.g. training/checkpoint provenance)
    is embedded verbatim in ``manifest.json`` and surfaced by the
    serving layer's ``/metrics``.
    """
    target = Path(directory)
    with atomic_directory(target) as staging:
        probe("persistence.write.config.json")
        (staging / "config.json").write_text(
            json.dumps(dataclasses.asdict(model.config), indent=2),
            encoding="utf-8",
        )
        probe("persistence.write.vocab.json")
        (staging / "vocab.json").write_text(
            json.dumps(model.vocab.to_dict()), encoding="utf-8"
        )
        probe("persistence.write.model.npz")
        save_module(model, staging / "model.npz")
        probe("persistence.write.ontology.json")
        save_ontology_json(ontology, staging / "ontology.json")
        if kb is not None:
            probe("persistence.write.kb.json")
            kb.save_json(staging / "kb.json")
        if word_vectors is not None:
            probe("persistence.write.vectors.npz")
            np.savez_compressed(
                staging / "vectors.npz",
                matrix=word_vectors.vectors_for(list(word_vectors.words)),
                words=np.array(word_vectors.words, dtype=object),
                tags=np.array(sorted(word_vectors.tag_words), dtype=object),
            )
        write_manifest(staging, PIPELINE_FORMAT, metadata)
    return target


def verify_pipeline(directory: PathLike) -> Dict[str, Any]:
    """Prove a pipeline directory is complete and uncorrupted.

    Checks the manifest exists, every required artifact is present,
    and every manifest-listed file matches its recorded byte size and
    SHA-256.  Returns the parsed manifest on success; raises
    :class:`DataError` naming the first offending file otherwise.
    Pipelines saved before manifests existed fail verification —
    re-save them to adopt the format.
    """
    return verify_manifest_dir(directory, REQUIRED_FILES, kind="pipeline")


def load_manifest(directory: PathLike) -> Optional[Dict[str, Any]]:
    """The parsed ``manifest.json`` of a pipeline, or None if absent."""
    manifest_path = Path(directory) / MANIFEST_FILE
    if not manifest_path.exists():
        return None
    try:
        return json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DataError(
            f"pipeline manifest {manifest_path} is not valid JSON: {exc}"
        ) from exc


def _load_artifact(path: Path, loader: Callable[[Path], Any]) -> Any:
    """Run ``loader`` on ``path``, converting failures to one DataError."""
    if not path.exists():
        raise DataError(f"pipeline {path.parent} is missing {path.name}")
    try:
        return loader(path)
    except ReproError:
        raise
    except (
        json.JSONDecodeError,
        zipfile.BadZipFile,
        UnicodeDecodeError,
        KeyError,
        ValueError,
        TypeError,
        OSError,
    ) as exc:
        raise DataError(
            f"pipeline file {path} is corrupt or unreadable: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


def load_pipeline(
    directory: PathLike,
    linker_config: Optional[LinkerConfig] = None,
    verify: bool = False,
) -> Tuple[ComAid, Ontology, Optional[KnowledgeBase], Optional[WordVectors], NeuralConceptLinker]:
    """Load a deployment saved by :func:`save_pipeline`.

    Returns ``(model, ontology, kb, word_vectors, linker)``; ``kb`` and
    ``word_vectors`` are ``None`` when absent from the directory.  Any
    missing, truncated, or corrupt artifact raises a single
    :class:`DataError` naming the file.  With ``verify=True`` every
    artifact is additionally checksummed against ``manifest.json``
    before anything is deserialised (what ``repro serve`` does at
    startup).  The loaded linker carries the manifest's metadata as
    ``linker.pipeline_metadata`` for the serving layer to report.
    """
    source = Path(directory)
    if not (source / "config.json").exists():
        raise DataError(f"{source} does not look like a saved pipeline")
    if verify:
        verify_pipeline(source)
    manifest = load_manifest(source)
    # Optional artifacts are only optional when the manifest agrees: a
    # manifest that lists kb.json describes a deployment whose Phase-I
    # index was built over aliases, and silently loading without them
    # would serve different rankings than were tested.
    if manifest is not None:
        for name in OPTIONAL_FILES:
            listed = name in manifest.get("files", {})
            if listed and not (source / name).exists():
                raise DataError(f"pipeline {source} is missing {name}")
    config = _load_artifact(
        source / "config.json",
        lambda path: ComAidConfig(
            **json.loads(path.read_text(encoding="utf-8"))
        ),
    )
    vocab = _load_artifact(
        source / "vocab.json",
        lambda path: Vocabulary.from_dict(
            json.loads(path.read_text(encoding="utf-8"))
        ),
    )
    model = ComAid(config, vocab, rng=0)
    _load_artifact(
        source / "model.npz", lambda path: load_module(model, path)
    )
    ontology = _load_artifact(source / "ontology.json", load_ontology_json)
    kb: Optional[KnowledgeBase] = None
    if (source / "kb.json").exists():
        kb = _load_artifact(
            source / "kb.json",
            lambda path: KnowledgeBase.load_json(ontology, path),
        )
    vectors: Optional[WordVectors] = None
    if (source / "vectors.npz").exists():

        def _load_vectors(path: Path) -> WordVectors:
            with np.load(path, allow_pickle=True) as archive:
                return WordVectors(
                    words=[str(word) for word in archive["words"]],
                    matrix=archive["matrix"],
                    tag_words=[str(tag) for tag in archive["tags"]],
                )

        vectors = _load_artifact(source / "vectors.npz", _load_vectors)
    linker = NeuralConceptLinker(
        model,
        ontology,
        linker_config if linker_config is not None else LinkerConfig(),
        kb=kb,
        word_vectors=vectors,
    )
    linker.pipeline_metadata = (manifest or {}).get("metadata", {})
    return model, ontology, kb, vectors, linker
