"""The COMposite AttentIonal encode-Decode network (COM-AID).

Paper Section 4.  The model computes ``p(q|c)`` — the probability of
generating query ``q`` from concept ``c`` — via:

* a **concept encoder** (LSTM over the canonical description; the final
  hidden state is the *concept representation*, Section 4.1.1);
* a **text-structure duet decoder** (LSTM over the query initialised
  from the concept representation, Eq. 4) whose per-word prediction
  uses a composite state built from

  - the decoder state ``s_t``,
  - the textual context ``tc_t`` (attention over encoder states,
    Eq. 5-6),
  - the structural context ``sc_t`` (attention over ancestor-concept
    representations along the β-path, Eq. 7),

  combined as ``s̃_t = tanh(W_d [s_t; tc_t; sc_t] + b_d)`` (Eq. 8) and
  projected to a vocabulary softmax (Eq. 9).

The two attention switches produce the paper's ablations: COM-AID⁻c
(no structure attention — Bahdanau-style attentional seq2seq),
COM-AID⁻w (no text attention), COM-AID⁻wc (plain seq2seq).  In the
ablated variants the composite layer simply takes the narrower
concatenation; the architecture is otherwise identical.

Everything here is a hand-derived forward/backward pair over the
:mod:`repro.nn` substrate; gradient correctness is verified end-to-end
by finite differences in ``tests/core/test_comaid_grad.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ComAidConfig
from repro.nn.attention import Attention, AttentionCache
from repro.nn.embedding import Embedding
from repro.nn.functional import (
    batched_target_log_probs,
    softmax_cross_entropy,
    tanh,
    tanh_grad,
)
from repro.nn.gru import GRUEncoder
from repro.nn.linear import Linear
from repro.nn.lstm import LSTMEncoder, LSTMStepCache
from repro.nn.module import Module
from repro.text.vocab import Vocabulary
from repro.utils.errors import ConfigurationError, DataError
from repro.utils.rng import RngLike, derive_rng, ensure_rng


@dataclass
class ConceptEncoding:
    """Pre-computable encoder outputs for one concept.

    ``states`` are the per-word hidden states ``{h_t^c}`` (the text
    attention memory); ``final_h`` is the concept representation
    ``h_n^c``; ``final_c`` the final cell state (decoder initialiser).
    """

    word_ids: Tuple[int, ...]
    states: np.ndarray
    final_h: np.ndarray
    final_c: np.ndarray
    caches: Optional[List[LSTMStepCache]] = None


@dataclass
class _StepCache:
    """Per-decoder-step activations needed for backward.

    When sampled-softmax training is active, ``sampled_rows`` holds the
    vocabulary rows the step's loss was computed over and ``d_logits``
    is the gradient w.r.t. those rows' logits only.
    """

    s_t: np.ndarray
    composite_input: np.ndarray
    s_tilde: np.ndarray
    d_logits: np.ndarray
    text_cache: Optional[AttentionCache]
    structure_cache: Optional[AttentionCache]
    sampled_rows: Optional[np.ndarray] = None


@dataclass
class ForwardCache:
    """Everything backward needs from one ⟨concept, query⟩ forward pass."""

    concept: ConceptEncoding
    ancestors: List[ConceptEncoding]
    struct_memory: Optional[np.ndarray]
    decoder_input_ids: List[int]
    decoder_caches: List[LSTMStepCache]
    steps: List[_StepCache] = field(default_factory=list)
    loss: float = 0.0


class ComAid(Module):
    """COM-AID model over a shared :class:`Vocabulary`."""

    def __init__(
        self,
        config: ComAidConfig,
        vocab: Vocabulary,
        rng: RngLike = None,
    ) -> None:
        if not vocab.has_specials:
            raise ConfigurationError(
                "ComAid requires a vocabulary with special tokens "
                "(<bos>/<eos> frame the decoded query)"
            )
        generator = ensure_rng(rng)
        self.config = config
        self.vocab = vocab
        dim = config.dim
        self.embedding = Embedding(
            len(vocab), dim, rng=derive_rng(generator, "embedding")
        )
        encoder_cls = LSTMEncoder if config.cell == "lstm" else GRUEncoder
        self.encoder = encoder_cls(dim, dim, rng=derive_rng(generator, "encoder"))
        self.decoder = encoder_cls(dim, dim, rng=derive_rng(generator, "decoder"))
        self.text_attention = Attention()
        self.structure_attention = Attention()
        composite_width = dim * (
            1 + int(config.use_text_attention) + int(config.use_structure_attention)
        )
        self.composite = Linear(
            composite_width, dim, rng=derive_rng(generator, "composite")
        )
        self.output = Linear(dim, len(vocab), rng=derive_rng(generator, "output"))
        self._output_sampler: Optional[Tuple[int, np.ndarray, np.random.Generator]] = None

    # -- sampled softmax (BlackOut-style speed-up) -------------------------

    def set_output_sampler(self, negatives: int, rng: RngLike = None) -> None:
        """Enable sampled-softmax training over the output vocabulary.

        The paper notes (Appendix B.2) that refinement time "can be
        further reduced when the BlackOut technique is used": instead of
        normalising over all |V| words per step, the loss is computed
        over the target plus ``negatives`` words sampled from the
        unigram distribution raised to 3/4.  Only those rows of ``W_s``
        receive gradients.  Scoring (:meth:`log_prob` etc.) always uses
        the exact softmax; call :meth:`clear_output_sampler` after
        training.
        """
        if negatives < 1:
            raise ConfigurationError(
                f"negatives must be >= 1, got {negatives}"
            )
        counts = np.array(
            [max(self.vocab.count_of(word), 1) for word in self.vocab.words],
            dtype=np.float64,
        )
        weights = np.power(counts, 0.75)
        cdf = np.cumsum(weights / weights.sum())
        self._output_sampler = (negatives, cdf, ensure_rng(rng))

    def clear_output_sampler(self) -> None:
        """Disable sampled-softmax training (restore the exact softmax)."""
        self._output_sampler = None

    def output_sampler_rng_state(self) -> Optional[dict]:
        """The active sampler generator's bit-generator state (or None).

        Captured at epoch boundaries by the checkpoint layer so a
        resumed sampled-softmax run draws the same negative rows as the
        uninterrupted run.
        """
        if self._output_sampler is None:
            return None
        return self._output_sampler[2].bit_generator.state

    def restore_output_sampler_rng(self, state: dict) -> None:
        """Restore a sampler RNG state from a checkpoint."""
        if self._output_sampler is None:
            raise ConfigurationError(
                "no output sampler is active; call set_output_sampler first"
            )
        self._output_sampler[2].bit_generator.state = state

    def _sampled_rows(self, target: int) -> np.ndarray:
        assert self._output_sampler is not None
        negatives, cdf, generator = self._output_sampler
        picks = np.searchsorted(cdf, generator.random(negatives))
        rows = [target]
        seen = {target}
        for row in picks:
            row = int(row)
            if row not in seen:
                rows.append(row)
                seen.add(row)
        return np.asarray(rows, dtype=np.intp)

    # -- encoding ---------------------------------------------------------

    def encode_concept(
        self, word_ids: Sequence[int], keep_caches: bool = True
    ) -> ConceptEncoding:
        """Run the concept encoder over a word-id sequence."""
        if not word_ids:
            raise DataError("cannot encode an empty concept description")
        inputs = self.embedding.forward(word_ids)
        states, caches = self.encoder.forward(inputs)
        return ConceptEncoding(
            word_ids=tuple(word_ids),
            states=states,
            final_h=states[-1],
            final_c=caches[-1].c,
            caches=caches if keep_caches else None,
        )

    def concept_representation(self, word_ids: Sequence[int]) -> np.ndarray:
        """The paper's concept representation ``h_n^c`` (a copy)."""
        return self.encode_concept(word_ids, keep_caches=False).final_h.copy()

    def _candidate_structure_memory(
        self, ancestors: object
    ) -> Optional[np.ndarray]:
        """Structure memory for one :meth:`score_batch` candidate.

        Accepts either a precomputed ``(beta, dim)`` matrix (the
        compiled-artifact fast path, validated for shape) or a sequence
        of ancestor encodings to stack the usual way.
        """
        if isinstance(ancestors, np.ndarray):
            if not self.config.use_structure_attention:
                return None
            expected = (self.config.beta, self.config.dim)
            if ancestors.shape != expected:
                raise DataError(
                    f"precomputed structure memory has shape "
                    f"{ancestors.shape}, expected {expected}"
                )
            return ancestors
        return self._structure_memory(list(ancestors))

    def _structure_memory(
        self, ancestors: Sequence[ConceptEncoding]
    ) -> Optional[np.ndarray]:
        if not self.config.use_structure_attention:
            return None
        if len(ancestors) != self.config.beta:
            raise DataError(
                f"structure attention needs exactly beta={self.config.beta} "
                f"ancestor encodings, got {len(ancestors)}"
            )
        return np.vstack([encoding.final_h for encoding in ancestors])

    # -- forward ------------------------------------------------------------

    def forward(
        self,
        concept_ids: Sequence[int],
        ancestor_ids: Sequence[Sequence[int]],
        query_ids: Sequence[int],
    ) -> ForwardCache:
        """Teacher-forced forward pass; returns a cache holding the loss.

        ``loss = -log p(q|c)`` summed over query tokens plus the
        terminating ``<eos>`` (Eq. 3/10).
        """
        if not query_ids:
            raise DataError("cannot decode an empty query")
        concept = self.encode_concept(concept_ids)
        ancestors = [self.encode_concept(ids) for ids in ancestor_ids] if (
            self.config.use_structure_attention
        ) else []
        struct_memory = self._structure_memory(ancestors)
        cache = self._decode(concept, ancestors, struct_memory, query_ids)
        return cache

    def _decode(
        self,
        concept: ConceptEncoding,
        ancestors: List[ConceptEncoding],
        struct_memory: Optional[np.ndarray],
        query_ids: Sequence[int],
    ) -> ForwardCache:
        decoder_input_ids = [self.vocab.bos_id] + list(query_ids)
        targets = list(query_ids) + [self.vocab.eos_id]
        decoder_inputs = self.embedding.forward(decoder_input_ids)
        decoder_states, decoder_caches = self.decoder.forward(
            decoder_inputs, h0=concept.final_h, c0=concept.final_c
        )
        cache = ForwardCache(
            concept=concept,
            ancestors=ancestors,
            struct_memory=struct_memory,
            decoder_input_ids=decoder_input_ids,
            decoder_caches=decoder_caches,
        )
        total_loss = 0.0
        for t, target in enumerate(targets):
            s_t = decoder_states[t]
            parts = [s_t]
            text_cache: Optional[AttentionCache] = None
            structure_cache: Optional[AttentionCache] = None
            if self.config.use_text_attention:
                text_context, _, text_cache = self.text_attention.forward(
                    s_t, concept.states
                )
                parts.append(text_context)
            if self.config.use_structure_attention:
                assert struct_memory is not None
                structure_context, _, structure_cache = (
                    self.structure_attention.forward(s_t, struct_memory)
                )
                parts.append(structure_context)
            composite_input = np.concatenate(parts)
            s_tilde = tanh(self.composite.forward(composite_input))
            sampled_rows: Optional[np.ndarray] = None
            if self._output_sampler is not None:
                sampled_rows = self._sampled_rows(target)
                logits = (
                    self.output.weight.value[sampled_rows] @ s_tilde
                    + self.output.bias.value[sampled_rows]
                )
                loss_t, d_logits = softmax_cross_entropy(logits, 0)
            else:
                logits = self.output.forward(s_tilde)
                loss_t, d_logits = softmax_cross_entropy(logits, target)
            total_loss += loss_t
            cache.steps.append(
                _StepCache(
                    s_t=s_t,
                    composite_input=composite_input,
                    s_tilde=s_tilde,
                    d_logits=d_logits,
                    text_cache=text_cache,
                    structure_cache=structure_cache,
                    sampled_rows=sampled_rows,
                )
            )
        cache.loss = total_loss
        return cache

    # -- backward -------------------------------------------------------------

    def backward(self, cache: ForwardCache, scale: float = 1.0) -> None:
        """Back-propagate ``scale * d loss`` through the whole network.

        Gradients accumulate into the module parameters; callers zero
        them between optimisation steps.
        """
        dim = self.config.dim
        steps = len(cache.steps)
        d_decoder_states = np.zeros((steps, dim))
        d_concept_states = np.zeros_like(cache.concept.states)
        d_struct_memory = (
            np.zeros_like(cache.struct_memory)
            if cache.struct_memory is not None
            else None
        )
        for t, step in enumerate(cache.steps):
            d_logits = step.d_logits * scale
            if step.sampled_rows is not None:
                rows = step.sampled_rows
                self.output.weight.grad[rows] += np.outer(d_logits, step.s_tilde)
                self.output.bias.grad[rows] += d_logits
                d_s_tilde = self.output.weight.value[rows].T @ d_logits
            else:
                d_s_tilde = self.output.backward(step.s_tilde, d_logits)
            d_pre = d_s_tilde * tanh_grad(step.s_tilde)
            d_composite_input = self.composite.backward(
                step.composite_input, d_pre
            )
            d_s_t = d_composite_input[:dim].copy()
            offset = dim
            if self.config.use_text_attention:
                assert step.text_cache is not None
                d_text_context = d_composite_input[offset : offset + dim]
                offset += dim
                d_query, d_memory = self.text_attention.backward(
                    d_text_context, step.text_cache
                )
                d_s_t += d_query
                d_concept_states += d_memory
            if self.config.use_structure_attention:
                assert step.structure_cache is not None and d_struct_memory is not None
                d_structure_context = d_composite_input[offset : offset + dim]
                d_query, d_memory = self.structure_attention.backward(
                    d_structure_context, step.structure_cache
                )
                d_s_t += d_query
                d_struct_memory += d_memory
            d_decoder_states[t] = d_s_t

        d_decoder_inputs, d_h0, d_c0 = self.decoder.backward(
            d_decoder_states, cache.decoder_caches
        )
        self.embedding.backward(cache.decoder_input_ids, d_decoder_inputs)

        # Concept encoder: per-state grads from text attention, plus the
        # decoder initial state/cell grads on the final step.
        if cache.concept.caches is None:
            raise DataError("forward cache was built without encoder caches")
        d_concept_inputs, _, _ = self.encoder.backward(
            d_concept_states,
            cache.concept.caches,
            d_h_final=d_h0,
            d_c_final=d_c0,
        )
        self.embedding.backward(list(cache.concept.word_ids), d_concept_inputs)

        # Ancestor encoders: each ancestor's final hidden state received
        # gradient through the structure attention memory.
        if d_struct_memory is not None:
            for row, ancestor in enumerate(cache.ancestors):
                if ancestor.caches is None:
                    raise DataError("ancestor encoding missing caches")
                d_ancestor_inputs, _, _ = self.encoder.backward(
                    np.zeros_like(ancestor.states),
                    ancestor.caches,
                    d_h_final=d_struct_memory[row],
                )
                self.embedding.backward(
                    list(ancestor.word_ids), d_ancestor_inputs
                )

    # -- scoring ------------------------------------------------------------

    def pair_loss(
        self,
        concept_ids: Sequence[int],
        ancestor_ids: Sequence[Sequence[int]],
        query_ids: Sequence[int],
    ) -> float:
        """``-log p(q|c)`` (nats), forward pass only."""
        return self.forward(concept_ids, ancestor_ids, query_ids).loss

    def log_prob(
        self,
        concept_ids: Sequence[int],
        ancestor_ids: Sequence[Sequence[int]],
        query_ids: Sequence[int],
    ) -> float:
        """``log p(q|c)`` (Eq. 1)."""
        return -self.pair_loss(concept_ids, ancestor_ids, query_ids)

    def score_with_encodings(
        self,
        concept: ConceptEncoding,
        ancestors: Sequence[ConceptEncoding],
        query_ids: Sequence[int],
    ) -> float:
        """``log p(q|c)`` reusing pre-computed encoder runs.

        The online linker encodes every candidate concept once and
        scores many queries against it; this avoids re-running the
        encoder (the dominant cost Figure 11 calls "ED").  As with
        :meth:`score_batch`, ``ancestors`` may be a precomputed
        ``(beta, dim)`` structure-memory matrix instead of ancestor
        encodings.
        """
        if not query_ids:
            raise DataError("cannot score an empty query")
        struct_memory = self._candidate_structure_memory(ancestors)
        if self.config.use_structure_attention and isinstance(
            ancestors, np.ndarray
        ):
            ancestors = []
        cache = self._decode(concept, list(ancestors), struct_memory, query_ids)
        return -cache.loss

    def score_batch(
        self,
        query_ids: Sequence[Sequence[int]],
        candidates: Sequence[Tuple[ConceptEncoding, Sequence[ConceptEncoding]]],
    ) -> np.ndarray:
        """Batched :meth:`score_with_encodings` — the Phase-II hot path.

        ``candidates`` holds one ``(concept, ancestors)`` encoding pair
        per re-ranking candidate; ``query_ids`` gives each candidate its
        query-word ids (possibly distinct per candidate — the linker
        removes the words each candidate's canonical description shares
        with the query).  Returns the ``(k,)`` vector of
        ``log p(q_j | c_j)``, matching the sequential method per row to
        floating-point round-off.

        All k decodes advance in lock-step: one ``(k, ·)`` matmul per
        decoder timestep instead of k mat-vecs (the trick seq2seq
        serving stacks use for beam scoring).  Text attention (Eq. 5-6)
        is masked over each candidate's true description length;
        structure attention (Eq. 7) runs over the ``(k, β, d)`` ancestor
        block — Def. 4.1's first-level duplication already pads every
        ancestor path to exactly β, so no mask is needed there.
        Candidates whose ⟨query, eos⟩ sequence is shorter than the batch
        maximum stop accumulating log-probability after their final
        step; the trailing steps run on ``<pad>`` inputs and are
        discarded.  Inference-only: no caches are kept and no gradients
        flow — training and the equivalence-test oracle stay on the
        sequential :meth:`_decode`.

        A candidate's ancestors may be given either as the usual
        sequence of :class:`ConceptEncoding` (runtime encoding path) or
        as a precomputed ``(beta, dim)`` structure-memory matrix — the
        exact array :meth:`_structure_memory` would build.  The
        compiled-artifact engine stores those matrices per concept so
        the ancestor encoders never run online.
        """
        if len(query_ids) != len(candidates):
            raise DataError(
                f"got {len(query_ids)} query sequences for "
                f"{len(candidates)} candidates"
            )
        if not candidates:
            raise DataError("cannot score an empty candidate batch")
        queries = [list(ids) for ids in query_ids]
        if any(not query for query in queries):
            raise DataError("cannot score an empty query")
        size = len(candidates)
        dim = self.config.dim
        concepts = [concept for concept, _ in candidates]
        h = np.stack([concept.final_h for concept in concepts])
        c = np.stack([concept.final_c for concept in concepts])
        text_memory: Optional[np.ndarray] = None
        text_mask: Optional[np.ndarray] = None
        if self.config.use_text_attention:
            lengths = [concept.states.shape[0] for concept in concepts]
            width = max(lengths)
            text_memory = np.zeros((size, width, dim))
            text_mask = np.zeros((size, width), dtype=bool)
            for row, concept in enumerate(concepts):
                text_memory[row, : lengths[row]] = concept.states
                text_mask[row, : lengths[row]] = True
        struct_memory: Optional[np.ndarray] = None
        if self.config.use_structure_attention:
            struct_memory = np.stack(
                [
                    self._candidate_structure_memory(ancestors)
                    for _, ancestors in candidates
                ]
            )
        input_ids = [[self.vocab.bos_id] + query for query in queries]
        targets = [query + [self.vocab.eos_id] for query in queries]
        steps = max(len(sequence) for sequence in targets)
        pad = self.vocab.pad_id
        log_probs = np.zeros(size)
        for t in range(steps):
            step_ids = [
                sequence[t] if t < len(sequence) else pad
                for sequence in input_ids
            ]
            x = self.embedding.forward(step_ids)
            h, c = self.decoder.cell.step_batch(x, h, c)
            parts = [h]
            if text_memory is not None:
                contexts, _ = self.text_attention.forward_batch(
                    h, text_memory, text_mask
                )
                parts.append(contexts)
            if struct_memory is not None:
                contexts, _ = self.structure_attention.forward_batch(
                    h, struct_memory
                )
                parts.append(contexts)
            s_tilde = tanh(self.composite.forward(np.concatenate(parts, axis=1)))
            logits = self.output.forward(s_tilde)
            step_targets = np.asarray(
                [
                    sequence[t] if t < len(sequence) else 0
                    for sequence in targets
                ],
                dtype=np.intp,
            )
            step_log_probs = batched_target_log_probs(logits, step_targets)
            active = np.asarray(
                [t < len(sequence) for sequence in targets], dtype=bool
            )
            log_probs[active] += step_log_probs[active]
        return log_probs

    # -- generation ---------------------------------------------------------

    def generate(
        self,
        concept_ids: Sequence[int],
        ancestor_ids: Sequence[Sequence[int]],
        max_length: int = 12,
        temperature: float = 0.0,
        rng: RngLike = None,
    ) -> List[str]:
        """Decode a plausible alias for a concept — COM-AID run as the
        generative translation model it is.

        ``temperature == 0`` decodes greedily; larger values sample from
        the tempered per-step distribution.  Generation stops at
        ``<eos>`` or ``max_length`` words.  Special tokens never appear
        in the output.
        """
        if max_length < 1:
            raise ConfigurationError(
                f"max_length must be >= 1, got {max_length}"
            )
        if temperature < 0:
            raise ConfigurationError(
                f"temperature must be >= 0, got {temperature}"
            )
        generator = ensure_rng(rng)
        concept = self.encode_concept(concept_ids, keep_caches=False)
        ancestors = (
            [self.encode_concept(ids, keep_caches=False) for ids in ancestor_ids]
            if self.config.use_structure_attention
            else []
        )
        struct_memory = self._structure_memory(ancestors)
        blocked = {self.vocab.pad_id, self.vocab.bos_id, self.vocab.unk_id}
        h, c = concept.final_h, concept.final_c
        current = self.vocab.bos_id
        words: List[str] = []
        for _ in range(max_length):
            x = self.embedding.forward([current])[0]
            h, c, _ = self.decoder.cell.step(x, h, c)
            parts = [h]
            if self.config.use_text_attention:
                context, _, _ = self.text_attention.forward(h, concept.states)
                parts.append(context)
            if self.config.use_structure_attention:
                assert struct_memory is not None
                context, _, _ = self.structure_attention.forward(
                    h, struct_memory
                )
                parts.append(context)
            s_tilde = tanh(self.composite.forward(np.concatenate(parts)))
            logits = self.output.forward(s_tilde)
            logits[list(blocked)] = -np.inf
            if temperature == 0.0:
                choice = int(np.argmax(logits))
            else:
                tempered = logits / temperature
                tempered -= tempered.max()
                probabilities = np.exp(tempered)
                probabilities[~np.isfinite(probabilities)] = 0.0
                probabilities /= probabilities.sum()
                choice = int(
                    generator.choice(len(probabilities), p=probabilities)
                )
            if choice == self.vocab.eos_id:
                break
            words.append(self.vocab.word_of(choice))
            current = choice
        return words

    # -- conversions -----------------------------------------------------------

    def words_to_ids(self, words: Sequence[str]) -> List[int]:
        """Vocabulary encoding helper (unknown words -> ``<unk>``)."""
        return self.vocab.encode(words)
