"""Configuration objects for COM-AID and the NCL pipeline.

Paper Table 1 gives the tuned parameter grid with defaults in bold:
``k ∈ {10, **20**, 30, 40, 50}``, ``β ∈ {1, **2**, 3, 4}``,
``d ∈ {50, 100, **150**, 200}``.  Those paper defaults are recorded in
:data:`PAPER_DEFAULTS`; the dataclass defaults are scaled for the
CPU-only benches (the paper trains for hours on a 40-thread server) and
every experiment overrides them explicitly.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar, Dict, Mapping, Optional, Union

from repro.utils.errors import ConfigurationError

#: Table 1 defaults (bold entries), for reference and reporting.
PAPER_DEFAULTS: Dict[str, int] = {"k": 20, "beta": 2, "d": 150}

#: Phase-I retrieval modes (see :mod:`repro.retrieval`).
RETRIEVAL_MODES = ("exact", "sparse", "dense", "hybrid")

#: Score-fusion methods for hybrid retrieval.
FUSION_METHODS = ("weighted_sum", "rrf")

#: Ceiling for ``shards="auto"`` — beyond a handful of GIL-sharing
#: worker threads the scatter overhead outgrows the decode overlap.
AUTO_SHARDS_MAX = 4

#: Admission-queue overload policies for the multi-process front-end.
SHED_POLICIES = ("reject_new", "drop_oldest")


@dataclass(frozen=True)
class RetrievalConfig:
    """Phase-I retrieval strategy (:mod:`repro.retrieval`).

    Attributes
    ----------
    mode:
        ``exact`` — the per-shard TF-IDF scan (the default and the
        reference path; rankings identical to every release before the
        retrieval subsystem existed).  ``sparse`` — the array-backed
        inverted index (bit-identical hits, sublinear constant
        factors).  ``dense`` — the IVF ANN probe over precompiled
        concept encodings.  ``hybrid`` — sparse ∪ dense with score
        fusion.  Non-exact modes need a compiled artifact
        (``LinkerConfig.artifact_dir``); dense/hybrid additionally need
        the artifact compiled with ``repro compile --index``.
    nprobe:
        Clusters the dense side probes per query.  More clusters, more
        of the corpus scanned: recall and cost both rise roughly
        linearly in ``nprobe``.
    fusion_weight:
        ``w ∈ [0, 1]`` blending sparse (w) against dense (1−w) in
        hybrid mode; 1 ranks purely by TF-IDF cosine, 0 purely by
        embedding cosine.
    fusion_method:
        ``weighted_sum`` fuses the calibrated scores directly;
        ``rrf`` (the default) fuses reciprocal ranks — robust when the
        two score distributions are incomparable, and the setting that
        holds recall@64 >= 0.98 against the exact scan in the 100k
        benchmark (``BENCH_retrieval.json``).
    max_postings_per_term:
        Sparse-mode early termination: scan only this many
        highest-impact postings per query term (0 = exact, the
        default).  An approximation knob — it voids the bit-identity
        guarantee for very common terms.
    """

    mode: str = "exact"
    nprobe: int = 8
    fusion_weight: float = 0.95
    fusion_method: str = "rrf"
    max_postings_per_term: int = 0

    def __post_init__(self) -> None:
        if self.mode not in RETRIEVAL_MODES:
            raise ConfigurationError(
                f"retrieval mode must be one of {RETRIEVAL_MODES}, got "
                f"{self.mode!r}"
            )
        if self.nprobe < 1:
            raise ConfigurationError(
                f"nprobe must be >= 1, got {self.nprobe}"
            )
        if not 0.0 <= self.fusion_weight <= 1.0:
            raise ConfigurationError(
                f"fusion_weight must be in [0, 1], got {self.fusion_weight}"
            )
        if self.fusion_method not in FUSION_METHODS:
            raise ConfigurationError(
                f"fusion_method must be one of {FUSION_METHODS}, got "
                f"{self.fusion_method!r}"
            )
        if self.max_postings_per_term < 0:
            raise ConfigurationError(
                "max_postings_per_term must be >= 0 (0 = exact), got "
                f"{self.max_postings_per_term}"
            )


@dataclass(frozen=True)
class ComAidConfig:
    """COM-AID network architecture configuration.

    Attributes
    ----------
    dim:
        ``d`` — the shared word/concept representation dimensionality
        (the paper keeps both equal; see its footnote 10).
    beta:
        Structural-context path length β (ancestor count; Def. 4.1).
    use_text_attention:
        Textual-context attention TC (Eq. 5-6).  ``False`` gives the
        COM-AID⁻w ablation.
    use_structure_attention:
        Structural-context attention SC (Eq. 7).  ``False`` gives the
        COM-AID⁻c ablation (an attentional seq2seq [2]); disabling both
        gives COM-AID⁻wc (a plain seq2seq [40]).
    cell:
        Recurrent unit for encoder and decoder: ``"lstm"`` (the paper's
        choice, Section 4.1.1) or ``"gru"`` (a lighter extension; see
        the ablation bench).
    """

    dim: int = 32
    beta: int = 2
    use_text_attention: bool = True
    use_structure_attention: bool = True
    cell: str = "lstm"

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {self.dim}")
        if self.cell not in ("lstm", "gru"):
            raise ConfigurationError(
                f"cell must be 'lstm' or 'gru', got {self.cell!r}"
            )
        if self.beta < 0:
            raise ConfigurationError(f"beta must be >= 0, got {self.beta}")
        if self.use_structure_attention and self.beta < 1:
            raise ConfigurationError(
                "structure attention requires beta >= 1 "
                f"(got beta={self.beta})"
            )

    @property
    def variant_name(self) -> str:
        """The paper's name for this ablation variant."""
        if self.use_text_attention and self.use_structure_attention:
            return "COM-AID"
        if self.use_text_attention:
            return "COM-AID-c"
        if self.use_structure_attention:
            return "COM-AID-w"
        return "COM-AID-wc"


@dataclass(frozen=True)
class TrainingConfig:
    """Refinement-phase (MLE) training configuration (Section 4.2).

    ``sampled_softmax`` enables the BlackOut-style output sampling the
    paper's Appendix B.2 suggests for large vocabularies: per decoded
    word, the loss is normalised over the target plus that many sampled
    negatives instead of all |V| words.  0 keeps the exact softmax.
    """

    epochs: int = 10
    batch_size: int = 16
    learning_rate: float = 0.05
    optimizer: str = "adagrad"
    clip_norm: float = 5.0
    shuffle: bool = True
    sampled_softmax: int = 0

    def __post_init__(self) -> None:
        if self.sampled_softmax < 0:
            raise ConfigurationError(
                f"sampled_softmax must be >= 0, got {self.sampled_softmax}"
            )
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if self.clip_norm <= 0:
            raise ConfigurationError(
                f"clip_norm must be positive, got {self.clip_norm}"
            )
        if self.optimizer not in ("sgd", "adagrad", "adam"):
            raise ConfigurationError(
                f"optimizer must be sgd/adagrad/adam, got {self.optimizer!r}"
            )


@dataclass(frozen=True)
class LinkerConfig:
    """Online-linking configuration (Section 5).

    Attributes
    ----------
    k:
        Candidate set size for Phase I retrieval (paper default 20).
    rewrite_queries:
        Apply OOV query rewriting (embedding nearest-word plus
        edit-distance fallback).
    remove_shared_words:
        Phase II temporarily removes words shared between query and
        canonical description before computing ``p(q|c)``.
    edit_distance_max:
        Maximum edit distance for the typo-repair fallback.
    rewrite_min_similarity:
        Minimum cosine for an embedding rewrite to be applied; OOV
        words whose nearest in-Ω word is farther are kept unchanged.
    score_omega_only:
        Phase II scores only query words in the ontology vocabulary Ω
        (numeric tokens are always kept).  After rewriting, a non-Ω
        word is one the rewriter judged to have no semantic counterpart
        among the concepts — a decoration like "for investigation" —
        and decoding it adds per-candidate noise without signal.
    index_aliases:
        Whether Phase I indexes concept aliases alongside canonical
        descriptions (richer recall; the paper's keyword matcher is
        built over concept descriptions).
    encoding_cache_size:
        Capacity of the bounded LRU caches over concept encodings and
        ancestor-path encodings (Section 5's dominant-cost forward
        passes).  0 means unbounded — the pre-serving behaviour, fine
        for one-shot CLI runs; a long-lived service should bound it to
        its memory budget.
    phase2_budget_s:
        Per-query wall-clock budget for Phase II re-ranking (ED).  When
        scoring overruns it, the query falls back to Phase I keyword
        ranking and the result is tagged ``degraded``.  0 disables the
        budget (the offline behaviour).
    degrade_on_error:
        When Phase II raises, return the Phase I keyword ranking tagged
        ``degraded`` instead of failing the whole request — the paper's
        Section 5 keyword matcher is already computed at that point and
        is strictly better than an error page.  ``False`` restores
        fail-fast (useful in tests and batch evaluation, where a hidden
        model bug must not be papered over).
    batch_phase2:
        Score all Phase-II candidates in one lock-step batched decode
        (``ComAid.score_batch``: one ``(k, ·)`` matmul per decoder
        timestep) instead of one candidate at a time.  Rankings, scores
        (to ≤1e-9), and tie order are identical either way — proven by
        ``tests/core/test_phase2_batching.py`` — so this is purely a
        latency knob; ``False`` restores the sequential reference path
        (also the degraded-mode/test oracle).  Budget semantics are
        preserved: the deadline is checked per candidate while the
        batch is assembled and once after the all-or-nothing decode.
    artifact_dir:
        Directory of a compiled concept artifact (``repro compile``).
        When set, the linker loads the artifact (fingerprint-checked
        against the model) and serves Phase I/II entirely from
        precomputed state via the sharded engine
        (:mod:`repro.engine.shards`); unset keeps the runtime-encoding
        path.
    shards:
        Shard count S for the scatter-gather engine.  Requires
        ``artifact_dir``; S=1 (the default) runs the engine inline on
        the calling thread, S>1 runs shards on a persistent worker
        pool.  Rankings are identical at any S.  ``"auto"`` sizes the
        pool to the machine at :meth:`resolve_shards` time: 1 worker on
        boxes with ≤2 CPUs (where the GIL-sharing pool is pure overhead
        — the BENCH_shard regression), else ``min(4, cpus − 1)``.
    retrieval:
        Phase-I retrieval strategy (:class:`RetrievalConfig`).  The
        default ``mode="exact"`` preserves the pre-subsystem scan
        bit-for-bit; sparse/dense/hybrid switch to the sublinear
        indexes (see :mod:`repro.retrieval`).
    mmap_artifact:
        Map the compiled artifact's slab read-only (``load_artifact(...,
        mmap=True)``) instead of copying it into anonymous memory.  N
        worker processes mapping the same artifact then share one
        physical copy through the page cache — the zero-copy property
        ``tests/serving/test_zero_copy.py`` measures.  Requires a
        format-3 artifact for the zero-copy win (older formats fall
        back to copying with an info log).
    fuse_phase2:
        Fuse Phase-II decodes **across queries** of one
        ``link_batch`` call: all surviving candidates from every query
        in the batch are scored by a single lock-step ``score_batch``
        (one GEMM per decode step over the union).  Because
        ``score_batch`` rows are batch-composition independent (the
        ``batch_phase2`` invariant), rankings and log-probs are
        identical to the per-query path to ≤1e-9 — proven by
        ``tests/core/test_phase2_batching.py`` and the cross-process
        equivalence suite.  ``False`` (the default) keeps the per-query
        reference path; the multi-process serving tier turns this on so
        cross-request micro-batches become one GEMM.
    """

    k: int = 20
    rewrite_queries: bool = True
    remove_shared_words: bool = True
    edit_distance_max: int = 2
    rewrite_min_similarity: float = 0.6
    score_omega_only: bool = True
    index_aliases: bool = True
    encoding_cache_size: int = 4096
    phase2_budget_s: float = 0.0
    degrade_on_error: bool = True
    batch_phase2: bool = True
    artifact_dir: Optional[str] = None
    shards: Union[int, str] = 1
    retrieval: RetrievalConfig = field(default_factory=RetrievalConfig)
    mmap_artifact: bool = False
    fuse_phase2: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.retrieval, Mapping):
            try:
                coerced = RetrievalConfig(**self.retrieval)
            except TypeError as exc:
                raise ConfigurationError(
                    f"invalid retrieval config: {exc}"
                ) from exc
            object.__setattr__(self, "retrieval", coerced)
        if not isinstance(self.retrieval, RetrievalConfig):
            raise ConfigurationError(
                "retrieval must be a RetrievalConfig or a mapping, got "
                f"{type(self.retrieval).__name__}"
            )
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if isinstance(self.shards, str):
            if self.shards != "auto":
                raise ConfigurationError(
                    f"shards must be an integer >= 1 or 'auto', got "
                    f"{self.shards!r}"
                )
        elif self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}"
            )
        if (
            isinstance(self.shards, int)
            and self.shards > 1
            and self.artifact_dir is None
        ):
            raise ConfigurationError(
                "shards > 1 requires artifact_dir (the sharded engine "
                "serves from a compiled concept artifact; run "
                "`repro compile` first)"
            )
        if self.mmap_artifact and self.artifact_dir is None:
            raise ConfigurationError(
                "mmap_artifact requires artifact_dir (only a compiled "
                "concept artifact has an mmap-able slab; run "
                "`repro compile` first)"
            )
        if self.retrieval.mode != "exact" and self.artifact_dir is None:
            raise ConfigurationError(
                f"retrieval mode {self.retrieval.mode!r} requires "
                "artifact_dir (the sublinear indexes serve a compiled "
                "concept artifact; run `repro compile` first)"
            )
        if self.edit_distance_max < 0:
            raise ConfigurationError(
                f"edit_distance_max must be >= 0, got {self.edit_distance_max}"
            )
        if not -1.0 <= self.rewrite_min_similarity <= 1.0:
            raise ConfigurationError(
                "rewrite_min_similarity must be a cosine in [-1, 1], got "
                f"{self.rewrite_min_similarity}"
            )
        if self.encoding_cache_size < 0:
            raise ConfigurationError(
                "encoding_cache_size must be >= 0 (0 = unbounded), got "
                f"{self.encoding_cache_size}"
            )
        if self.phase2_budget_s < 0:
            raise ConfigurationError(
                "phase2_budget_s must be >= 0 (0 = unlimited), got "
                f"{self.phase2_budget_s}"
            )

    def resolve_shards(self) -> int:
        """The effective worker count S for this machine.

        An explicit integer is returned unchanged.  ``"auto"`` resolves
        to 1 without an artifact (no engine, no pool) or on machines
        with ≤2 CPUs — a thread pool under those conditions loses to
        the inline path (the 1-CPU BENCH_shard regression: 653 qps at
        S=4 vs 722 at S=1) — and to ``min(4, cpus − 1)`` otherwise.
        """
        if self.shards != "auto":
            return int(self.shards)
        if self.artifact_dir is None:
            return 1
        cpus = os.cpu_count() or 1
        if cpus <= 2:
            return 1
        return min(AUTO_SHARDS_MAX, cpus - 1)


@dataclass(frozen=True)
class ServingConfig:
    """Online-serving configuration (the ``repro serve`` subsystem).

    Attributes
    ----------
    host / port:
        HTTP bind address; port 0 asks the OS for an ephemeral port
        (the chosen port is printed at startup).
    max_batch_size:
        Micro-batcher flush threshold: a batch dispatches as soon as
        this many requests are pending.
    batch_wait_ms:
        Micro-batcher deadline: an open batch dispatches at most this
        many milliseconds after its first request arrived, full or not.
        0 disables coalescing (every request is its own batch).
    request_timeout_s:
        End-to-end budget for one ``POST /link`` request; exceeding it
        returns HTTP 504.
    warm_on_start:
        Pre-encode the indexed concepts before readiness flips
        (``GET /readyz`` stays 503 during warm-up).
    warm_retries:
        How many times a failed warm-up is retried (with exponential
        backoff) before the service gives up and serves cold.  0
        restores the one-shot behaviour.
    warm_backoff_s:
        Base backoff before the first warm-up retry; doubles per
        attempt.
    trace_sample_rate:
        Fraction of requests whose span trace is retained (``GET
        /traces``).  Deterministic: 0.25 keeps exactly every fourth
        request.  0 disables tracing entirely (the instrumented path
        then costs one context-variable read per span site, the <1%
        overhead budget ``BENCH_obs.json`` enforces).
    trace_buffer:
        Ring-buffer capacity for finished traces; the oldest trace is
        evicted when a new one lands in a full buffer.
    workers:
        Worker *processes* for the multi-process serving tier.  0 (the
        default) keeps the single-process threaded service; N >= 1
        forks N workers that each mmap the compiled artifact (zero
        copy) and serve Phase I/II outside the parent's GIL, behind the
        async front-end's admission queue.  Requires
        ``LinkerConfig.artifact_dir``.
    admission_queue:
        Bound on requests waiting in the front-end's admission queue.
        Arrivals beyond the bound are **shed** (HTTP 503, error code
        ``shed``) per ``shed_policy`` instead of queuing unboundedly.
        0 disables admission control (unbounded queue — the
        pre-front-end behaviour).
    deadline_ms:
        Per-request queueing deadline: a request still waiting for a
        worker this many milliseconds after admission is shed rather
        than dispatched (its caller has likely timed out already —
        serving it would be pure goodput loss).  0 disables deadline
        shedding.
    shed_policy:
        Which request loses when the admission queue is full:
        ``reject_new`` (the default) sheds the arriving request —
        honest backpressure, FIFO fairness; ``drop_oldest`` sheds the
        queue head to admit the arrival — freshest-first, for callers
        that retry aggressively and only value recent answers.
    slo_window_s:
        Width of the rolling SLO window (seconds of per-second outcome
        buckets) the availability / p99-vs-deadline report in
        ``/metrics`` and ``repro top`` is computed over.
    slo_availability:
        The availability objective the error-budget burn rate is judged
        against: with 0.999, a window serving 99.8% reads as burn 2.0.
        The latency half of the SLO reuses ``deadline_ms`` (0 disables
        deadline accounting).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_batch_size: int = 8
    batch_wait_ms: float = 2.0
    request_timeout_s: float = 30.0
    warm_on_start: bool = True
    warm_retries: int = 2
    warm_backoff_s: float = 0.5
    trace_sample_rate: float = 1.0
    trace_buffer: int = 64
    workers: int = 0
    admission_queue: int = 256
    deadline_ms: float = 0.0
    shed_policy: str = "reject_new"
    slo_window_s: float = 60.0
    slo_availability: float = 0.999

    def __post_init__(self) -> None:
        if self.warm_retries < 0:
            raise ConfigurationError(
                f"warm_retries must be >= 0, got {self.warm_retries}"
            )
        if self.warm_backoff_s < 0:
            raise ConfigurationError(
                f"warm_backoff_s must be >= 0, got {self.warm_backoff_s}"
            )
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(
                f"port must be in [0, 65535], got {self.port}"
            )
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.batch_wait_ms < 0:
            raise ConfigurationError(
                f"batch_wait_ms must be >= 0, got {self.batch_wait_ms}"
            )
        if self.request_timeout_s <= 0:
            raise ConfigurationError(
                f"request_timeout_s must be positive, got {self.request_timeout_s}"
            )
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ConfigurationError(
                "trace_sample_rate must be in [0, 1], got "
                f"{self.trace_sample_rate}"
            )
        if self.trace_buffer < 1:
            raise ConfigurationError(
                f"trace_buffer must be >= 1, got {self.trace_buffer}"
            )
        if self.workers < 0:
            raise ConfigurationError(
                "workers must be >= 0 (0 = single-process threaded tier), "
                f"got {self.workers}"
            )
        if self.admission_queue < 0:
            raise ConfigurationError(
                "admission_queue must be >= 0 (0 = unbounded), got "
                f"{self.admission_queue}"
            )
        if self.deadline_ms < 0:
            raise ConfigurationError(
                "deadline_ms must be >= 0 (0 = no queueing deadline), got "
                f"{self.deadline_ms}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"shed_policy must be one of {SHED_POLICIES}, got "
                f"{self.shed_policy!r}"
            )
        if self.slo_window_s < 1.0:
            raise ConfigurationError(
                f"slo_window_s must be >= 1, got {self.slo_window_s}"
            )
        if not 0.0 < self.slo_availability <= 1.0:
            raise ConfigurationError(
                "slo_availability must be in (0, 1], got "
                f"{self.slo_availability}"
            )


@dataclass(frozen=True)
class LifecycleConfig:
    """Model-lifecycle configuration (the blue/green feedback loop).

    Governs the production Appendix-A loop in :mod:`repro.lifecycle`:
    which live results the uncertainty pool captures, how much expert
    feedback triggers a retrain, how mirrored traffic is shadow-scored
    against a staged candidate, and the quality gates a candidate must
    clear before the atomic engine-pointer flip promotes it.

    Attributes
    ----------
    enabled:
        Whether ``repro serve`` wires a lifecycle controller (and the
        ``/v1/admin`` endpoints) around the service.
    pool_capacity:
        Bounded-reservoir size of the uncertainty pool.  When full, new
        uncertain queries displace a uniformly random pooled one
        (reservoir sampling), so the pool stays an unbiased sample of
        the uncertain stream instead of its prefix.
    loss_threshold:
        Pool a result whose top candidate's ``Loss = -log p(q|c)``
        exceeds this (Appendix A's high-loss criterion).
    margin_threshold:
        Pool a result whose top-2 log-prob margin (``log p`` of rank 1
        minus rank 2) falls below this — candidates the model cannot
        tell apart.
    retrain_after:
        Expert resolutions to accumulate before a retrain is due.
    retrain_epochs:
        Incremental epochs per retrain (``ComAidTrainer.continue_training``).
    shadow_sample_every:
        Mirror every N-th live query to the staged candidate (1 =
        mirror everything).  Deterministic, like trace sampling.
    shadow_queue_capacity:
        Bounded queue between the request path and the shadow-scoring
        thread; a full queue drops the mirror (counted), never blocks
        the live request.
    min_shadow_samples:
        Promotion gate: shadow evaluations required before a candidate
        may be promoted.
    min_agreement:
        Promotion gate: fraction of shadow evaluations whose top-1
        concept matches the live engine's.
    max_log_prob_drop:
        Promotion gate: maximum tolerated mean drop in top-1 log-prob
        (candidate vs live) across paired shadow evaluations.
    max_latency_ratio:
        Promotion gate: maximum candidate/live mean per-query latency
        ratio observed during shadowing.
    compile_index:
        ``index`` argument for candidate-artifact compilation
        (``none``/``sparse``/``dense``/``both``).
    """

    enabled: bool = False
    pool_capacity: int = 256
    loss_threshold: float = 10.0
    margin_threshold: float = 0.5
    retrain_after: int = 8
    retrain_epochs: int = 2
    shadow_sample_every: int = 1
    shadow_queue_capacity: int = 128
    min_shadow_samples: int = 16
    min_agreement: float = 0.9
    max_log_prob_drop: float = 1.0
    max_latency_ratio: float = 5.0
    compile_index: str = "both"

    def __post_init__(self) -> None:
        if self.pool_capacity < 1:
            raise ConfigurationError(
                f"pool_capacity must be >= 1, got {self.pool_capacity}"
            )
        if self.retrain_after < 1:
            raise ConfigurationError(
                f"retrain_after must be >= 1, got {self.retrain_after}"
            )
        if self.retrain_epochs < 1:
            raise ConfigurationError(
                f"retrain_epochs must be >= 1, got {self.retrain_epochs}"
            )
        if self.shadow_sample_every < 1:
            raise ConfigurationError(
                "shadow_sample_every must be >= 1 (1 = mirror everything), "
                f"got {self.shadow_sample_every}"
            )
        if self.shadow_queue_capacity < 1:
            raise ConfigurationError(
                f"shadow_queue_capacity must be >= 1, got "
                f"{self.shadow_queue_capacity}"
            )
        if self.min_shadow_samples < 1:
            raise ConfigurationError(
                f"min_shadow_samples must be >= 1, got "
                f"{self.min_shadow_samples}"
            )
        if not 0.0 <= self.min_agreement <= 1.0:
            raise ConfigurationError(
                f"min_agreement must be in [0, 1], got {self.min_agreement}"
            )
        if self.max_latency_ratio <= 0:
            raise ConfigurationError(
                f"max_latency_ratio must be positive, got "
                f"{self.max_latency_ratio}"
            )
        if self.compile_index not in ("none", "sparse", "dense", "both"):
            raise ConfigurationError(
                "compile_index must be none/sparse/dense/both, got "
                f"{self.compile_index!r}"
            )


#: Valid tenant names: path-safe, header-safe, log-safe.
_TENANT_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


@dataclass(frozen=True)
class TenantConfig:
    """One named tenant of a multi-tenant deployment.

    A tenant is an independently served ontology: its own pipeline (or
    the deployment's base pipeline), optionally its own compiled
    artifact, and its own serving knobs — retrieval mode, candidate
    set size, encoding-cache budget, and request quota.  Declared under
    the ``tenants`` section of :class:`RuntimeConfig` and served by
    :class:`repro.tenancy.TenantRegistry`.

    Attributes
    ----------
    pipeline:
        Saved pipeline directory for this tenant's model + ontology.
        Empty (the default) inherits the deployment's base pipeline —
        the ``repro serve --artifact NAME=DIR`` shape, where tenants
        share one model but mount different compiled artifacts.
    artifact_dir:
        Compiled concept artifact this tenant serves from (``repro
        compile``); None keeps the runtime-encoding path.
    retrieval_mode:
        Phase-I retrieval strategy for this tenant (see
        :class:`RetrievalConfig`; non-exact modes require
        ``artifact_dir``).
    k:
        Per-tenant candidate set size; 0 inherits the deployment's
        ``linker.k``.
    cache_budget:
        Capacity of this tenant's encoding/ancestor LRU caches
        (0 = unbounded) — the per-tenant partition of the memory the
        single-tenant ``encoding_cache_size`` governs globally.
    quota_per_minute:
        Rolling-window request quota; requests beyond it answer HTTP
        429 ``quota_exceeded``.  0 disables the quota.
    warm_on_load:
        Pre-encode the tenant's concepts when it is (lazily) loaded;
        the default serves cold and fills caches on demand, keeping
        first-touch latency bounded by one warm-up, not blocking the
        whole process at start.
    """

    pipeline: str = ""
    artifact_dir: Optional[str] = None
    retrieval_mode: str = "exact"
    k: int = 0
    cache_budget: int = 4096
    quota_per_minute: int = 0
    warm_on_load: bool = False

    def __post_init__(self) -> None:
        if self.retrieval_mode not in RETRIEVAL_MODES:
            raise ConfigurationError(
                f"tenant retrieval_mode must be one of {RETRIEVAL_MODES}, "
                f"got {self.retrieval_mode!r}"
            )
        if self.retrieval_mode != "exact" and self.artifact_dir is None:
            raise ConfigurationError(
                f"tenant retrieval_mode {self.retrieval_mode!r} requires "
                "artifact_dir (the sublinear indexes serve a compiled "
                "concept artifact)"
            )
        if self.k < 0:
            raise ConfigurationError(
                f"tenant k must be >= 0 (0 = inherit linker.k), got {self.k}"
            )
        if self.cache_budget < 0:
            raise ConfigurationError(
                f"tenant cache_budget must be >= 0 (0 = unbounded), got "
                f"{self.cache_budget}"
            )
        if self.quota_per_minute < 0:
            raise ConfigurationError(
                "tenant quota_per_minute must be >= 0 (0 = no quota), got "
                f"{self.quota_per_minute}"
            )

    def to_linker_config(self, base: "LinkerConfig") -> "LinkerConfig":
        """This tenant's :class:`LinkerConfig`, derived from ``base``.

        The deployment-wide linker section supplies everything a tenant
        does not own (rewriting, Phase-II batching, budgets); the
        tenant overrides the partitioned knobs: artifact, retrieval
        mode, cache budget, and (optionally) k.
        """
        overrides: Dict[str, Any] = {
            "artifact_dir": self.artifact_dir,
            "encoding_cache_size": self.cache_budget,
            "retrieval": dataclasses.replace(
                base.retrieval, mode=self.retrieval_mode
            ),
            # mmap/shards only make sense over a compiled artifact.
            "mmap_artifact": base.mmap_artifact and self.artifact_dir is not None,
            "shards": base.shards if self.artifact_dir is not None else 1,
        }
        if self.k > 0:
            overrides["k"] = self.k
        return dataclasses.replace(base, **overrides)


@dataclass(frozen=True)
class TenancyConfig:
    """The ``tenants`` section: named tenants plus registry-level knobs.

    Attributes
    ----------
    definitions:
        ``{tenant name: TenantConfig}``.  Empty (the default) keeps the
        deployment single-tenant — the pre-tenancy serving path,
        bit-identical responses included.
    default:
        Tenant served when a request names none; empty means requests
        must name a tenant explicitly (404 ``unknown_tenant``
        otherwise).
    max_loaded:
        LRU bound on concurrently loaded tenants (0 = unlimited); the
        least recently used loaded tenant is evicted — its service
        drained and dropped, its metrics retained — when loading
        another would exceed the bound.
    memory_budget_mb:
        Global memory budget over loaded tenants (0 = unlimited),
        accounted by each tenant's on-disk artifact/pipeline footprint;
        LRU eviction runs until the loaded set fits.
    """

    definitions: Mapping[str, TenantConfig] = field(default_factory=dict)
    default: str = ""
    max_loaded: int = 0
    memory_budget_mb: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.definitions, Mapping):
            raise ConfigurationError(
                "tenants definitions must be a mapping of name -> tenant "
                f"config, got {type(self.definitions).__name__}"
            )
        coerced: Dict[str, TenantConfig] = {}
        for name, body in self.definitions.items():
            if not isinstance(name, str) or not name:
                raise ConfigurationError(
                    f"tenant names must be non-empty strings, got {name!r}"
                )
            if set(name) - _TENANT_NAME_CHARS:
                raise ConfigurationError(
                    f"invalid tenant name {name!r}: use letters, digits, "
                    "'.', '_' and '-'"
                )
            if isinstance(body, TenantConfig):
                coerced[name] = body
            elif isinstance(body, Mapping):
                valid = {f.name for f in dataclasses.fields(TenantConfig)}
                unknown = sorted(set(body) - valid)
                if unknown:
                    raise ConfigurationError(
                        f"unknown key(s) {unknown} in tenant {name!r}; "
                        f"valid keys are {sorted(valid)}"
                    )
                coerced[name] = TenantConfig(**body)
            else:
                raise ConfigurationError(
                    f"tenant {name!r} must be a mapping or TenantConfig, "
                    f"got {type(body).__name__}"
                )
        object.__setattr__(self, "definitions", coerced)
        if self.default and self.default not in coerced:
            raise ConfigurationError(
                f"default tenant {self.default!r} is not declared; declared "
                f"tenants: {sorted(coerced)}"
            )
        if self.max_loaded < 0:
            raise ConfigurationError(
                f"max_loaded must be >= 0 (0 = unlimited), got "
                f"{self.max_loaded}"
            )
        if self.memory_budget_mb < 0:
            raise ConfigurationError(
                "memory_budget_mb must be >= 0 (0 = unlimited), got "
                f"{self.memory_budget_mb}"
            )

    @property
    def enabled(self) -> bool:
        """True when at least one tenant is declared."""
        return bool(self.definitions)


@dataclass(frozen=True)
class RuntimeConfig:
    """The six configuration sections behind one typed envelope.

    Every entry point (CLI flags, serving, config files, tests) builds
    its configs through this class, so there is exactly one place where
    raw mappings become validated dataclasses.  Round-trips losslessly
    through :meth:`to_dict`/:meth:`from_dict`; :meth:`from_file` reads
    the same shape from JSON.  Unknown section names and unknown keys
    inside a section are **rejected** with a :class:`ConfigurationError`
    naming the offender — a typo in a config file must fail loudly, not
    silently fall back to a default.
    """

    model: ComAidConfig = field(default_factory=ComAidConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    linker: LinkerConfig = field(default_factory=LinkerConfig)
    serving: ServingConfig = field(default_factory=ServingConfig)
    lifecycle: LifecycleConfig = field(default_factory=LifecycleConfig)
    tenants: TenancyConfig = field(default_factory=TenancyConfig)

    #: Section name → dataclass, the single source of truth for the
    #: envelope shape (from_dict validation and to_dict ordering).
    SECTIONS: ClassVar[Dict[str, type]] = {
        "model": ComAidConfig,
        "training": TrainingConfig,
        "linker": LinkerConfig,
        "serving": ServingConfig,
        "lifecycle": LifecycleConfig,
        "tenants": TenancyConfig,
    }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RuntimeConfig":
        """Build from a ``{section: {key: value}}`` mapping.

        Absent sections take their defaults.  Unknown sections, unknown
        keys within a section, and non-mapping section bodies raise
        :class:`ConfigurationError`; value validation is then delegated
        to each dataclass's ``__post_init__``.
        """
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"config must be a mapping of sections, got "
                f"{type(payload).__name__}"
            )
        unknown_sections = sorted(set(payload) - set(cls.SECTIONS))
        if unknown_sections:
            raise ConfigurationError(
                f"unknown config section(s) {unknown_sections}; valid "
                f"sections are {sorted(cls.SECTIONS)}"
            )
        built: Dict[str, Any] = {}
        for section, section_cls in cls.SECTIONS.items():
            body = payload.get(section)
            if body is None:
                built[section] = section_cls()
                continue
            if isinstance(body, section_cls):
                built[section] = body
                continue
            if not isinstance(body, Mapping):
                raise ConfigurationError(
                    f"config section {section!r} must be a mapping, got "
                    f"{type(body).__name__}"
                )
            valid = {f.name for f in dataclasses.fields(section_cls)}
            unknown_keys = sorted(set(body) - valid)
            if unknown_keys:
                raise ConfigurationError(
                    f"unknown key(s) {unknown_keys} in config section "
                    f"{section!r}; valid keys are {sorted(valid)}"
                )
            built[section] = section_cls(**body)
        return cls(**built)

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready ``{section: {key: value}}`` (from_dict round-trip)."""
        return {
            section: dataclasses.asdict(getattr(self, section))
            for section in self.SECTIONS
        }

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "RuntimeConfig":
        """Load a JSON config file shaped like :meth:`to_dict` output."""
        source = Path(path)
        try:
            text = source.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read config file {source}: {exc}"
            ) from exc
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"config file {source} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(payload)

    def replace_section(self, section: str, **overrides: Any) -> "RuntimeConfig":
        """A copy with ``overrides`` applied inside one section.

        The CLI layers flag values over a ``--config`` file with this;
        unknown keys are rejected exactly as in :meth:`from_dict`.
        """
        if section not in self.SECTIONS:
            raise ConfigurationError(
                f"unknown config section {section!r}; valid sections are "
                f"{sorted(self.SECTIONS)}"
            )
        section_cls = self.SECTIONS[section]
        valid = {f.name for f in dataclasses.fields(section_cls)}
        unknown_keys = sorted(set(overrides) - valid)
        if unknown_keys:
            raise ConfigurationError(
                f"unknown key(s) {unknown_keys} in config section "
                f"{section!r}; valid keys are {sorted(valid)}"
            )
        updated = dataclasses.replace(getattr(self, section), **overrides)
        return dataclasses.replace(self, **{section: updated})
