"""Feedback controller (paper Appendix A — the "Timon" workflow).

The controller inspects each link result's loss profile and pools the
*uncertain* ones for expert review.  Two uncertainty signals (A.1):

* the top candidate's ``Loss = -log p(q|c;Θ)`` is high (the model
  cannot decode the query well from any candidate), or
* the standard deviation of the top-k losses is low (the candidates
  are indistinguishable).

Experts resolve pooled queries to concepts; resolved feedback becomes
new labeled training data, and once enough accumulates the controller
triggers incremental retraining — after which representations shift as
the Figure 10 snapshots show.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.linker import LinkResult
from repro.kb.knowledge_base import KnowledgeBase, TrainingPair
from repro.text.tokenize import normalize_text
from repro.utils.errors import ConfigurationError, DataError
from repro.utils.logging import get_logger

logger = get_logger("core.feedback")

RetrainHook = Callable[[Sequence[TrainingPair]], None]


@dataclass(frozen=True)
class FeedbackItem:
    """A pooled uncertain query awaiting expert resolution."""

    query: str
    candidate_cids: Tuple[str, ...]
    losses: Tuple[float, ...]


@dataclass
class UncertaintyAssessment:
    """Why a link result was (or was not) pooled."""

    top_loss: float
    loss_std: float
    uncertain: bool
    reason: str


class FeedbackController:
    """Pool uncertain linkages, collect expert labels, trigger retraining.

    Parameters
    ----------
    kb:
        The knowledge base feedback is appended to (as new aliases).
    loss_threshold:
        Pool when the best candidate's loss exceeds this.
    std_threshold:
        Pool when the loss standard deviation across candidates falls
        below this (candidates indistinguishable).
    retrain_after:
        Number of resolved feedback items that triggers the retrain
        hook (paper: "if the number of newly appended labeled training
        data entries exceeds a threshold, COM-AID will be re-trained").
    retrain_hook:
        Called with the accumulated :class:`TrainingPair` list; wire it
        to ``ComAidTrainer.continue_training``.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        loss_threshold: float = 10.0,
        std_threshold: float = 0.5,
        retrain_after: int = 10,
        retrain_hook: Optional[RetrainHook] = None,
        pool_limit: int = 1000,
    ) -> None:
        if loss_threshold <= 0:
            raise ConfigurationError(
                f"loss_threshold must be positive, got {loss_threshold}"
            )
        if std_threshold < 0:
            raise ConfigurationError(
                f"std_threshold must be >= 0, got {std_threshold}"
            )
        if retrain_after < 1:
            raise ConfigurationError(
                f"retrain_after must be >= 1, got {retrain_after}"
            )
        if pool_limit < 1:
            raise ConfigurationError(f"pool_limit must be >= 1, got {pool_limit}")
        self.kb = kb
        self.loss_threshold = loss_threshold
        self.std_threshold = std_threshold
        self.retrain_after = retrain_after
        self.retrain_hook = retrain_hook
        self.pool_limit = pool_limit
        self._pool: List[FeedbackItem] = []
        self._pending_pairs: List[TrainingPair] = []
        self._retrain_count = 0

    # -- uncertainty ----------------------------------------------------------

    def assess(self, result: LinkResult) -> UncertaintyAssessment:
        """Evaluate the two uncertainty signals for one link result."""
        if not result.ranked:
            return UncertaintyAssessment(
                top_loss=float("inf"),
                loss_std=0.0,
                uncertain=True,
                reason="no candidates retrieved",
            )
        losses = [candidate.loss for candidate in result.ranked]
        top_loss = losses[0]
        loss_std = statistics.pstdev(losses) if len(losses) > 1 else 0.0
        if top_loss > self.loss_threshold:
            return UncertaintyAssessment(
                top_loss, loss_std, True,
                f"top loss {top_loss:.2f} > threshold {self.loss_threshold}",
            )
        if len(losses) > 1 and loss_std < self.std_threshold:
            return UncertaintyAssessment(
                top_loss, loss_std, True,
                f"loss std {loss_std:.3f} < threshold {self.std_threshold}",
            )
        return UncertaintyAssessment(top_loss, loss_std, False, "confident")

    def submit(self, result: LinkResult) -> bool:
        """Pool ``result`` when uncertain; returns True if pooled."""
        assessment = self.assess(result)
        if not assessment.uncertain:
            return False
        if len(self._pool) >= self.pool_limit:
            logger.warning("feedback pool full; dropping query %r", result.query)
            return False
        self._pool.append(
            FeedbackItem(
                query=result.query,
                candidate_cids=tuple(c.cid for c in result.ranked),
                losses=tuple(c.loss for c in result.ranked),
            )
        )
        return True

    # -- expert resolution -------------------------------------------------------

    @property
    def pool(self) -> Tuple[FeedbackItem, ...]:
        return tuple(self._pool)

    @property
    def pending_pairs(self) -> Tuple[TrainingPair, ...]:
        return tuple(self._pending_pairs)

    @property
    def retrain_count(self) -> int:
        return self._retrain_count

    def resolve(self, query: str, cid: str) -> TrainingPair:
        """Record an expert's linking of a pooled query to ``cid``.

        The feedback is appended to the knowledge base as a new alias
        (Figure 9(c): a new entry appended to the concept descriptions)
        and staged for retraining.  The expert may type a concept not in
        the candidate list; it must exist in the ontology.
        """
        concept = self.kb.ontology.get(cid)
        normalized = normalize_text(query)
        if not normalized:
            raise DataError("feedback query normalised to an empty string")
        self.kb.add_alias(cid, normalized)
        pair = TrainingPair(
            cid=cid,
            canonical=normalize_text(concept.description),
            alias=normalized,
        )
        self._pending_pairs.append(pair)
        self._pool = [item for item in self._pool if item.query != query]
        if len(self._pending_pairs) >= self.retrain_after:
            self._trigger_retrain()
        return pair

    def _trigger_retrain(self) -> None:
        pairs = list(self._pending_pairs)
        self._pending_pairs.clear()
        self._retrain_count += 1
        logger.info(
            "feedback retrain #%d triggered with %d pairs",
            self._retrain_count,
            len(pairs),
        )
        if self.retrain_hook is not None:
            self.retrain_hook(pairs)

    def flush(self) -> int:
        """Force retraining on whatever feedback is pending.

        Returns the number of pairs handed to the hook (0 if none).
        """
        count = len(self._pending_pairs)
        if count:
            self._trigger_retrain()
        return count
