"""Timon: the expert feedback-collection frontend (paper Appendix A).

The paper's Figure 9 shows Timon's workflow: pooled uncertain queries
are rendered into "a generated web page" where each query is shown with
its candidate concepts (and their canonical descriptions and losses);
the domain expert either selects a candidate or types a new concept
code, and the selections are appended to the labeled training data.

This module reproduces that artifact pipeline for an offline setting:

* :func:`render_review_page` — emit a static, self-contained HTML page
  for a batch of pooled :class:`FeedbackItem` objects;
* :func:`parse_review_csv` — read the expert's filled-in decisions back
  from a simple ``query,cid`` CSV (the spreadsheet-shaped equivalent of
  the web form POST) and resolve them through a
  :class:`FeedbackController`.
"""

from __future__ import annotations

import csv
import html
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from repro.core.feedback import FeedbackController, FeedbackItem
from repro.kb.knowledge_base import TrainingPair
from repro.ontology.ontology import Ontology
from repro.utils.errors import DataError
from repro.utils.logging import get_logger

logger = get_logger("core.timon")

PathLike = Union[str, Path]

_PAGE_TEMPLATE = """<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Timon — concept linking review</title>
<style>
body {{ font-family: sans-serif; margin: 2rem; }}
table {{ border-collapse: collapse; margin-bottom: 2rem; }}
th, td {{ border: 1px solid #999; padding: 0.3rem 0.6rem; text-align: left; }}
caption {{ font-weight: bold; text-align: left; padding-bottom: 0.4rem; }}
input[type=text] {{ width: 10rem; }}
</style>
</head>
<body>
<h1>Timon — uncertain concept linkings ({count})</h1>
<p>For each query, select the correct concept or type a new concept
code in the free-text field, then export your decisions as a
<code>query,cid</code> CSV.</p>
{tables}
</body>
</html>
"""

_TABLE_TEMPLATE = """<table>
<caption>{index}. query: <code>{query}</code></caption>
<tr><th>select</th><th>concept</th><th>canonical description</th><th>loss</th></tr>
{rows}
<tr><td></td><td colspan="3">other concept:
<input type="text" name="other-{index}" placeholder="e.g. N63.0"></td></tr>
</table>
"""


def render_review_page(
    items: Sequence[FeedbackItem],
    ontology: Ontology,
    path: PathLike,
    max_candidates: int = 5,
) -> int:
    """Write a static Timon review page for ``items``; returns the
    number of queries rendered.

    Unknown candidate cids (possible after ontology edits) are skipped
    rather than failing the whole page.
    """
    if max_candidates < 1:
        raise DataError(f"max_candidates must be >= 1, got {max_candidates}")
    tables: List[str] = []
    for index, item in enumerate(items, start=1):
        rows: List[str] = []
        for cid, loss in list(zip(item.candidate_cids, item.losses))[
            :max_candidates
        ]:
            try:
                description = ontology.get(cid).description
            except KeyError:
                logger.warning("Timon: skipping unknown concept %r", cid)
                continue
            rows.append(
                "<tr>"
                f'<td><input type="radio" name="q{index}" value="{html.escape(cid)}"></td>'
                f"<td><code>{html.escape(cid)}</code></td>"
                f"<td>{html.escape(description)}</td>"
                f"<td>{loss:.2f}</td>"
                "</tr>"
            )
        tables.append(
            _TABLE_TEMPLATE.format(
                index=index,
                query=html.escape(item.query),
                rows="\n".join(rows),
            )
        )
    page = _PAGE_TEMPLATE.format(count=len(items), tables="\n".join(tables))
    Path(path).write_text(page, encoding="utf-8")
    return len(items)


def parse_review_csv(
    controller: FeedbackController, path: PathLike
) -> Tuple[List[TrainingPair], List[str]]:
    """Apply expert decisions from a ``query,cid`` CSV.

    Returns ``(resolved_pairs, rejected_lines)``: rows referencing
    unknown concepts or empty queries are collected instead of raised,
    so one typo does not lose a whole review session.  A header row
    ``query,cid`` is tolerated.
    """
    resolved: List[TrainingPair] = []
    rejected: List[str] = []
    with open(path, newline="", encoding="utf-8") as handle:
        for row in csv.reader(handle):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) < 2:
                rejected.append(",".join(row))
                continue
            query, cid = row[0].strip(), row[1].strip()
            if (query.lower(), cid.lower()) == ("query", "cid"):
                continue  # header
            try:
                resolved.append(controller.resolve(query, cid))
            except (KeyError, DataError) as exc:
                logger.warning("Timon: rejecting row %r (%s)", row, exc)
                rejected.append(",".join(row))
    return resolved, rejected
