"""Tree-structured concept ontology.

Paper Section 2.1: an ontology ``O = <C, E>`` is a tree with concepts as
nodes and *sub-concept* edges; a **fine-grained concept** is a concept
without sub-concepts (a leaf).  Queries are only ever linked to
fine-grained concepts.

The tree is rooted at a virtual root so that forests (e.g. the disjoint
ICD chapters) form one ontology; the virtual root never appears in
structural contexts (Definition 4.1 excludes the root from first-level
duplication).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.ontology.concept import Concept
from repro.utils.errors import DataError

ROOT_CID = "<root>"


class Ontology:
    """A rooted tree of :class:`Concept` nodes with sub-concept edges.

    Build with :meth:`add` (parent must exist or be ``None`` for a
    first-level concept), or in bulk with :meth:`from_edges`.
    """

    def __init__(self) -> None:
        self._concepts: Dict[str, Concept] = {}
        self._parent: Dict[str, Optional[str]] = {}
        self._children: Dict[str, List[str]] = {}
        self._depth: Dict[str, int] = {}

    # -- construction -------------------------------------------------

    def add(self, concept: Concept, parent_cid: Optional[str] = None) -> None:
        """Insert ``concept`` as a child of ``parent_cid`` (or top level)."""
        if concept.cid == ROOT_CID:
            raise DataError(f"cid {ROOT_CID!r} is reserved for the virtual root")
        if concept.cid in self._concepts:
            raise DataError(f"duplicate concept cid {concept.cid!r}")
        if parent_cid is not None and parent_cid not in self._concepts:
            raise DataError(
                f"parent {parent_cid!r} of {concept.cid!r} is not in the ontology"
            )
        self._concepts[concept.cid] = concept
        self._parent[concept.cid] = parent_cid
        self._children[concept.cid] = []
        if parent_cid is None:
            self._depth[concept.cid] = 1
        else:
            self._children[parent_cid].append(concept.cid)
            self._depth[concept.cid] = self._depth[parent_cid] + 1

    @classmethod
    def from_edges(
        cls,
        concepts: Iterable[Concept],
        edges: Iterable[Tuple[str, str]],
    ) -> "Ontology":
        """Build from a concept list and ``(parent, child)`` edges.

        Concepts may arrive in any order; the method topologically
        inserts them.  Cycles and multi-parent nodes raise
        :class:`DataError`.
        """
        concept_map = {concept.cid: concept for concept in concepts}
        parent_of: Dict[str, str] = {}
        for parent, child in edges:
            if parent not in concept_map:
                raise DataError(f"edge references unknown parent {parent!r}")
            if child not in concept_map:
                raise DataError(f"edge references unknown child {child!r}")
            if child in parent_of:
                raise DataError(f"concept {child!r} has multiple parents")
            parent_of[child] = parent

        ontology = cls()
        inserted: set = set()

        def insert(cid: str, trail: Tuple[str, ...]) -> None:
            if cid in inserted:
                return
            if cid in trail:
                cycle = " -> ".join(trail + (cid,))
                raise DataError(f"ontology edges contain a cycle: {cycle}")
            parent = parent_of.get(cid)
            if parent is not None:
                insert(parent, trail + (cid,))
            ontology.add(concept_map[cid], parent)
            inserted.add(cid)

        for cid in concept_map:
            insert(cid, ())
        return ontology

    # -- structure queries ---------------------------------------------

    def __len__(self) -> int:
        return len(self._concepts)

    def __contains__(self, cid: str) -> bool:
        return cid in self._concepts

    def __iter__(self) -> Iterator[Concept]:
        return iter(self._concepts.values())

    def get(self, cid: str) -> Concept:
        """The concept with ``cid`` (KeyError when unknown)."""
        concept = self._concepts.get(cid)
        if concept is None:
            raise KeyError(f"unknown concept {cid!r}")
        return concept

    def parent_of(self, cid: str) -> Optional[Concept]:
        """Parent concept, or ``None`` for first-level concepts."""
        parent_cid = self._parent[self.get(cid).cid]
        return self._concepts[parent_cid] if parent_cid is not None else None

    def children_of(self, cid: str) -> Tuple[Concept, ...]:
        """Immediate sub-concepts of ``cid``, in insertion order."""
        self.get(cid)
        return tuple(self._concepts[child] for child in self._children[cid])

    def is_fine_grained(self, cid: str) -> bool:
        """True when ``cid`` has no sub-concepts (paper Section 2.1)."""
        self.get(cid)
        return not self._children[cid]

    def fine_grained(self) -> Tuple[Concept, ...]:
        """All fine-grained (leaf) concepts, in insertion order."""
        return tuple(
            concept
            for cid, concept in self._concepts.items()
            if not self._children[cid]
        )

    def depth_of(self, cid: str) -> int:
        """1-based depth: first-level concepts have depth 1."""
        self.get(cid)
        return self._depth[cid]

    def max_depth(self) -> int:
        """Depth of the deepest concept (0 for an empty ontology)."""
        return max(self._depth.values(), default=0)

    def ancestors_of(self, cid: str) -> Tuple[Concept, ...]:
        """Ancestors from the immediate parent up to the first level.

        The virtual root is never included.
        """
        self.get(cid)
        chain: List[Concept] = []
        current = self._parent[cid]
        while current is not None:
            chain.append(self._concepts[current])
            current = self._parent[current]
        return tuple(chain)

    def roots(self) -> Tuple[Concept, ...]:
        """First-level concepts (children of the virtual root)."""
        return tuple(
            concept
            for cid, concept in self._concepts.items()
            if self._parent[cid] is None
        )

    def subtree_of(self, cid: str) -> Tuple[Concept, ...]:
        """``cid`` plus all of its descendants, preorder."""
        self.get(cid)
        ordered: List[Concept] = []
        stack = [cid]
        while stack:
            current = stack.pop()
            ordered.append(self._concepts[current])
            stack.extend(reversed(self._children[current]))
        return tuple(ordered)

    def restricted_to(self, cids: Sequence[str]) -> "Ontology":
        """A new ontology containing ``cids`` and all their ancestors.

        Used by the robustness study (Figure 13a), which varies the
        considered concept fraction while keeping the tree well-formed.
        """
        keep: set = set()
        for cid in cids:
            self.get(cid)
            keep.add(cid)
            keep.update(ancestor.cid for ancestor in self.ancestors_of(cid))
        restricted = Ontology()

        def insert(cid: str) -> None:
            if cid in restricted:
                return
            parent = self._parent[cid]
            if parent is not None:
                insert(parent)
            restricted.add(self._concepts[cid], parent)

        for cid in self._concepts:  # preserves insertion order
            if cid in keep:
                insert(cid)
        return restricted

    def describe(self) -> Dict[str, int]:
        """Summary statistics (used in dataset cards and reports)."""
        return {
            "concepts": len(self),
            "fine_grained": len(self.fine_grained()),
            "max_depth": self.max_depth(),
            "roots": len(self.roots()),
        }
