"""Ontology substrate: concepts, the tree-structured ontology with
sub-concept edges, structural-context paths (paper Definition 4.1), and
synthetic ICD-9-CM / ICD-10-CM style ontology builders.
"""

from repro.ontology.concept import Concept
from repro.ontology.icd import (
    SyntheticIcdSpec,
    build_icd10_like_ontology,
    build_icd9_like_ontology,
)
from repro.ontology.loaders import load_ontology_json, save_ontology_json
from repro.ontology.ontology import Ontology
from repro.ontology.paths import structural_context

__all__ = [
    "Concept",
    "Ontology",
    "SyntheticIcdSpec",
    "build_icd10_like_ontology",
    "build_icd9_like_ontology",
    "load_ontology_json",
    "save_ontology_json",
    "structural_context",
]
