"""The concept data type.

Paper Section 2.1: *"A concept c = {cid, d^c}, where cid is the unique
identifier for c in KB, and d^c is a text snippet describing c"* — the
canonical description, modelled as a word sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.text.tokenize import tokenize
from repro.utils.errors import DataError


@dataclass(frozen=True)
class Concept:
    """A knowledge-base concept: identifier plus canonical description.

    Attributes
    ----------
    cid:
        Unique identifier, e.g. the ICD-10-CM code ``"N18.5"``.
    description:
        Canonical description text, e.g.
        ``"chronic kidney disease, stage 5"``.
    words:
        The tokenised canonical description (derived; cached at
        construction so encoders never re-tokenise).
    """

    cid: str
    description: str
    words: Tuple[str, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if not self.cid:
            raise DataError("concept cid must be non-empty")
        if not self.description or not self.description.strip():
            raise DataError(f"concept {self.cid!r} has an empty description")
        if not self.words:
            object.__setattr__(self, "words", tuple(tokenize(self.description)))
        if not self.words:
            raise DataError(
                f"concept {self.cid!r} description {self.description!r} "
                "tokenised to nothing"
            )

    def __str__(self) -> str:
        return f"{self.cid}: {self.description}"
