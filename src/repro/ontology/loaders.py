"""Ontology persistence (JSON interchange format).

The on-disk format is intentionally simple so that a user with a real
ICD-10-CM / UMLS licence can export their ontology into it and run the
full pipeline on real data:

.. code-block:: json

    {
      "concepts": [{"cid": "N18", "description": "chronic kidney disease"},
                   {"cid": "N18.5", "description": "... stage 5"}],
      "edges": [["N18", "N18.5"]]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.ontology.concept import Concept
from repro.ontology.ontology import Ontology
from repro.ontology.paths import validate_tree
from repro.utils.errors import DataError

PathLike = Union[str, Path]


def save_ontology_json(ontology: Ontology, path: PathLike) -> None:
    """Write ``ontology`` to ``path`` as JSON."""
    concepts = [
        {"cid": concept.cid, "description": concept.description}
        for concept in ontology
    ]
    edges = []
    for concept in ontology:
        parent = ontology.parent_of(concept.cid)
        if parent is not None:
            edges.append([parent.cid, concept.cid])
    payload = {"concepts": concepts, "edges": edges}
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_ontology_json(path: PathLike) -> Ontology:
    """Load an ontology from JSON written by :func:`save_ontology_json`.

    The loaded tree is validated (depths, acyclicity) before being
    returned; malformed files raise :class:`DataError`.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DataError(f"ontology file {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise DataError(f"ontology file {path} must contain a JSON object")
    try:
        raw_concepts = payload["concepts"]
        raw_edges = payload["edges"]
    except KeyError as exc:
        raise DataError(f"ontology file {path} missing key {exc}") from exc
    concepts = [
        Concept(cid=str(entry["cid"]), description=str(entry["description"]))
        for entry in raw_concepts
    ]
    edges = [(str(parent), str(child)) for parent, child in raw_edges]
    ontology = Ontology.from_edges(concepts, edges)
    validate_tree(ontology)
    return ontology
