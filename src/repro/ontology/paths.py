"""Structural context paths (paper Definition 4.1).

Given a depth ``β`` and a concept ``c_l``, the structural context of
``c_l`` is the ancestor path ``<c_l, c_{l-1}, ..., c_{l-β}>``.  When the
concept sits at a level ``l < β`` (fewer ancestors than requested), the
first-level concept (excluding the virtual root) is duplicated until the
path reaches length ``β``.

Example (Figure 1(b)): with ``β = 1`` the structural context of D50.0 is
``<D50.0, D50>``; with ``β = 3`` it is ``<D50.0, D50, D50, D50>``
because D50 is already first-level.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ontology.concept import Concept
from repro.ontology.ontology import Ontology
from repro.utils.errors import ConfigurationError, DataError


def structural_context(
    ontology: Ontology, cid: str, beta: int
) -> Tuple[Concept, ...]:
    """The ancestor path ``<c_l, c_{l-1}, ..., c_{l-β}>`` of ``cid``.

    The returned tuple has length ``β + 1`` (the concept itself plus β
    ancestors), padding by duplicating the first-level ancestor when the
    concept is too shallow.

    Parameters
    ----------
    ontology:
        The concept tree.
    cid:
        The concept whose context is requested (need not be
        fine-grained, although only fine-grained concepts are linked).
    beta:
        Context depth β >= 0.  β = 0 yields just ``(concept,)``.
    """
    if beta < 0:
        raise ConfigurationError(f"beta must be >= 0, got {beta}")
    concept = ontology.get(cid)
    ancestors = ontology.ancestors_of(cid)
    path: List[Concept] = [concept]
    path.extend(ancestors[:beta])
    if len(path) < beta + 1:
        # Duplicate the first-level concept (the last real element of
        # the chain; the concept itself when it is first-level).
        filler = path[-1]
        if ancestors:
            filler = ancestors[-1]
        while len(path) < beta + 1:
            path.append(filler)
    return tuple(path)


def context_cids(ontology: Ontology, cid: str, beta: int) -> Tuple[str, ...]:
    """Like :func:`structural_context` but returning cids only."""
    return tuple(concept.cid for concept in structural_context(ontology, cid, beta))


def validate_tree(ontology: Ontology) -> None:
    """Sanity-check structural invariants of an ontology.

    Verifies that every concept's recorded depth equals one plus its
    parent's depth and that ancestor chains terminate.  Raises
    :class:`DataError` on violation.  The builders already maintain
    these invariants; this is a belt-and-braces check for ontologies
    loaded from external files.
    """
    for concept in ontology:
        parent = ontology.parent_of(concept.cid)
        depth = ontology.depth_of(concept.cid)
        if parent is None:
            if depth != 1:
                raise DataError(
                    f"first-level concept {concept.cid!r} has depth {depth}"
                )
        else:
            parent_depth = ontology.depth_of(parent.cid)
            if depth != parent_depth + 1:
                raise DataError(
                    f"concept {concept.cid!r} depth {depth} != parent "
                    f"{parent.cid!r} depth {parent_depth} + 1"
                )
        chain = ontology.ancestors_of(concept.cid)
        if len(chain) != depth - 1:
            raise DataError(
                f"concept {concept.cid!r}: ancestor chain length "
                f"{len(chain)} inconsistent with depth {depth}"
            )
