"""Synthetic ICD-9-CM / ICD-10-CM style ontology builders.

The paper evaluates on the real ICD-9-CM (17,418 concepts) and
ICD-10-CM (93,830 concepts) ontologies distributed with UMLS, which are
licensed artifacts we cannot ship.  These builders generate ontologies
with the same *shape*:

* ICD-10-CM-like: alphanumeric codes ``X12``, ``X12.3``, ``X12.34``
  (up to three levels below the chapter), longer canonical
  descriptions, many fine-grained leaves per category;
* ICD-9-CM-like: numeric codes ``123``, ``123.4`` (shallower), shorter
  canonical descriptions and fewer leaves — the paper attributes the
  hospital-x vs MIMIC timing gap exactly to this description-length
  difference (Appendix B.1).

Descriptions are composed from a clinical lexicon of disease families,
anatomical sites, and severity/etiology qualifiers, so that sibling
leaves exhibit the *fine-grained meaning overlap* the paper targets
(e.g. several anemia variants differing only in their qualifier), and
different families provide the vocabulary spread the keyword matcher
needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.ontology.concept import Concept
from repro.ontology.ontology import Ontology
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class DiseaseFamily:
    """One chapter-like family of related conditions.

    ``conditions`` are category-level noun phrases; ``sites`` optionally
    extend them ("gastritis" -> "gastritis of stomach" is clinically
    redundant, so sites are only attached where ``attach_sites``).
    """

    letter: str
    name: str
    conditions: Tuple[str, ...]
    sites: Tuple[str, ...] = ()
    causes: Tuple[str, ...] = ()
    attach_sites: bool = False


# Qualifier pools for fine-grained leaves.  These phrases are the
# source of the paper's "minor concept meaning differences": siblings
# share the category description and differ only in one of these.
SEVERITY_QUALIFIERS: Tuple[str, ...] = (
    "unspecified", "mild", "moderate", "severe", "acute", "chronic",
    "recurrent", "intractable", "in remission",
)
STAGE_QUALIFIERS: Tuple[str, ...] = (
    "stage 1", "stage 2", "stage 3", "stage 4", "stage 5", "end stage",
)
COMPLICATION_QUALIFIERS: Tuple[str, ...] = (
    "with hemorrhage", "without hemorrhage", "with perforation",
    "with obstruction", "without complication", "with exacerbation",
    "with infection", "with ulceration", "with gangrene",
)
LATERALITY_QUALIFIERS: Tuple[str, ...] = (
    "right", "left", "bilateral", "unspecified side",
)

# Etiology/type modifiers prepended to long-style (ICD-10) category
# descriptions — real ICD-10-CM strings are long precisely because of
# these ("hypertensive chronic kidney disease", "alcoholic hepatitis
# with ascites").  Longer descriptions are what make the text-attention
# mechanism matter: a single final LSTM state cannot retain a 12-word
# description.
ETIOLOGY_MODIFIERS: Tuple[str, ...] = (
    "hypertensive", "diabetic", "alcoholic", "post traumatic",
    "congenital", "idiopathic", "drug induced", "radiation related",
    "postoperative", "hereditary",
)

DEFAULT_FAMILIES: Tuple[DiseaseFamily, ...] = (
    DiseaseFamily(
        letter="D", name="blood",
        conditions=(
            "iron deficiency anemia", "folate deficiency anemia",
            "vitamin b12 deficiency anemia", "protein deficiency anemia",
            "scorbutic anemia", "aplastic anemia", "hemolytic anemia",
            "sickle cell disorder", "thrombocytopenia", "neutropenia",
        ),
        causes=(
            "secondary to blood loss", "due to dietary causes",
            "due to enzyme deficiency", "due to drugs",
            "secondary to chronic disease",
        ),
    ),
    DiseaseFamily(
        letter="N", name="genitourinary",
        conditions=(
            "chronic kidney disease", "acute kidney failure",
            "nephrotic syndrome", "tubulo interstitial nephritis",
            "calculus of kidney", "cystitis", "urethral stricture",
            "benign mammary dysplasia", "disorder of breast",
            "glomerular disease",
        ),
        causes=(
            "due to hypertension", "due to diabetes",
            "with tubular necrosis", "due to infection",
        ),
    ),
    DiseaseFamily(
        letter="R", name="symptoms",
        conditions=(
            "abdominal and pelvic pain", "headache", "fever",
            "nausea and vomiting", "dizziness and giddiness", "dysuria",
            "malaise and fatigue", "syncope and collapse",
            "abnormal weight loss", "localized swelling",
        ),
        sites=("abdomen", "chest", "pelvis", "flank", "epigastrium"),
        attach_sites=True,
    ),
    DiseaseFamily(
        letter="I", name="circulatory",
        conditions=(
            "essential hypertension", "pulmonary hypertension",
            "acute myocardial infarction", "atrial fibrillation",
            "heart failure", "cerebral infarction", "angina pectoris",
            "cardiomyopathy", "atherosclerosis", "phlebitis and thrombophlebitis",
        ),
        causes=(
            "with congestive features", "due to ischemia",
            "with reduced ejection fraction", "with preserved ejection fraction",
        ),
    ),
    DiseaseFamily(
        letter="E", name="endocrine",
        conditions=(
            "type 1 diabetes mellitus", "type 2 diabetes mellitus",
            "hypothyroidism", "hyperthyroidism", "obesity",
            "disorder of lipoprotein metabolism", "vitamin d deficiency",
            "deficiency of other nutrient elements", "hypoglycemia",
            "electrolyte imbalance",
        ),
        causes=(
            "with neuropathy", "with nephropathy", "with retinopathy",
            "with ketoacidosis", "with hyperosmolarity",
        ),
    ),
    DiseaseFamily(
        letter="J", name="respiratory",
        conditions=(
            "acute bronchitis", "pneumonia", "asthma",
            "chronic obstructive pulmonary disease", "acute sinusitis",
            "pleural effusion", "bronchiectasis", "influenza",
            "acute tonsillitis", "respiratory failure",
        ),
        causes=(
            "due to bacterial infection", "due to viral infection",
            "with acute exacerbation",
        ),
    ),
    DiseaseFamily(
        letter="K", name="digestive",
        conditions=(
            "gastric ulcer", "duodenal ulcer", "gastritis",
            "polyp of colon", "malignant neoplasm of colon",
            "cholelithiasis", "acute pancreatitis", "alcoholic hepatitis",
            "irritable bowel syndrome", "diverticular disease",
        ),
    ),
    DiseaseFamily(
        letter="L", name="skin",
        conditions=(
            "atopic dermatitis", "contact dermatitis", "psoriasis",
            "cellulitis", "pressure ulcer", "urticaria",
            "dermatitis unspecified cause", "seborrheic dermatitis",
            "acne", "alopecia",
        ),
        sites=("face", "scalp", "trunk", "hand", "foot", "lower limb"),
        attach_sites=True,
    ),
    DiseaseFamily(
        letter="M", name="musculoskeletal",
        conditions=(
            "rheumatoid arthritis", "osteoarthritis", "gout",
            "low back pain", "osteoporosis", "myalgia",
            "spinal stenosis", "rotator cuff syndrome",
            "plantar fasciitis", "systemic lupus erythematosus",
        ),
        sites=("knee", "hip", "shoulder", "wrist", "ankle", "spine"),
        attach_sites=True,
    ),
    DiseaseFamily(
        letter="G", name="nervous",
        conditions=(
            "migraine", "epilepsy", "parkinson disease",
            "multiple sclerosis", "carpal tunnel syndrome",
            "peripheral neuropathy", "trigeminal neuralgia",
            "sleep apnea", "essential tremor", "bell palsy",
        ),
    ),
    DiseaseFamily(
        letter="C", name="neoplasms",
        conditions=(
            "malignant neoplasm of breast", "malignant neoplasm of lung",
            "malignant neoplasm of prostate", "malignant neoplasm of stomach",
            "benign neoplasm of skin", "benign neoplasm of testis",
            "carcinoma in situ of cervix", "lymphoma",
            "leukemia", "melanoma of skin",
        ),
        causes=("with metastasis", "without metastasis"),
    ),
    DiseaseFamily(
        letter="F", name="mental",
        conditions=(
            "major depressive disorder", "generalized anxiety disorder",
            "bipolar disorder", "schizophrenia", "panic disorder",
            "post traumatic stress disorder", "alcohol dependence",
            "opioid dependence", "insomnia disorder", "dementia",
        ),
    ),
)


@dataclass(frozen=True)
class SyntheticIcdSpec:
    """Parameters for synthetic ontology generation.

    Attributes
    ----------
    families:
        Disease families to draw categories from.
    categories_per_family:
        How many category (level-2) concepts each family contributes;
        capped by the family's condition count.
    leaves_per_category:
        Fine-grained sub-concepts per category.
    deep_fraction:
        Fraction of categories that gain an intermediate level (depth-4
        codes like ``L20.84``), ICD-10 style.
    numeric_codes:
        ICD-9 style numeric codes (``585.6``) instead of alphanumeric.
    description_style:
        ``"long"`` (ICD-10-like: qualifiers spliced into full phrases)
        or ``"short"`` (ICD-9-like: terser descriptions).
    """

    families: Tuple[DiseaseFamily, ...] = DEFAULT_FAMILIES
    categories_per_family: int = 6
    leaves_per_category: int = 5
    deep_fraction: float = 0.25
    numeric_codes: bool = False
    description_style: str = "long"

    def __post_init__(self) -> None:
        if self.categories_per_family < 1:
            raise ConfigurationError(
                f"categories_per_family must be >= 1, got "
                f"{self.categories_per_family}"
            )
        if self.leaves_per_category < 1:
            raise ConfigurationError(
                f"leaves_per_category must be >= 1, got {self.leaves_per_category}"
            )
        if not 0.0 <= self.deep_fraction <= 1.0:
            raise ConfigurationError(
                f"deep_fraction must be in [0, 1], got {self.deep_fraction}"
            )
        if self.description_style not in ("long", "short"):
            raise ConfigurationError(
                f"description_style must be 'long' or 'short', got "
                f"{self.description_style!r}"
            )
        if not self.families:
            raise ConfigurationError("at least one disease family is required")


def _qualifier_pool(
    family: DiseaseFamily, rng, condition: str
) -> List[str]:
    """Assemble the qualifier phrases available for one category."""
    pool: List[str] = list(SEVERITY_QUALIFIERS)
    if "kidney" in condition or "disease" in condition:
        pool.extend(STAGE_QUALIFIERS)
    pool.extend(COMPLICATION_QUALIFIERS)
    pool.extend(family.causes)
    if family.sites and not family.attach_sites:
        pool.extend(f"of {site}" for site in family.sites)
    # Deterministic shuffle so sibling leaves differ per category.
    indices = rng.permutation(len(pool))
    return [pool[i] for i in indices]


def _leaf_description(base: str, qualifier: str, style: str) -> str:
    if style == "short":
        # ICD-9-like terseness: "anemia iron deficiency" style inversion
        # is overkill; just append the qualifier without connectives.
        return f"{base} {qualifier}"
    if qualifier.startswith(("with", "without", "due", "secondary", "in ", "of ")):
        return f"{base} {qualifier}"
    return f"{base}, {qualifier}"


def _compose_qualifiers(first: str, second: str) -> str:
    """Join two qualifiers the way ICD-10-CM strings do.

    "stage 5" + "with hemorrhage" -> "stage 5 with hemorrhage";
    "acute" + "recurrent" -> "acute, recurrent".
    """
    if second.startswith(("with", "without", "due", "secondary", "in ", "of ")):
        return f"{first} {second}"
    return f"{first}, {second}"


def build_synthetic_icd(
    spec: SyntheticIcdSpec, rng: RngLike = None
) -> Ontology:
    """Generate a synthetic ICD-style ontology from ``spec``.

    Level 1 holds one block concept per family (e.g. ``D50-D89`` style
    ranges in real ICD; here the family name), level 2 the categories,
    level 3 (and occasionally 4) the fine-grained leaves.
    """
    generator = ensure_rng(rng)
    ontology = Ontology()
    for family_index, family in enumerate(spec.families):
        n_categories = min(spec.categories_per_family, len(family.conditions))
        block_cid = _format_block_cid(family, family_index, spec.numeric_codes)
        ontology.add(
            Concept(cid=block_cid, description=f"diseases of the {family.name}")
        )
        condition_order = generator.permutation(len(family.conditions))
        for slot in range(n_categories):
            condition = family.conditions[int(condition_order[slot])]
            base = condition
            if family.attach_sites and family.sites:
                site = family.sites[int(generator.integers(len(family.sites)))]
                base = f"{condition} of {site}"
            if spec.description_style == "long" and generator.random() < 0.45:
                modifier = ETIOLOGY_MODIFIERS[
                    int(generator.integers(len(ETIOLOGY_MODIFIERS)))
                ]
                base = f"{modifier} {base}"
            category_cid = _format_category_cid(
                family, family_index, slot, spec.numeric_codes
            )
            ontology.add(
                Concept(cid=category_cid, description=base), parent_cid=block_cid
            )
            qualifiers = _qualifier_pool(family, generator, condition)
            deep = generator.random() < spec.deep_fraction
            parent_for_leaves = category_cid
            leaf_budget = spec.leaves_per_category
            if deep and leaf_budget >= 2:
                # Intermediate node consumes one qualifier; its leaves
                # get two-part qualifiers (ICD-10 5th character style).
                mid_qualifier = qualifiers[0]
                qualifiers = qualifiers[1:]
                mid_cid = f"{category_cid}.8"
                ontology.add(
                    Concept(
                        cid=mid_cid,
                        description=_leaf_description(
                            base, mid_qualifier, spec.description_style
                        ),
                    ),
                    parent_cid=category_cid,
                )
                parent_for_leaves = mid_cid
            for leaf_index in range(leaf_budget):
                qualifier = qualifiers[leaf_index % len(qualifiers)]
                if (
                    spec.description_style == "long"
                    and len(qualifiers) > 1
                    and generator.random() < 0.4
                ):
                    second = qualifiers[(leaf_index + 3) % len(qualifiers)]
                    if second != qualifier:
                        qualifier = _compose_qualifiers(qualifier, second)
                leaf_cid = _format_leaf_cid(
                    parent_for_leaves, leaf_index, deep, spec.numeric_codes
                )
                ontology.add(
                    Concept(
                        cid=leaf_cid,
                        description=_leaf_description(
                            base, qualifier, spec.description_style
                        ),
                    ),
                    parent_cid=parent_for_leaves,
                )
    return ontology


def _format_block_cid(family: DiseaseFamily, index: int, numeric: bool) -> str:
    if numeric:
        start = 100 + index * 50
        return f"{start}-{start + 49}"
    return f"{family.letter}00-{family.letter}99"


def _format_category_cid(
    family: DiseaseFamily, family_index: int, slot: int, numeric: bool
) -> str:
    if numeric:
        return str(100 + family_index * 50 + slot)
    return f"{family.letter}{slot + 10}"


def _format_leaf_cid(parent_cid: str, leaf_index: int, deep: bool, numeric: bool) -> str:
    if deep:
        # parent is e.g. "L20.8" -> leaves "L20.81", "L20.82", ...
        return f"{parent_cid}{leaf_index}"
    return f"{parent_cid}.{leaf_index}"


def build_icd10_like_ontology(
    rng: RngLike = None,
    categories_per_family: int = 6,
    leaves_per_category: int = 5,
    families: Optional[Sequence[DiseaseFamily]] = None,
) -> Ontology:
    """ICD-10-CM-shaped ontology: alphanumeric codes, long descriptions."""
    spec = SyntheticIcdSpec(
        families=tuple(families) if families is not None else DEFAULT_FAMILIES,
        categories_per_family=categories_per_family,
        leaves_per_category=leaves_per_category,
        deep_fraction=0.25,
        numeric_codes=False,
        description_style="long",
    )
    return build_synthetic_icd(spec, rng)


def build_icd9_like_ontology(
    rng: RngLike = None,
    categories_per_family: int = 5,
    leaves_per_category: int = 4,
    families: Optional[Sequence[DiseaseFamily]] = None,
) -> Ontology:
    """ICD-9-CM-shaped ontology: numeric codes, shorter descriptions."""
    spec = SyntheticIcdSpec(
        families=tuple(families) if families is not None else DEFAULT_FAMILIES,
        categories_per_family=categories_per_family,
        leaves_per_category=leaves_per_category,
        deep_fraction=0.0,
        numeric_codes=True,
        description_style="short",
    )
    return build_synthetic_icd(spec, rng)
