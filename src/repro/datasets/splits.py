"""Query grouping for evaluation.

Paper Section 6.1 (Queries): *"484 queries are packed into a group, and
the average accuracy/MRR values computed from 10 groups are reported.
84 purposely selected queries are contained in every group to cover
different cases (e.g., abbreviation, synonym, acronym, and
simplification); the rest are randomly chosen."*

:func:`make_query_groups` reproduces that protocol at any scale: the
purposive portion is stratified over noise channels (so every group
exercises every phenomenon), the remainder is sampled at random, and
groups share the purposive core while differing in their random tail —
exactly how the paper's groups are constructed.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.datasets.generator import LinkedQuery
from repro.utils.errors import ConfigurationError, DataError
from repro.utils.rng import RngLike, ensure_rng

# The phenomena the paper names for purposive coverage.
PURPOSIVE_PHENOMENA: Tuple[str, ...] = (
    "abbreviation",
    "synonym",
    "acronym",
    "simplification",
)


@dataclass(frozen=True)
class QueryGroup:
    """One evaluation group: a purposive core plus a random tail."""

    index: int
    queries: Tuple[LinkedQuery, ...]
    purposive_count: int

    def __len__(self) -> int:
        return len(self.queries)


def select_purposive(
    queries: Sequence[LinkedQuery],
    count: int,
    rng: RngLike = None,
    phenomena: Sequence[str] = PURPOSIVE_PHENOMENA,
) -> List[LinkedQuery]:
    """Pick ``count`` queries stratified across noise phenomena.

    Queries are bucketed by the channels that produced them; buckets are
    drained round-robin so each phenomenon contributes ~count/len(buckets)
    queries.  Falls back to arbitrary queries when a phenomenon has too
    few exemplars.
    """
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    if count > len(queries):
        raise DataError(
            f"cannot select {count} purposive queries from {len(queries)}"
        )
    generator = ensure_rng(rng)
    buckets: Dict[str, List[LinkedQuery]] = defaultdict(list)
    for query in queries:
        for channel in query.channels:
            if channel in phenomena:
                buckets[channel].append(query)
    for bucket in buckets.values():
        generator.shuffle(bucket)  # type: ignore[arg-type]

    selected: List[LinkedQuery] = []
    seen_ids: set = set()
    bucket_order = [name for name in phenomena if buckets.get(name)]
    position = 0
    while len(selected) < count and bucket_order:
        name = bucket_order[position % len(bucket_order)]
        bucket = buckets[name]
        while bucket:
            candidate = bucket.pop()
            if id(candidate) not in seen_ids:
                selected.append(candidate)
                seen_ids.add(id(candidate))
                break
        if not bucket:
            bucket_order.remove(name)
        else:
            position += 1
    if len(selected) < count:
        # Top up with arbitrary not-yet-selected queries.
        for query in queries:
            if len(selected) >= count:
                break
            if id(query) not in seen_ids:
                selected.append(query)
                seen_ids.add(id(query))
    return selected


def make_query_groups(
    queries: Sequence[LinkedQuery],
    n_groups: int = 10,
    group_size: int = 484,
    purposive_size: int = 84,
    rng: RngLike = None,
) -> List[QueryGroup]:
    """Build the paper's evaluation groups at any scale.

    Each group contains the *same* ``purposive_size`` stratified queries
    plus ``group_size - purposive_size`` random ones (sampled without
    replacement within a group, with replacement across groups).
    """
    if n_groups < 1:
        raise ConfigurationError(f"n_groups must be >= 1, got {n_groups}")
    if purposive_size > group_size:
        raise ConfigurationError(
            f"purposive_size {purposive_size} exceeds group_size {group_size}"
        )
    if group_size > len(queries):
        raise DataError(
            f"group_size {group_size} exceeds available queries {len(queries)}"
        )
    generator = ensure_rng(rng)
    purposive = select_purposive(queries, purposive_size, rng=generator)
    purposive_ids = {id(query) for query in purposive}
    remainder_pool = [query for query in queries if id(query) not in purposive_ids]
    tail_size = group_size - purposive_size
    if tail_size > len(remainder_pool):
        raise DataError(
            f"random tail of {tail_size} exceeds remaining pool "
            f"{len(remainder_pool)}"
        )
    groups: List[QueryGroup] = []
    for index in range(n_groups):
        chosen = generator.choice(len(remainder_pool), size=tail_size, replace=False)
        tail = [remainder_pool[int(i)] for i in chosen]
        groups.append(
            QueryGroup(
                index=index,
                queries=tuple(purposive) + tuple(tail),
                purposive_count=len(purposive),
            )
        )
    return groups


def channel_histogram(queries: Sequence[LinkedQuery]) -> Dict[str, int]:
    """How many queries each noise channel produced (diagnostics)."""
    histogram: Dict[str, int] = defaultdict(int)
    for query in queries:
        for channel in query.channels:
            histogram[channel] += 1
    return dict(histogram)
