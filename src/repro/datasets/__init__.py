"""Synthetic clinical datasets (hospital-x / MIMIC-III stand-ins).

The paper's evaluation corpora are proprietary (NUH hospital-x) or
credential-gated (MIMIC-III).  This package generates corpora with the
same statistical character: queries are derived from ontology concepts
through explicit, parameterised noise channels — abbreviation, acronym,
synonym substitution, simplification (word dropping), typos, and
numeric-style changes — exactly the phenomena ("various writing styles
or standards ... synonyms, acronyms, abbreviations, and simplifications
are prevalent") the paper's introduction motivates.
"""

from repro.datasets.generator import (
    DatasetBundle,
    LinkedQuery,
    build_large_scale_ontology,
    build_snomed_like_ontology,
    generate_dataset,
    hospital_x_like,
    iter_large_scale_concepts,
    large_scale_like,
    mimic_iii_like,
    snomed_like,
)
from repro.datasets.noise import (
    AbbreviationChannel,
    AcronymChannel,
    DanglingChannel,
    NoiseChannel,
    NoiseModel,
    NumericStyleChannel,
    ReorderChannel,
    SimplificationChannel,
    SynonymChannel,
    TypoChannel,
)
from repro.datasets.registry import DATASET_REGISTRY, get_dataset_builder
from repro.datasets.splits import QueryGroup, make_query_groups

__all__ = [
    "AbbreviationChannel",
    "AcronymChannel",
    "DATASET_REGISTRY",
    "DanglingChannel",
    "DatasetBundle",
    "LinkedQuery",
    "NoiseChannel",
    "NoiseModel",
    "NumericStyleChannel",
    "QueryGroup",
    "ReorderChannel",
    "SimplificationChannel",
    "SynonymChannel",
    "TypoChannel",
    "build_large_scale_ontology",
    "build_snomed_like_ontology",
    "generate_dataset",
    "get_dataset_builder",
    "hospital_x_like",
    "iter_large_scale_concepts",
    "large_scale_like",
    "make_query_groups",
    "mimic_iii_like",
    "snomed_like",
]
