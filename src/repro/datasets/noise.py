"""Noise channels that turn canonical descriptions into realistic
clinician-written snippets.

Each channel is a small, independently testable transformation on a
token sequence; :class:`NoiseModel` composes channels with per-channel
application probabilities and records which channels actually fired, so
the purposive query selection (paper Section 6.1: "84 purposely selected
queries ... to cover different cases (e.g., abbreviation, synonym,
acronym, and simplification)") can stratify by phenomenon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets import lexicon
from repro.utils.errors import ConfigurationError
from repro.utils.rng import RngLike, ensure_rng


class NoiseChannel:
    """Base class: a named, seeded token-sequence transformation.

    Subclasses implement :meth:`apply`, returning the transformed tokens
    or ``None`` when the channel does not apply to this input (e.g. no
    abbreviatable word present).  Channels never mutate their input.
    """

    name: str = "noise"

    def apply(
        self, tokens: Sequence[str], rng: np.random.Generator
    ) -> Optional[List[str]]:
        """Transform ``tokens``, or return ``None`` when not applicable."""
        raise NotImplementedError


class AbbreviationChannel(NoiseChannel):
    """Replace known words with clinical shorthand (``chronic -> chr``)."""

    name = "abbreviation"

    def __init__(self, max_replacements: int = 2) -> None:
        if max_replacements < 1:
            raise ConfigurationError(
                f"max_replacements must be >= 1, got {max_replacements}"
            )
        self.max_replacements = max_replacements

    def apply(
        self, tokens: Sequence[str], rng: np.random.Generator
    ) -> Optional[List[str]]:
        candidates = [
            index
            for index, token in enumerate(tokens)
            if token in lexicon.WORD_ABBREVIATIONS
        ]
        if not candidates:
            return None
        count = min(self.max_replacements, len(candidates))
        chosen = rng.choice(len(candidates), size=count, replace=False)
        result = list(tokens)
        for pick in chosen:
            index = candidates[int(pick)]
            options = lexicon.WORD_ABBREVIATIONS[tokens[index]]
            result[index] = options[int(rng.integers(len(options)))]
        return result


class AcronymChannel(NoiseChannel):
    """Collapse a known phrase into its acronym (``... -> ckd``)."""

    name = "acronym"

    def apply(
        self, tokens: Sequence[str], rng: np.random.Generator
    ) -> Optional[List[str]]:
        text = " ".join(tokens)
        # Longest matching phrase first so "type 2 diabetes mellitus"
        # beats "diabetes mellitus".
        phrases = sorted(lexicon.PHRASE_ACRONYMS, key=len, reverse=True)
        for phrase in phrases:
            if phrase in text:
                replaced = text.replace(phrase, lexicon.PHRASE_ACRONYMS[phrase], 1)
                return replaced.split()
        return None


class SynonymChannel(NoiseChannel):
    """Swap words or phrases for synonyms (``kidney -> renal``).

    Synonym replacement is the noise abbreviation-rule string joins
    cannot undo; ``max_replacements`` word-level swaps are applied after
    at most one phrase-level rewrite.
    """

    name = "synonym"

    def __init__(
        self,
        phrase_first: bool = True,
        max_replacements: int = 1,
        word_synonyms: Optional[Dict[str, Tuple[str, ...]]] = None,
        phrase_synonyms: Optional[Dict[str, Tuple[str, ...]]] = None,
    ) -> None:
        if max_replacements < 1:
            raise ConfigurationError(
                f"max_replacements must be >= 1, got {max_replacements}"
            )
        self.phrase_first = phrase_first
        self.max_replacements = max_replacements
        self.word_synonyms = (
            word_synonyms if word_synonyms is not None else lexicon.WORD_SYNONYMS
        )
        self.phrase_synonyms = (
            phrase_synonyms
            if phrase_synonyms is not None
            else lexicon.PHRASE_SYNONYMS
        )

    def apply(
        self, tokens: Sequence[str], rng: np.random.Generator
    ) -> Optional[List[str]]:
        current: Optional[List[str]] = None
        if self.phrase_first:
            current = self._apply_phrase(tokens, rng)
        base = current if current is not None else list(tokens)
        for _ in range(self.max_replacements):
            replaced = self._apply_word(base, rng)
            if replaced is None:
                break
            base = replaced
            current = replaced
        return current

    def _apply_phrase(
        self, tokens: Sequence[str], rng: np.random.Generator
    ) -> Optional[List[str]]:
        text = " ".join(tokens)
        matching = [
            phrase
            for phrase in sorted(self.phrase_synonyms, key=len, reverse=True)
            if phrase in text
        ]
        if not matching:
            return None
        phrase = matching[0]
        options = self.phrase_synonyms[phrase]
        if not options:
            return None
        replacement = options[int(rng.integers(len(options)))]
        return text.replace(phrase, replacement, 1).split()

    def _apply_word(
        self, tokens: Sequence[str], rng: np.random.Generator
    ) -> Optional[List[str]]:
        candidates = [
            index
            for index, token in enumerate(tokens)
            if self.word_synonyms.get(token)
        ]
        if not candidates:
            return None
        index = candidates[int(rng.integers(len(candidates)))]
        options = self.word_synonyms[tokens[index]]
        replacement = options[int(rng.integers(len(options)))]
        result = list(tokens)
        # Multi-word synonyms ("chest infection") splice in as tokens.
        result[index : index + 1] = replacement.split()
        return result


class SimplificationChannel(NoiseChannel):
    """Drop low-content words, clinician style (``..., unspecified`` -> gone)."""

    name = "simplification"

    def __init__(self, max_drops: int = 2, min_remaining: int = 1) -> None:
        if min_remaining < 1:
            raise ConfigurationError(
                f"min_remaining must be >= 1, got {min_remaining}"
            )
        self.max_drops = max_drops
        self.min_remaining = min_remaining

    def apply(
        self, tokens: Sequence[str], rng: np.random.Generator
    ) -> Optional[List[str]]:
        droppable = [
            index
            for index, token in enumerate(tokens)
            if token in lexicon.DROPPABLE_WORDS
        ]
        if not droppable:
            return None
        budget = min(self.max_drops, len(tokens) - self.min_remaining)
        if budget < 1:
            return None
        count = min(budget, len(droppable))
        chosen = set(
            droppable[int(i)]
            for i in rng.choice(len(droppable), size=count, replace=False)
        )
        return [token for index, token in enumerate(tokens) if index not in chosen]


class TypoChannel(NoiseChannel):
    """Introduce one character-level typo into a sufficiently long word.

    Edit kinds: deletion, adjacent transposition, or substitution with a
    nearby letter — the classes Damerau-Levenshtein rewriting repairs.
    """

    name = "typo"

    def __init__(self, min_word_length: int = 5) -> None:
        self.min_word_length = min_word_length

    def apply(
        self, tokens: Sequence[str], rng: np.random.Generator
    ) -> Optional[List[str]]:
        candidates = [
            index
            for index, token in enumerate(tokens)
            if len(token) >= self.min_word_length and token.isalpha()
        ]
        if not candidates:
            return None
        index = candidates[int(rng.integers(len(candidates)))]
        word = tokens[index]
        kind = int(rng.integers(3))
        position = int(rng.integers(1, len(word) - 1))
        if kind == 0:  # deletion
            mutated = word[:position] + word[position + 1 :]
        elif kind == 1:  # adjacent transposition
            mutated = (
                word[:position]
                + word[position + 1]
                + word[position]
                + word[position + 2 :]
            )
        else:  # substitution
            alphabet = "abcdefghijklmnopqrstuvwxyz"
            replacement = alphabet[int(rng.integers(len(alphabet)))]
            mutated = word[:position] + replacement + word[position + 1 :]
        if mutated == word:
            mutated = word[:position] + word[position + 1 :]
        result = list(tokens)
        result[index] = mutated
        return result


class NumericStyleChannel(NoiseChannel):
    """Rewrite ``stage 5`` as bare ``5`` (and type/grade/level likewise)."""

    name = "numeric_style"

    def apply(
        self, tokens: Sequence[str], rng: np.random.Generator
    ) -> Optional[List[str]]:
        for index in range(len(tokens) - 1):
            if (
                tokens[index] in lexicon.NUMERIC_HEAD_WORDS
                and tokens[index + 1].isdigit()
            ):
                return list(tokens[:index]) + list(tokens[index + 1 :])
        return None


class DanglingChannel(NoiseChannel):
    """Append a low-information clinical decoration.

    Reproduces the paper's "dangling words" observation: snippets like
    "breast lump *for investigation*" share fewer of their tokens with
    the canonical description, degrading overlap-based similarity.
    """

    name = "dangling"

    def apply(
        self, tokens: Sequence[str], rng: np.random.Generator
    ) -> Optional[List[str]]:
        phrase = lexicon.DANGLING_PHRASES[
            int(rng.integers(len(lexicon.DANGLING_PHRASES)))
        ]
        if rng.random() < 0.5:
            return list(tokens) + phrase.split()
        return phrase.split() + list(tokens)


class ReorderChannel(NoiseChannel):
    """Move a trailing qualifier to the front (``anemia, scorbutic`` style)."""

    name = "reorder"

    def __init__(self, min_length: int = 3) -> None:
        self.min_length = min_length

    def apply(
        self, tokens: Sequence[str], rng: np.random.Generator
    ) -> Optional[List[str]]:
        if len(tokens) < self.min_length:
            return None
        split = int(rng.integers(1, len(tokens)))
        reordered = list(tokens[split:]) + list(tokens[:split])
        if reordered == list(tokens):
            return None
        return reordered


@dataclass(frozen=True)
class NoisyResult:
    """Transformed tokens plus the names of the channels that fired."""

    tokens: Tuple[str, ...]
    channels: Tuple[str, ...]


class NoiseModel:
    """Compose channels with per-channel firing probabilities.

    Channels are attempted in order; each fires with its configured
    probability (and only if it is applicable to the current tokens).
    ``min_channels`` forces at least that many channels to fire when
    possible, so every generated query is actually noisy.
    """

    def __init__(
        self,
        channels: Sequence[Tuple[NoiseChannel, float]],
        min_channels: int = 0,
    ) -> None:
        for channel, probability in channels:
            if not 0.0 <= probability <= 1.0:
                raise ConfigurationError(
                    f"channel {channel.name!r} probability {probability} "
                    "outside [0, 1]"
                )
        if min_channels < 0:
            raise ConfigurationError(
                f"min_channels must be >= 0, got {min_channels}"
            )
        self._channels = list(channels)
        self._min_channels = min_channels

    @property
    def channel_names(self) -> Tuple[str, ...]:
        return tuple(channel.name for channel, _ in self._channels)

    def corrupt(self, tokens: Sequence[str], rng: RngLike = None) -> NoisyResult:
        """Apply the channel stack to ``tokens``."""
        generator = ensure_rng(rng)
        current = list(tokens)
        fired: List[str] = []
        for channel, probability in self._channels:
            if generator.random() >= probability:
                continue
            transformed = channel.apply(current, generator)
            if transformed is not None and transformed != current:
                current = transformed
                fired.append(channel.name)
        if len(fired) < self._min_channels:
            # Second pass: force-apply applicable channels until quota.
            for channel, _ in self._channels:
                if len(fired) >= self._min_channels:
                    break
                if channel.name in fired:
                    continue
                transformed = channel.apply(current, generator)
                if transformed is not None and transformed != current:
                    current = transformed
                    fired.append(channel.name)
        return NoisyResult(tokens=tuple(current), channels=tuple(fired))


def alias_noise_model() -> NoiseModel:
    """Mild, formal-register channels: UMLS-style alternative descriptions."""
    return NoiseModel(
        [
            (
                SynonymChannel(
                    word_synonyms=lexicon.FORMAL_WORD_SYNONYMS,
                    phrase_synonyms=lexicon.FORMAL_PHRASE_SYNONYMS,
                ),
                0.7,
            ),
            # min_length=2 so even two-word descriptions ("scorbutic
            # anemia") admit a reordered alias — every concept must end
            # up with at least one labeled training pair.
            (ReorderChannel(min_length=2), 0.35),
            (SimplificationChannel(max_drops=1), 0.4),
        ],
        min_channels=1,
    )


def query_noise_model() -> NoiseModel:
    """Aggressive channels: synthesises clinician-written queries.

    Synonyms fire most often (the paper identifies synonym substitution
    and dangling words as the noise surface-string methods cannot
    absorb), followed by abbreviations, simplification, and the rarer
    acronym/typo/numeric shifts.
    """
    return NoiseModel(
        [
            (
                SynonymChannel(
                    max_replacements=2,
                    word_synonyms=lexicon.COLLOQUIAL_WORD_SYNONYMS,
                    phrase_synonyms=lexicon.COLLOQUIAL_PHRASE_SYNONYMS,
                ),
                0.8,
            ),
            (AcronymChannel(), 0.35),
            (AbbreviationChannel(), 0.5),
            (SimplificationChannel(max_drops=2), 0.55),
            (DanglingChannel(), 0.4),
            (NumericStyleChannel(), 0.3),
            (TypoChannel(), 0.12),
        ],
        min_channels=1,
    )


def channel_catalogue() -> Dict[str, NoiseChannel]:
    """One instance of every channel, keyed by name (for tests/docs)."""
    channels = [
        AbbreviationChannel(),
        AcronymChannel(),
        SynonymChannel(),
        SimplificationChannel(),
        DanglingChannel(),
        TypoChannel(),
        NumericStyleChannel(),
        ReorderChannel(),
    ]
    return {channel.name: channel for channel in channels}
