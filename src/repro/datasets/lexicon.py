"""Clinical lexicon: abbreviations, acronyms, and synonyms.

These tables drive both alias synthesis (mild channels, standing in for
UMLS alternative descriptions) and query synthesis (aggressive channels,
standing in for clinician shorthand).  The entries are real clinical
shorthand conventions — ``ckd`` for chronic kidney disease, ``fe`` for
iron, ``2'`` for secondary — several of which appear verbatim in the
paper's running examples (Figures 1 and 3).
"""

from __future__ import annotations

from typing import Dict, Tuple

# Single-word abbreviations: word -> shorthand forms.
WORD_ABBREVIATIONS: Dict[str, Tuple[str, ...]] = {
    "chronic": ("chr",),
    "acute": ("ac",),
    "disease": ("dis", "dz"),
    "disorder": ("do",),
    "deficiency": ("def", "def."),
    "secondary": ("2'", "sec"),
    "fracture": ("fx",),
    "history": ("hx",),
    "diagnosis": ("dx",),
    "treatment": ("tx",),
    "symptoms": ("sx",),
    "bilateral": ("bilat", "b/l"),
    "left": ("lt",),
    "right": ("rt",),
    "severe": ("sev",),
    "moderate": ("mod",),
    "infection": ("infxn",),
    "abdominal": ("abd",),
    "abdomen": ("abd",),
    "respiratory": ("resp",),
    "failure": ("fail",),
    "syndrome": ("synd",),
    "hemorrhage": ("hem", "bleed"),
    "carcinoma": ("ca",),
    "neoplasm": ("ca", "tumour"),
    "unspecified": ("unspec", "nos"),
    "without": ("w/o",),
    "with": ("w",),
    "exacerbation": ("exac",),
    "insufficiency": ("insuff",),
    "obstruction": ("obstr",),
    "vitamin": ("vit",),
    "pulmonary": ("pulm",),
    "cardiac": ("card",),
    "cerebral": ("cereb",),
    "depressive": ("depr",),
    "recurrent": ("recur",),
    "anterior": ("ant",),
    "posterior": ("post",),
    "lateral": ("lat",),
    "medial": ("med",),
}

# Multi-word phrase -> acronym (the famous clinical acronyms).
PHRASE_ACRONYMS: Dict[str, str] = {
    "chronic kidney disease": "ckd",
    "diabetes mellitus": "dm",
    "type 1 diabetes mellitus": "t1dm",
    "type 2 diabetes mellitus": "t2dm",
    "essential hypertension": "htn",
    "pulmonary hypertension": "phtn",
    "acute myocardial infarction": "ami",
    "myocardial infarction": "mi",
    "atrial fibrillation": "af",
    "heart failure": "hf",
    "congestive heart failure": "chf",
    "end stage renal disease": "esrd",
    "chronic obstructive pulmonary disease": "copd",
    "urinary tract infection": "uti",
    "deep vein thrombosis": "dvt",
    "pulmonary embolism": "pe",
    "rheumatoid arthritis": "ra",
    "multiple sclerosis": "ms",
    "major depressive disorder": "mdd",
    "generalized anxiety disorder": "gad",
    "post traumatic stress disorder": "ptsd",
    "systemic lupus erythematosus": "sle",
    "irritable bowel syndrome": "ibs",
    "gastric ulcer": "gu",
    "duodenal ulcer": "du",
    "carpal tunnel syndrome": "cts",
    "obstructive sleep apnea": "osa",
    "low back pain": "lbp",
    "iron deficiency anemia": "ida",
    "cerebral infarction": "cva",
    "acute kidney failure": "aki",
    "nephrotic syndrome": "ns",
}

# --- Synonym registers -------------------------------------------------
#
# UMLS alternative descriptions and clinician shorthand live in
# different lexical *registers*: a UMLS alias says "renal" where the
# description says "kidney"; a clinician writes "gallstones" where both
# say "cholelithiasis".  We therefore keep two synonym dictionaries:
#
# * FORMAL_WORD_SYNONYMS drive alias synthesis (the labeled training
#   data — the medical-register paraphrases a knowledge base records);
# * COLLOQUIAL_WORD_SYNONYMS drive query synthesis (the ward-register
#   substitutions the paper's intro calls "various writing styles").
#
# The colloquial words never appear in concept descriptions or aliases,
# so surface-string methods cannot match them; NCL bridges them through
# embedding-based query rewriting (its words appear in the unlabeled
# notes corpus) — the paper's central mechanism.

FORMAL_WORD_SYNONYMS: Dict[str, Tuple[str, ...]] = {
    "kidney": ("renal",),
    "renal": ("kidney",),
    "heart": ("cardiac",),
    "liver": ("hepatic",),
    "stomach": ("gastric",),
    "lung": ("pulmonary",),
    "brain": ("cerebral",),
    "skin": ("cutaneous",),
    "failure": ("insufficiency",),
    "calculus": ("stone",),
    "neoplasm": ("tumor",),
    "hemorrhage": ("haemorrhage",),
    "unspecified": ("nos",),
    "disease": ("disorder",),
    "anemia": ("anaemia",),
    "fever": ("pyrexia",),
    "swelling": ("edema",),
    "end": ("terminal",),
    "acute": ("sudden onset",),
    "obstruction": ("occlusion",),
    "infarction": ("necrosis",),
}

# Note the deliberate polysemy: ward shorthand is ambiguous ("attack"
# may mean an infarction, a seizure, or a panic episode; "blockage" any
# kind of obstruction; "growth" any neoplasm or polyp).  One-to-many and
# many-to-one mappings are what word-alignment methods (WMD) cannot
# resolve and a trained conditional decoder can.
COLLOQUIAL_WORD_SYNONYMS: Dict[str, Tuple[str, ...]] = {
    "iron": ("fe",),
    "hemorrhage": ("bleeding", "bleed"),
    "pain": ("ache", "discomfort"),
    "infarction": ("attack",),
    "angina": ("attack", "chest tightness"),
    "seizure": ("attack", "episode"),
    "panic": ("attack", "episode"),
    "epilepsy": ("fits", "attacks"),
    "stenosis": ("blockage", "narrowing"),
    "occlusion": ("blockage",),
    "polyp": ("growth",),
    "ulcer": ("sore",),
    "ulceration": ("sore",),
    "effusion": ("fluid",),
    "edema": ("fluid",),
    "gangrene": ("dead tissue",),
    "intractable": ("refractory",),
    "recurrent": ("repeated",),
    "tremor": ("shaking", "episode"),
    "severe": ("serious", "bad"),
    "fatigue": ("tiredness",),
    "dizziness": ("giddy",),
    "obesity": ("overweight",),
    "malignant": ("cancerous",),
    "neoplasm": ("growth", "mass"),
    "dermatitis": ("eczema",),
    "urticaria": ("hives",),
    "pneumonia": ("chest infection",),
    "asthma": ("wheezing",),
    "cellulitis": ("skin infection",),
    "myalgia": ("muscle ache",),
    "migraine": ("bad headache",),
    "hypothyroidism": ("underactive thyroid",),
    "hyperthyroidism": ("overactive thyroid",),
    "hypoglycemia": ("low sugar",),
    "cholelithiasis": ("gallstones",),
    "dysuria": ("painful urination",),
    "syncope": ("fainting", "blackout"),
    "nausea": ("queasy",),
    "insomnia": ("sleeplessness",),
    "dementia": ("memory loss",),
    "obstruction": ("blockage",),
    "perforation": ("rupture",),
    "exacerbation": ("flare",),
    "thrombocytopenia": ("low platelets",),
    "neutropenia": ("low neutrophils",),
    "osteoporosis": ("thin bones",),
    "influenza": ("flu",),
    "tonsillitis": ("throat infection",),
    "acne": ("pimples",),
    "alopecia": ("hair loss",),
    "lymphoma": ("lymph cancer",),
    "leukemia": ("blood cancer",),
    "melanoma": ("skin cancer",),
    "hypertension": ("high bp",),
    "fibrillation": ("irregular rhythm",),
    "deficiency": ("lack",),
    "chronic": ("longterm",),
}

# Backwards-compatible combined view (both registers).
WORD_SYNONYMS: Dict[str, Tuple[str, ...]] = {
    **COLLOQUIAL_WORD_SYNONYMS,
    **{
        word: FORMAL_WORD_SYNONYMS.get(word, ())
        + COLLOQUIAL_WORD_SYNONYMS.get(word, ())
        for word in FORMAL_WORD_SYNONYMS
    },
}

# Low-information decorations clinicians append to diagnosis snippets
# ("breast lump for investigation" in the paper's Appendix A example).
# They dilute token-overlap similarity without changing the concept.
DANGLING_PHRASES: Tuple[str, ...] = (
    "for investigation",
    "on follow up",
    "newly diagnosed",
    "known case",
    "for review",
    "seen in clinic",
    "stable",
    "symptomatic",
    "on treatment",
    "longstanding",
)

# Phrase-level synonyms, split by register like the word synonyms.
FORMAL_PHRASE_SYNONYMS: Dict[str, Tuple[str, ...]] = {
    "iron deficiency anemia secondary to blood loss": (
        "anemia chronic blood loss",
        "hemorrhagic anemia",
    ),
    "scorbutic anemia": ("vitamin c deficiency anemia",),
    "protein deficiency anemia": ("amino acid deficiency anemia",),
    "acute abdomen": ("acute abdominal syndrome", "pain abdomen"),
    "vitamin b12 deficiency anemia": ("pernicious anemia",),
    "malignant neoplasm": ("carcinoma",),
    "end stage": ("terminal stage",),
}

COLLOQUIAL_PHRASE_SYNONYMS: Dict[str, Tuple[str, ...]] = {
    "iron deficiency anemia": ("fe def anemia", "iron def anemia"),
    "chronic kidney disease, stage 5": ("ckd 5", "ckd stage 5"),
    "end stage": ("stage 5",),
    "malignant neoplasm": ("cancer", "adenocarcinoma"),
    "essential hypertension": ("high blood pressure",),
    "abdominal and pelvic pain": ("abdomen pain", "abdo pain"),
    "myocardial infarction": ("heart attack",),
    "cerebral infarction": ("stroke",),
    "nausea and vomiting": ("n and v",),
    "dizziness and giddiness": ("dizzy spells",),
    "malaise and fatigue": ("tired all the time",),
}

# Backwards-compatible combined view.
PHRASE_SYNONYMS: Dict[str, Tuple[str, ...]] = {
    **FORMAL_PHRASE_SYNONYMS,
    **{
        phrase: FORMAL_PHRASE_SYNONYMS.get(phrase, ())
        + COLLOQUIAL_PHRASE_SYNONYMS.get(phrase, ())
        for phrase in COLLOQUIAL_PHRASE_SYNONYMS
    },
}

# Words a clinician is likely to drop when simplifying ("chronic kidney
# failure, stage 5" -> "ckd 5" drops nothing but connectives; "iron
# deficiency anemia unspecified" -> "iron def anemia").
DROPPABLE_WORDS: Tuple[str, ...] = (
    "unspecified", "other", "and", "of", "the", "with", "without",
    "nos", "side", "features", "cause", "elements",
)

# Stage/number style rewrites: "stage 5" -> "5", "type 2" -> "2".
NUMERIC_HEAD_WORDS: Tuple[str, ...] = ("stage", "type", "grade", "level")


def invert_acronyms() -> Dict[str, str]:
    """Acronym -> expanded phrase (first wins on collisions)."""
    inverted: Dict[str, str] = {}
    for phrase, acronym in PHRASE_ACRONYMS.items():
        inverted.setdefault(acronym, phrase)
    return inverted
