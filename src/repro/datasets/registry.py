"""Named dataset registry.

Benchmarks and examples refer to datasets by name so that every
experiment script shares one construction path (and one seed policy).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.datasets.generator import (
    DatasetBundle,
    hospital_x_like,
    large_scale_like,
    mimic_iii_like,
    snomed_like,
)
from repro.utils.errors import ConfigurationError

DatasetBuilder = Callable[..., DatasetBundle]

DATASET_REGISTRY: Dict[str, DatasetBuilder] = {
    "hospital-x-like": hospital_x_like,
    "large-scale-like": large_scale_like,
    "mimic-iii-like": mimic_iii_like,
    "snomed-like": snomed_like,
}


def get_dataset_builder(name: str) -> DatasetBuilder:
    """Look up a dataset builder by name (raises with the known names)."""
    try:
        return DATASET_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(DATASET_REGISTRY))
        raise ConfigurationError(
            f"unknown dataset {name!r}; known datasets: {known}"
        ) from None
