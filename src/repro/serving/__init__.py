"""Online serving subsystem: long-lived, concurrent concept linking.

The paper evaluates NCL as an *online* system (Section 5, Figure 11);
this package turns the one-shot :class:`~repro.core.linker.NeuralConceptLinker`
into a service fit for sustained traffic:

* :mod:`repro.serving.cache` — thread-safe bounded LRU with hit/miss/
  eviction counters (backs the linker's encoding caches);
* :mod:`repro.serving.metrics` — in-process counters and streaming
  latency histograms (p50/p95/p99) aggregating the per-query
  OR/CR/ED/RT :class:`~repro.utils.timing.TimingBreakdown`;
* :mod:`repro.serving.batcher` — micro-batching scheduler that
  coalesces in-flight queries so Phase-II scoring amortises concept
  encodings across concurrent requests;
* :mod:`repro.serving.service` — the orchestrator (warm start,
  readiness, request accounting);
* :mod:`repro.serving.server` — a stdlib-only threaded HTTP JSON API
  (``POST /link``, ``GET /healthz``, ``GET /readyz``, ``GET /metrics``).

Only the dependency-free leaf modules are imported eagerly here;
``repro.core.linker`` imports :mod:`repro.serving.cache`, so pulling
the HTTP layer (which imports the linker back) into this package
namespace at import time would create a cycle.
"""

from repro.serving.cache import CacheStats, LRUCache
from repro.serving.metrics import (
    Counter,
    LatencyHistogram,
    MetricsRegistry,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "Counter",
    "LatencyHistogram",
    "MetricsRegistry",
]
