"""Forked worker processes serving linker batches over pipes.

The threaded tier tops out at the GIL: ``BENCH_shard.json`` shows 4
shard threads *losing* to 1 on end-to-end qps, because Phase-II decode
is pure Python + NumPy on shared bytecode.  This module converts shard
parallelism into wall-clock throughput the only way CPython allows —
separate processes:

* workers are **forked** (``multiprocessing.get_context("fork")``), so
  the model, ontology, and configuration the ``build_linker`` closure
  captures are inherited copy-on-write — no pickling of model state,
  no per-worker re-training;
* each worker builds its *own* linker, loading the compiled artifact
  with ``mmap=True``: N workers mapping the same ``slab.bin`` share one
  set of page-cache pages, so per-worker unique RSS is O(caches), not
  O(artifact) (``tests/serving/test_zero_copy.py`` measures exactly
  this);
* the parent speaks a tiny framed protocol over one duplex pipe per
  worker — ``("ready", pid)`` / ``("init_error", type, msg)`` after
  construction, then ``(job_id, queries, ks, trace_ids)`` requests
  answered by ``(job_id, "ok", results, traces, stats)`` or
  ``(job_id, "error", type, msg)``.  ``trace_ids`` carries one
  optional request ID per query: for each traced query the worker runs
  its own local :class:`~repro.obs.trace.Tracer` (the parent's span
  objects cannot cross the fork), tags the local root with its pid and
  worker id, and ships the finished span subtree back in ``traces``
  for the front-end to graft under the dispatching span — one stitched
  tree per request, spanning processes.  With every ``trace_ids``
  entry ``None`` (sampling off) no tracer is ever built and the reply
  carries ``None`` placeholders: the no-sampling fast path stays flat.
  ``stats`` is a small always-on dict (query/degrade counts, per-phase
  seconds, decode wall time) the parent aggregates into the shared
  metrics plane.

Determinism: every worker runs the same pure function over the same
frozen artifact, so which worker serves a request cannot change its
ranking — the property ``tests/serving/test_procpool_equivalence.py``
proves against the in-process reference linker.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs import trace
from repro.utils.logging import get_logger

LOGGER = get_logger("serving.procpool")

#: Sent to a worker to make it exit its loop cleanly.
_SHUTDOWN = None


def _worker_main(
    conn: Any,
    build_linker: Callable[[], Any],
    worker_id: int,
    warm: bool,
) -> None:
    """Worker-process entry point: build one linker, serve jobs forever.

    SIGINT is ignored — a Ctrl-C at the terminal must tear the pool
    down through the parent's orderly ``stop()`` (which closes pipes),
    not kill workers mid-batch and strand in-flight futures.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        linker = build_linker()
        if warm:
            linker.warm_cache()
    except BaseException as error:  # noqa: BLE001 - reported to the parent
        try:
            conn.send(("init_error", type(error).__name__, str(error)))
        finally:
            conn.close()
        return
    conn.send(("ready", os.getpid()))
    # Built on first traced job only: the untraced path must not pay
    # for a tracer it never uses.
    tracer: Optional[trace.Tracer] = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent is gone; nothing left to serve
        if message is _SHUTDOWN:
            break
        job_id, queries, ks, trace_ids = message
        roots: Optional[List[Any]] = None
        if trace_ids is not None and any(rid for rid in trace_ids):
            if tracer is None:
                tracer = trace.Tracer(sample_rate=1.0, capacity=1)
            roots = [
                _start_worker_root(
                    tracer, request_id, worker_id, len(queries)
                )
                if request_id
                else None
                for request_id in trace_ids
            ]
        started = time.perf_counter()
        try:
            results = linker.link_batch(queries, k=ks, trace_contexts=roots)
        except Exception as error:  # noqa: BLE001 - forwarded to the caller
            if roots is not None:
                for root in roots:
                    if root is not None:
                        root.set_tag("error", type(error).__name__)
                        root.end()
            conn.send((job_id, "error", type(error).__name__, str(error)))
        else:
            elapsed = time.perf_counter() - started
            traces: Optional[List[Optional[Dict[str, Any]]]] = None
            if roots is not None:
                for root in roots:
                    if root is not None:
                        root.end()
                traces = [trace.export_trace(root) for root in roots]
            conn.send(
                (job_id, "ok", results, traces, _job_stats(results, elapsed))
            )
    conn.close()


def _start_worker_root(
    tracer: "trace.Tracer",
    request_id: str,
    worker_id: int,
    batch_queries: int,
):
    """One local root span for a traced query, tagged with its origin."""
    root = tracer.start_trace("worker.link", request_id=request_id)
    root.set_tag("pid", os.getpid())
    root.set_tag("worker_id", worker_id)
    root.set_tag("batch_queries", batch_queries)
    return root


def _job_stats(results: Sequence[Any], elapsed: float) -> Dict[str, Any]:
    """The per-reply metrics delta shipped back with every result."""
    phase_seconds: Dict[str, float] = {}
    degraded = 0
    for result in results:
        if result.degraded:
            degraded += 1
        for phase, seconds in result.timing.items():
            phase_seconds[phase] = phase_seconds.get(phase, 0.0) + seconds
    return {
        "queries": len(results),
        "degraded": degraded,
        "decode_s": elapsed,
        "phase_seconds": phase_seconds,
    }


@dataclass
class WorkerHandle:
    """Parent-side view of one worker process."""

    worker_id: int
    process: multiprocessing.process.BaseProcess
    conn: Any
    pid: int = 0
    ready: bool = False
    init_error: Optional[str] = None
    jobs: int = 0
    queries: int = 0
    errors: int = 0
    respawns: int = 0
    degraded: int = 0
    #: Cumulative seconds this worker spent decoding (from its own
    #: per-reply stats) — per-worker utilisation and mean job latency
    #: derive from this without a per-worker histogram.
    busy_s: float = 0.0
    #: The job currently on this worker's pipe, if any (set by the
    #: front-end's dispatcher; used to re-dispatch after a crash).
    inflight: Optional[object] = field(default=None, repr=False)

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def stats(self) -> dict:
        """Snapshot of this worker slot for ``/metrics``."""
        return {
            "worker_id": self.worker_id,
            "pid": self.pid,
            "alive": self.alive,
            "ready": self.ready,
            "jobs": self.jobs,
            "queries": self.queries,
            "errors": self.errors,
            "respawns": self.respawns,
            "degraded": self.degraded,
            "busy_s": self.busy_s,
        }


class ProcessPool:
    """Spawns, tracks, respawns, and stops the worker processes."""

    def __init__(
        self,
        build_linker: Callable[[], Any],
        workers: int,
        warm: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._build_linker = build_linker
        self._warm = warm
        # Fork, explicitly: the whole design (closure capture of the
        # model, copy-on-write inheritance, no spawn-time pickling)
        # assumes it.  The default start method is platform-dependent.
        self._ctx = multiprocessing.get_context("fork")
        self.workers: List[WorkerHandle] = [
            self._spawn(index) for index in range(workers)
        ]

    def _spawn(self, worker_id: int) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._build_linker, worker_id, self._warm),
            name=f"link-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the parent keeps only its end
        return WorkerHandle(
            worker_id=worker_id, process=process, conn=parent_conn
        )

    def respawn(self, handle: WorkerHandle) -> WorkerHandle:
        """Replace a dead worker in place; returns the new handle."""
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=5.0)
        fresh = self._spawn(handle.worker_id)
        fresh.respawns = handle.respawns + 1
        self.workers[handle.worker_id] = fresh
        LOGGER.warning(
            "worker %d (pid %s) died; respawned as pid %s",
            handle.worker_id,
            handle.pid or "?",
            fresh.process.pid,
        )
        return fresh

    def stop(self, timeout: float = 5.0) -> None:
        """Orderly shutdown: sentinel, join, then terminate stragglers."""
        for handle in self.workers:
            try:
                handle.conn.send(_SHUTDOWN)
            except (OSError, BrokenPipeError):
                pass
        for handle in self.workers:
            handle.process.join(timeout=timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:
                pass

    def stats(self) -> List[dict]:
        """Per-worker slot snapshots, in slot order."""
        return [handle.stats() for handle in self.workers]
