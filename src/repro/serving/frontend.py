"""Async front-end for the multi-process tier: admit, fuse, dispatch.

One event-driven dispatcher thread sits between the HTTP threads and
the forked workers (:mod:`repro.serving.procpool`):

* **Admission control** — arrivals enter a bounded
  :class:`AdmissionQueue`; beyond the bound they are *shed* with a
  :class:`ShedError` (surfaced as HTTP 503, error code ``shed``)
  instead of queuing unboundedly.  ``reject_new`` sheds the arrival,
  ``drop_oldest`` sheds the queue head; a per-request queueing deadline
  sheds requests that waited longer than any caller plausibly still
  cares about.
* **Cross-request fusion** — when a worker frees up, the dispatcher
  packs *several* queued requests into one worker job; the worker's
  linker runs them as one ``link_batch``, whose ``fuse_phase2`` path
  turns every in-flight candidate across all fused requests into a
  single lock-step ``score_batch`` GEMM per decode step.
* **Fault containment** — a worker that dies mid-job (OOM-kill,
  SIGKILL) is detected by its pipe going EOF; the dispatcher respawns
  it and re-dispatches the in-flight job once.  A job that kills two
  workers is failed back to its caller with an error envelope.  No
  request ever hangs or silently drops.

The dispatcher blocks in :func:`multiprocessing.connection.wait` over
the worker pipes plus a socketpair wakeup channel, so it consumes zero
CPU while idle and reacts to both worker completions and new arrivals
without polling.

Observability: ``submit`` optionally carries one parent span per query.
The front-end hangs ``frontend.queue`` / ``frontend.fuse`` /
``frontend.dispatch`` child spans under each, ships the request IDs to
the worker, and grafts the worker's serialized ``worker.link`` subtree
back under the dispatch span — one stitched trace per request, spanning
processes.  Shed requests get a ``frontend.shed`` point event before
their future is rejected, so overload is visible in traces, not just
counters.  When a :class:`~repro.serving.metrics.MetricsRegistry` is
attached, the same events feed shed counters by reason, queue-wait and
fused-batch-size histograms, and per-worker decode stats.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from multiprocessing import connection as mp_connection

from repro.obs import trace
from repro.serving.batcher import BatchFuture
from repro.serving.metrics import MetricsRegistry
from repro.serving.procpool import ProcessPool, WorkerHandle
from repro.utils.logging import get_logger

LOGGER = get_logger("serving.frontend")

#: How many times a job is re-dispatched after killing a worker before
#: it is failed back to the caller (1 = one respawn-and-retry).
MAX_REDISPATCHES = 1

#: Fused-batch-size histogram buckets (queries per worker job, not
#: seconds — the histogram machinery only needs positive bounds).
FUSED_BATCH_BOUNDS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0)

#: Front-end counter → registry counter mirror: the shed counters are
#: named by admission *reason* in the exposition, per the SLO docs.
_COUNTER_METRICS = {
    "shed_queue_full": "frontend.shed.reject_new",
    "shed_dropped_oldest": "frontend.shed.drop_oldest",
    "shed_deadline": "frontend.shed.deadline",
    "worker_deaths": "frontend.worker_deaths",
    "redispatches": "frontend.redispatches",
    "jobs_failed": "frontend.jobs_failed",
    "jobs_ok": "frontend.jobs_ok",
}


class ShedError(RuntimeError):
    """A request refused by admission control (HTTP 503, code ``shed``).

    ``reason`` is one of ``queue_full`` (reject_new policy),
    ``dropped_oldest`` (displaced by a newer arrival), ``deadline``
    (waited past the queueing deadline), or ``shutdown``.
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


class FrontendJob:
    """One ``link_many`` burst waiting for (or on) a worker."""

    __slots__ = (
        "queries",
        "ks",
        "future",
        "admitted_at",
        "dispatches",
        "spans",
        "queue_spans",
        "dispatch_spans",
    )

    def __init__(
        self,
        queries: List[str],
        ks: List[Optional[int]],
        admitted_at: float,
        spans: Optional[Sequence[Any]] = None,
    ) -> None:
        self.queries = queries
        self.ks = ks
        self.future: BatchFuture[List[Any]] = BatchFuture()
        self.admitted_at = admitted_at
        self.dispatches = 0
        #: One optional parent span per query, handed over by the
        #: submitting thread; queue/fuse/dispatch children hang under
        #: it, and the worker's subtree is grafted back beneath them.
        normalized: List[Any] = list(spans) if spans is not None else []
        while len(normalized) < len(queries):
            normalized.append(None)
        self.spans = normalized[: len(queries)]
        self.queue_spans: List[Any] = [None] * len(queries)
        self.dispatch_spans: List[Any] = [None] * len(queries)

    def traced(self) -> bool:
        """True when any query carries a recording parent span."""
        return any(s is not None and s.is_recording for s in self.spans)

    def open_queue_spans(self, redispatch: bool = False) -> None:
        """A ``frontend.queue`` child per traced query (wait visible)."""
        for index, parent in enumerate(self.spans):
            if parent is not None and parent.is_recording:
                child = parent.child("frontend.queue")
                if redispatch:
                    child.set_tag("redispatch", True)
                self.queue_spans[index] = child

    def close_queue_spans(self) -> None:
        """End the queue-wait spans (the job is leaving the queue)."""
        for index, queued in enumerate(self.queue_spans):
            if queued is not None:
                queued.end()
                self.queue_spans[index] = None

    def shed(self, reason: str) -> None:
        """Make the shed visible in the trace before the future rejects."""
        for parent in self.spans:
            if parent is not None and parent.is_recording:
                parent.add_event("frontend.shed", reason=reason)
        for index, queued in enumerate(self.queue_spans):
            if queued is not None:
                queued.set_tag("shed", reason)
                queued.end()
                self.queue_spans[index] = None

    def close_dispatch_spans(self, error: Optional[str] = None) -> None:
        """End the dispatch spans, tagging the worker error if any."""
        for index, dispatched in enumerate(self.dispatch_spans):
            if dispatched is not None:
                if error is not None:
                    dispatched.set_tag("error", error)
                dispatched.end()
                self.dispatch_spans[index] = None


class AdmissionQueue:
    """A bounded FIFO with explicit overload and staleness policy.

    Pure data structure (thread-safe, no I/O) so its invariants are
    directly property-testable: the depth never exceeds ``bound``, and
    every rejected entry comes back out through a :class:`ShedError`
    or the returned shed lists — nothing is silently lost.
    """

    def __init__(
        self, bound: int, policy: str = "reject_new", deadline_s: float = 0.0
    ) -> None:
        self.bound = bound
        self.policy = policy
        self.deadline_s = deadline_s
        self._items: Deque[FrontendJob] = deque()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def offer(self, job: FrontendJob) -> List[FrontendJob]:
        """Admit ``job``; returns jobs displaced by ``drop_oldest``.

        Raises :class:`ShedError` when the queue is full under
        ``reject_new``.  A bound of 0 admits everything (admission
        control off).
        """
        with self._lock:
            if self.bound > 0 and len(self._items) >= self.bound:
                if self.policy == "reject_new":
                    raise ShedError(
                        "queue_full",
                        f"admission queue is full ({self.bound} waiting); "
                        "request shed",
                    )
                dropped = [self._items.popleft()]
                self._items.append(job)
                return dropped
            self._items.append(job)
            return []

    def requeue_front(self, job: FrontendJob) -> None:
        """Put a job back at the head (crash re-dispatch keeps FIFO)."""
        with self._lock:
            self._items.appendleft(job)

    def take(
        self, now: Optional[float] = None
    ) -> Tuple[Optional[FrontendJob], List[FrontendJob]]:
        """Pop the next live job; expired jobs come back separately.

        Returns ``(job, expired)`` where ``expired`` are the
        deadline-overrun jobs skipped to reach it (the caller sheds
        their futures); ``job`` is None when the queue drained.
        """
        clock = now if now is not None else time.monotonic()
        expired: List[FrontendJob] = []
        with self._lock:
            while self._items:
                job = self._items.popleft()
                if (
                    self.deadline_s > 0
                    and clock - job.admitted_at > self.deadline_s
                ):
                    expired.append(job)
                    continue
                return job, expired
        return None, expired

    def drain(self) -> List[FrontendJob]:
        """Remove and return every queued job (shutdown/flush path)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
        return items


class AsyncFrontend:
    """The dispatcher: one thread multiplexing all worker pipes."""

    def __init__(
        self,
        pool: ProcessPool,
        admission_bound: int = 256,
        deadline_ms: float = 0.0,
        shed_policy: str = "reject_new",
        max_batch_size: int = 8,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.pool = pool
        self.metrics = metrics
        self.queue = AdmissionQueue(
            admission_bound, policy=shed_policy, deadline_s=deadline_ms / 1000.0
        )
        self._max_batch_size = max_batch_size
        self._job_ids = itertools.count(1)
        #: job-id → (fused jobs, per-job query counts), for result scatter.
        self._inflight: Dict[int, Tuple[List[FrontendJob], List[int]]] = {}
        self._stopped = threading.Event()
        self.all_ready = threading.Event()
        self.init_error: Optional[str] = None
        self.counters: Dict[str, int] = {
            "shed_queue_full": 0,
            "shed_dropped_oldest": 0,
            "shed_deadline": 0,
            "worker_deaths": 0,
            "redispatches": 0,
            "jobs_failed": 0,
            "jobs_ok": 0,
        }
        self._counters_lock = threading.Lock()
        # Wakeup channel: submit() writes one byte, the dispatch loop's
        # connection.wait() returns, new work is considered.  A plain
        # socketpair keeps the loop select()-driven with no polling.
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._thread = threading.Thread(
            target=self._run, name="link-frontend", daemon=True
        )
        self._thread.start()

    # -- submission (HTTP threads) ------------------------------------------

    def submit(
        self,
        queries: List[str],
        ks: List[Optional[int]],
        spans: Optional[Sequence[Any]] = None,
    ) -> "BatchFuture[List[Any]]":
        """Admit one burst; returns the future for its result list.

        ``spans`` optionally carries one parent span per query; queue,
        fusion, and dispatch children hang under them and the worker's
        span subtree is stitched back beneath the dispatch span.
        """
        if self._stopped.is_set():
            raise ShedError("shutdown", "front-end is stopped")
        job = FrontendJob(list(queries), list(ks), time.monotonic(), spans)
        # Queue spans open *before* the offer: once the job is in the
        # queue the dispatcher may take it from another thread, and a
        # reject_new shed closes them with the shed tag.
        job.open_queue_spans()
        try:
            dropped = self.queue.offer(job)
        except ShedError:
            self._count("shed_queue_full")
            job.shed("reject_new")
            raise
        for old in dropped:
            self._count("shed_dropped_oldest")
            old.shed("drop_oldest")
            old.future._reject(
                ShedError(
                    "dropped_oldest",
                    "request displaced from a full admission queue by a "
                    "newer arrival",
                )
            )
        self._wake()
        return job.future

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"\0")
        except OSError:
            pass

    def _count(self, name: str, amount: int = 1) -> None:
        with self._counters_lock:
            self.counters[name] += amount
        if self.metrics is not None:
            self.metrics.counter(_COUNTER_METRICS[name]).inc(amount)

    def _observe(
        self,
        name: str,
        value: float,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name, bounds=bounds).observe(value)

    # -- dispatch loop -------------------------------------------------------

    def _run(self) -> None:
        while not self._stopped.is_set():
            conns = [h.conn for h in self.pool.workers if h.alive or h.ready]
            try:
                readable = mp_connection.wait(
                    conns + [self._wake_recv], timeout=0.25
                )
            except OSError:
                continue  # a pipe died between listing and waiting
            for source in readable:
                if source is self._wake_recv:
                    self._drain_wakeups()
                    continue
                self._on_worker_readable(source)
            self._dispatch_ready()
        self._shutdown_reject()

    def _drain_wakeups(self) -> None:
        try:
            while self._wake_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _handle_for(self, conn: Any) -> Optional[WorkerHandle]:
        for handle in self.pool.workers:
            if handle.conn is conn:
                return handle
        return None

    def _on_worker_readable(self, conn: Any) -> None:
        handle = self._handle_for(conn)
        if handle is None:
            return
        try:
            message = conn.recv()
        except (EOFError, OSError):
            self._on_worker_death(handle)
            return
        kind = message[0]
        if kind == "ready":
            handle.ready = True
            handle.pid = message[1]
            if all(h.ready for h in self.pool.workers):
                self.all_ready.set()
            return
        if kind == "init_error":
            # A worker that cannot build its linker (torn slab, bad
            # artifact) poisons readiness for the whole service: better
            # a refused rollout than N-1 workers hiding a corrupt map.
            self.init_error = f"{message[1]}: {message[2]}"
            LOGGER.error("worker %d failed to start: %s",
                         handle.worker_id, self.init_error)
            self.all_ready.set()  # unblock start(wait=True) with the error
            return
        job_id = message[0]
        entry = self._inflight.pop(job_id, None)
        handle.inflight = None
        if entry is None:
            return  # stale result from a pre-respawn job already failed
        jobs, sizes = entry
        if message[1] == "ok":
            results, traces, job_stats = message[2], message[3], message[4]
            self._count("jobs_ok")
            if job_stats:
                handle.degraded += job_stats.get("degraded", 0)
                handle.busy_s += job_stats.get("decode_s", 0.0)
                self._observe(
                    "frontend.worker_decode_seconds",
                    job_stats.get("decode_s", 0.0),
                )
            offset = 0
            for job, size in zip(jobs, sizes):
                # Graft each worker subtree under its dispatch span
                # *before* resolving the future: the caller ends the
                # root right after, finalising the stitched trace.
                for index in range(size):
                    dispatched = job.dispatch_spans[index]
                    if dispatched is not None:
                        if traces is not None:
                            trace.graft(dispatched, traces[offset + index])
                        dispatched.end()
                        job.dispatch_spans[index] = None
                job.future._resolve(results[offset : offset + size])
                offset += size
        else:
            self._count("jobs_failed")
            detail = f"{message[2]}: {message[3]}"
            error = RuntimeError(f"worker error: {detail}")
            for job in jobs:
                job.close_dispatch_spans(error=detail)
                job.future._reject(error)

    def _on_worker_death(self, handle: WorkerHandle) -> None:
        self._count("worker_deaths")
        inflight_id = handle.inflight
        handle.inflight = None
        fresh = self.pool.respawn(handle)
        fresh.ready = False  # becomes dispatchable after its handshake
        if inflight_id is None:
            return
        entry = self._inflight.pop(inflight_id, None)
        if entry is None:
            return
        jobs, _ = entry
        for job in jobs:
            job.close_dispatch_spans(error="worker_died")
            if job.dispatches <= MAX_REDISPATCHES:
                # Back to the head of the queue: the retried request
                # keeps its place, so a crash cannot starve it.  The
                # retry wait is a fresh (tagged) queue span.
                self._count("redispatches")
                for parent in job.spans:
                    if parent is not None and parent.is_recording:
                        parent.add_event("frontend.redispatch")
                job.open_queue_spans(redispatch=True)
                self.queue.requeue_front(job)
            else:
                job.future._reject(
                    RuntimeError(
                        "worker process died twice executing this request"
                    )
                )

    def _dispatch_ready(self) -> None:
        for handle in self.pool.workers:
            if not handle.ready or handle.inflight is not None:
                continue
            if not handle.alive:
                self._on_worker_death(handle)
                continue
            fused: List[FrontendJob] = []
            queries = 0
            while True:
                job, expired = self.queue.take()
                for stale in expired:
                    self._count("shed_deadline")
                    stale.shed("deadline")
                    stale.future._reject(
                        ShedError(
                            "deadline",
                            "request waited past the queueing deadline "
                            "and was shed undispatched",
                        )
                    )
                if job is None:
                    break
                if fused and queries + len(job.queries) > self._max_batch_size:
                    self.queue.requeue_front(job)
                    break
                fused.append(job)
                queries += len(job.queries)
                if queries >= self._max_batch_size:
                    break
            if not fused:
                return  # queue drained; later workers have nothing either
            job_id = next(self._job_ids)
            now = time.monotonic()
            flat_queries = [q for job in fused for q in job.queries]
            flat_ks = [k for job in fused for k in job.ks]
            trace_ids: List[Optional[str]] = []
            traced = False
            for job in fused:
                job.dispatches += 1
                self._observe(
                    "frontend.queue_wait_seconds", now - job.admitted_at
                )
                job.close_queue_spans()
                for index, parent in enumerate(job.spans):
                    if parent is None or not parent.is_recording:
                        trace_ids.append(None)
                        continue
                    traced = True
                    trace_ids.append(parent.request_id)
                    parent.child(
                        "frontend.fuse",
                        fused_jobs=len(fused),
                        fused_queries=queries,
                    ).end()
                    job.dispatch_spans[index] = parent.child(
                        "frontend.dispatch",
                        worker=handle.worker_id,
                        job=job_id,
                    )
            self._observe(
                "frontend.fused_batch_size",
                float(queries),
                bounds=FUSED_BATCH_BOUNDS,
            )
            self._inflight[job_id] = (fused, [len(j.queries) for j in fused])
            handle.inflight = job_id
            try:
                handle.conn.send(
                    (job_id, flat_queries, flat_ks,
                     trace_ids if traced else None)
                )
            except (OSError, BrokenPipeError):
                self._on_worker_death(handle)
                continue
            handle.jobs += 1
            handle.queries += queries

    def _shutdown_reject(self) -> None:
        error = ShedError("shutdown", "front-end is stopped")
        for job in self.queue.drain():
            job.shed("shutdown")
            job.future._reject(error)
        for jobs, _ in self._inflight.values():
            for job in jobs:
                job.close_dispatch_spans(error="shutdown")
                if not job.future.done():
                    job.future._reject(error)
        self._inflight.clear()

    # -- lifecycle / introspection ------------------------------------------

    @property
    def ready(self) -> bool:
        """Ready once every worker has handshaken, and *stays* ready
        through worker deaths: a respawning slot only shrinks capacity
        (survivors drain the queue), so flapping to not-ready would
        turn a contained crash into rejected requests.  Only an init
        error or a stop poisons readiness."""
        return (
            self.init_error is None
            and bool(self.pool.workers)
            and self.all_ready.is_set()
            and not self._stopped.is_set()
        )

    def stop(self) -> None:
        """Shed the queue, stop the dispatcher, and tear down the pool."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self._wake()
        self._thread.join(timeout=10.0)
        self.pool.stop()
        try:
            self._wake_send.close()
            self._wake_recv.close()
        except OSError:
            pass

    def stats(self) -> Dict[str, Any]:
        """Queue depth, shed/death counters, and per-worker stats."""
        with self._counters_lock:
            counters = dict(self.counters)
        return {
            "queue_depth": len(self.queue),
            "queue_bound": self.queue.bound,
            "shed_policy": self.queue.policy,
            "deadline_ms": self.queue.deadline_s * 1000.0,
            "max_batch_size": self._max_batch_size,
            "inflight_jobs": len(self._inflight),
            # Sticky readiness, made explicit for the exposition: ready
            # survives worker deaths; only init errors / stop poison it.
            "ready": self.ready,
            "all_ready": self.all_ready.is_set(),
            "init_failed": self.init_error is not None,
            **counters,
            "workers": self.pool.stats(),
        }


def build_frontend(
    build_linker: Callable[[], Any],
    workers: int,
    admission_bound: int = 256,
    deadline_ms: float = 0.0,
    shed_policy: str = "reject_new",
    max_batch_size: int = 8,
    warm: bool = True,
    metrics: Optional[MetricsRegistry] = None,
) -> AsyncFrontend:
    """Fork ``workers`` processes and wire the dispatcher over them."""
    pool = ProcessPool(build_linker, workers, warm=warm)
    return AsyncFrontend(
        pool,
        admission_bound=admission_bound,
        deadline_ms=deadline_ms,
        shed_policy=shed_policy,
        max_batch_size=max_batch_size,
        metrics=metrics,
    )
