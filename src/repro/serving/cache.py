"""A thread-safe bounded LRU cache with observable statistics.

The linker's concept-encoding caches were plain dicts: correct for a
one-shot CLI run, but a long-lived service linking an open-ended query
stream over a large ontology needs an eviction policy and visibility
into how well the cache is doing — the paper's own observation that
encode-decode forward passes dominate online cost (Section 5, Figure
11) makes the encoding-cache hit rate *the* capacity-planning number.

``LRUCache`` is a classic ``OrderedDict``-backed LRU guarded by an
``RLock``.  ``get_or_create`` holds the lock across the factory call,
which serialises misses for the same cache; that is deliberate — for
concept encodings the factory is an expensive model forward pass, and
computing it twice concurrently wastes more than the lock costs under
the GIL.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Generic, Iterator, Optional, TypeVar

from repro.utils.errors import ConfigurationError

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    name: str
    capacity: Optional[int]
    size: int
    hits: int
    misses: int
    evictions: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never queried)."""
        total = self.requests
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready copy, with the derived hit rate included."""
        return {
            "name": self.name,
            "capacity": self.capacity,
            "size": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache(Generic[K, V]):
    """Bounded least-recently-used mapping with hit/miss/eviction counts.

    ``capacity=None`` disables eviction (an unbounded cache that still
    counts hits and misses); otherwise capacity must be a positive
    integer and insertion beyond it evicts the least recently *used*
    entry.  All operations are safe to call from multiple threads.
    """

    def __init__(self, capacity: Optional[int] = None, name: str = "cache") -> None:
        if capacity is not None and capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1 or None, got {capacity}"
            )
        self.name = name
        self._capacity = capacity
        self._lock = threading.RLock()
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: K) -> bool:
        """Membership test; does not touch recency or counters."""
        with self._lock:
            return key in self._entries

    def keys(self) -> Iterator[K]:
        """Snapshot of the keys, oldest-used first."""
        with self._lock:
            return iter(list(self._entries.keys()))

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Look up ``key``, counting a hit or miss and updating recency."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value  # type: ignore[return-value]

    def put(self, key: K, value: V) -> None:
        """Insert or overwrite ``key``, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            self._evict_overflow()

    def get_or_create(self, key: K, factory: Callable[[], V]) -> V:
        """Return the cached value, computing and inserting it on a miss.

        The lock is held across ``factory`` so concurrent misses for the
        same key compute the value exactly once.
        """
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING:
                self._entries.move_to_end(key)
                self._hits += 1
                return value  # type: ignore[return-value]
            self._misses += 1
            created = factory()
            self._entries[key] = created
            self._evict_overflow()
            return created

    def _evict_overflow(self) -> None:
        # Caller must hold the lock.
        if self._capacity is None:
            return
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters (entries are preserved)."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                name=self.name,
                capacity=self._capacity,
                size=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )
