"""In-process service metrics: counters and streaming latency histograms.

The linker already times every query's OR/CR/ED/RT phases (the paper's
Figure 11 decomposition, :class:`~repro.utils.timing.TimingBreakdown`);
this module aggregates those per-query breakdowns — plus request counts
and end-to-end latencies — into service-level statistics a scrape of
``GET /metrics`` can report.

Histograms are streaming and O(1) per observation: samples land in
log-spaced buckets (Prometheus style) and quantiles are estimated by
linear interpolation inside the bucket containing the target rank.
That keeps memory constant under unbounded traffic, at the price of
quantile resolution equal to the bucket width (~26% here, two buckets
per octave), which is plenty for p50/p95/p99 latency reporting.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.timing import TimingBreakdown


def _default_bounds() -> List[float]:
    # 50 µs .. ~105 s, two buckets per octave: covers sub-millisecond
    # cache hits through multi-second cold batch floods.
    bounds = []
    value = 50e-6
    while value < 120.0:
        bounds.append(value)
        value *= math.sqrt(2.0)
    return bounds


class Counter:
    """A monotonically increasing thread-safe counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class LatencyHistogram:
    """Streaming histogram over seconds with bucketed quantile estimates."""

    def __init__(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        self._bounds = sorted(bounds) if bounds is not None else _default_bounds()
        if not self._bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(bound <= 0 for bound in self._bounds):
            raise ValueError("bucket bounds must be positive seconds")
        self._lock = threading.Lock()
        # counts[i] counts samples <= bounds[i]; the final slot is the
        # +Inf overflow bucket.
        self._counts = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency sample in seconds."""
        if seconds < 0:
            raise ValueError(f"latency must be non-negative, got {seconds}")
        with self._lock:
            index = self._bucket_index(seconds)
            self._counts[index] += 1
            self._count += 1
            self._sum += seconds
            self._min = min(self._min, seconds)
            self._max = max(self._max, seconds)

    def _bucket_index(self, seconds: float) -> int:
        low, high = 0, len(self._bounds)
        while low < high:
            mid = (low + high) // 2
            if seconds <= self._bounds[mid]:
                high = mid
            else:
                low = mid + 1
        return low

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile in seconds (0 when empty).

        Edge cases are defined, not emergent: an empty histogram
        reports 0.0 for every ``q``; ``q=0`` is exactly the observed
        minimum and ``q=1`` exactly the observed maximum (no bucket
        interpolation at the extremes).  In between, linear
        interpolation within the bucket holding the target rank; the
        overflow bucket reports the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            if q == 0.0:
                return self._min
            if q == 1.0:
                return self._max
            rank = q * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= rank:
                    if index >= len(self._bounds):
                        return self._max
                    upper = self._bounds[index]
                    lower = self._bounds[index - 1] if index > 0 else 0.0
                    # Clamp to the observed range so tiny sample counts
                    # don't report a bucket edge nobody hit.
                    fraction = (rank - cumulative) / bucket_count
                    estimate = lower + (upper - lower) * fraction
                    return min(max(estimate, self._min), self._max)
                cumulative += bucket_count
            return self._max

    def buckets(self) -> Tuple[List[Tuple[float, int]], float, int]:
        """Cumulative ``(upper_bound, count<=bound)`` pairs, sum, count.

        The final pair's bound is ``+Inf`` (the overflow bucket), whose
        cumulative count equals the total — the shape Prometheus
        histogram exposition requires.  All three values are read under
        one lock acquisition, so a scrape never sees ``count`` disagree
        with the ``+Inf`` bucket.
        """
        with self._lock:
            cumulative: List[Tuple[float, int]] = []
            running = 0
            for bound, count in zip(
                list(self._bounds) + [math.inf], self._counts
            ):
                running += count
                cumulative.append((bound, running))
            return cumulative, self._sum, self._count

    def snapshot(self) -> Dict[str, float]:
        """Count, sum, mean, and p50/p95/p99 as a JSON-ready dict."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named counters and histograms behind one lock-free-to-read facade.

    ``counter``/``histogram`` get-or-create by name, so call sites never
    need registration order; ``observe_breakdown`` fans one per-query
    :class:`TimingBreakdown` out to per-phase histograms named
    ``<prefix>.<phase>`` — with the default prefix, exactly the paper's
    ``phase_seconds.OR/CR/ED/RT`` decomposition at service level.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = Counter(name)
                self._counters[name] = counter
            return counter

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> LatencyHistogram:
        """The histogram registered under ``name`` (created on first use).

        ``bounds`` only applies at creation; later callers get the
        existing histogram unchanged.
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = LatencyHistogram(name, bounds=bounds)
                self._histograms[name] = histogram
            return histogram

    def observe_breakdown(
        self, breakdown: TimingBreakdown, prefix: str = "phase_seconds"
    ) -> None:
        """Record each phase of one query's breakdown under ``prefix``."""
        for phase, seconds in breakdown.items():
            self.histogram(f"{prefix}.{phase}").observe(seconds)

    def collect(
        self,
    ) -> Tuple[Dict[str, Counter], Dict[str, LatencyHistogram]]:
        """Copies of the live metric maps (for exporters).

        The returned dicts are snapshots but the metric objects are the
        live ones — an exporter reads each metric's own lock-guarded
        state at render time.
        """
        with self._lock:
            return dict(self._counters), dict(self._histograms)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready copy of every metric's current state."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(histograms.items())
            },
        }
