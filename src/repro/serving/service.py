"""The linking service: batcher + caches + metrics around one linker.

``LinkingService`` is the transport-agnostic middle layer between the
HTTP server and :class:`~repro.core.linker.NeuralConceptLinker`:

* every request flows through a :class:`~repro.serving.batcher.MicroBatcher`
  whose single worker serialises model access (determinism under
  concurrency) and whose coalescing amortises concept encodings;
* warm-up (``warm_cache`` — pre-encoding the indexed concepts) runs on
  a background thread at start; readiness flips only once it finishes,
  so a load balancer never routes traffic to a cold instance paying
  full ED cost per query;
* per-request latency, per-phase OR/CR/ED/RT timings, result counts,
  and error counts land in a :class:`~repro.serving.metrics.MetricsRegistry`,
  and ``snapshot()`` merges those with cache and batcher statistics
  into one JSON-ready report (the ``GET /metrics`` payload).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import ServingConfig
from repro.core.linker import LinkResult, NeuralConceptLinker
from repro.obs import trace
from repro.obs.slo import SloTracker
from repro.obs.trace import Tracer
from repro.serving.batcher import MicroBatcher
from repro.serving.frontend import AsyncFrontend, ShedError
from repro.serving.metrics import MetricsRegistry
from repro.serving.procpool import ProcessPool
from repro.utils.faults import probe
from repro.utils.logging import get_logger

LOGGER = get_logger("serving.service")


class ServiceNotReadyError(RuntimeError):
    """Raised for requests arriving before warm-up has finished."""


@dataclass(frozen=True)
class _LinkRequest:
    query: str
    k: Optional[int]
    #: Span captured at submit time; the batcher's worker thread
    #: re-enters it so linker spans nest under the right request.
    ctx: Optional[object] = None


class LinkingService:
    """A long-lived, concurrent wrapper around one trained linker."""

    def __init__(
        self,
        linker: NeuralConceptLinker,
        config: Optional[ServingConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.linker = linker
        self.config = config if config is not None else ServingConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(
                sample_rate=self.config.trace_sample_rate,
                capacity=self.config.trace_buffer,
            )
        )
        self.slo = SloTracker(
            window_s=self.config.slo_window_s,
            availability_objective=self.config.slo_availability,
            deadline_ms=self.config.deadline_ms,
        )
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._stop_lock = threading.Lock()
        self._warm_error: Optional[Exception] = None
        self._warm_thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        # Serialises model access between the batcher worker and a
        # blue/green engine flip: _handle_batch holds it around every
        # link_batch call, exclusive() hands it to the swapper, so a
        # batch either completes entirely on the old engine or starts
        # entirely on the new one.
        self._model_lock = threading.Lock()
        self._lifecycle: Optional[object] = None
        self._batcher: MicroBatcher[_LinkRequest, LinkResult] = MicroBatcher(
            self._handle_batch,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.batch_wait_ms,
            name="link",
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self, wait: bool = False) -> "LinkingService":
        """Begin warm-up; with ``wait`` block until the service is ready."""
        if self._stopped.is_set():
            raise RuntimeError(
                "service was stopped; build a new LinkingService to restart"
            )
        if self._started_at is not None:
            raise RuntimeError("service already started")
        self._started_at = time.monotonic()
        if self.config.warm_on_start:
            self._warm_thread = threading.Thread(
                target=self._warm, name="link-warmup", daemon=True
            )
            self._warm_thread.start()
        else:
            self._ready.set()
        if wait:
            self._ready.wait()
            if self._warm_error is not None:
                raise RuntimeError("warm-up failed") from self._warm_error
        return self

    def _warm(self) -> None:
        # Bounded retry-with-backoff: a transiently failing warm-up
        # (cold storage, a flaky first batch of encodes) should not
        # condemn the instance to serving cold forever.  Only Exception
        # is caught — KeyboardInterrupt/SystemExit must still unwind the
        # thread (the finally flips readiness either way: the caches
        # fill lazily, so serving slowly beats serving nothing).
        try:
            attempts = self.config.warm_retries + 1
            for attempt in range(1, attempts + 1):
                started = time.monotonic()
                try:
                    probe("service.warm")
                    warmed = self.linker.warm_cache()
                except Exception as error:  # noqa: BLE001 - retried, then recorded
                    self._warm_error = error
                    self.metrics.counter("warmup_failures").inc()
                    LOGGER.error(
                        "warm-up attempt %d/%d failed: %s",
                        attempt,
                        attempts,
                        error,
                    )
                    if attempt == attempts or self._stopped.is_set():
                        break
                    backoff = self.config.warm_backoff_s * (2.0 ** (attempt - 1))
                    self.metrics.counter("warmup_retries").inc()
                    if self._stopped.wait(backoff):
                        break
                else:
                    self._warm_error = None
                    elapsed = time.monotonic() - started
                    self.metrics.histogram("warmup_seconds").observe(elapsed)
                    LOGGER.info(
                        "warm-up done: %d encodings in %.2fs (attempt %d)",
                        warmed,
                        elapsed,
                        attempt,
                    )
                    break
        finally:
            self._ready.set()

    def stop(self) -> None:
        """Drain in-flight requests and stop the batcher.

        Idempotent and safe from any state: before ``start`` (nothing
        to drain), after it (drains), concurrently from several threads
        (one winner does the teardown), and repeatedly (no-ops).  A
        stopped service cannot be restarted.
        """
        with self._stop_lock:
            if self._stopped.is_set():
                return
            self._stopped.set()
        lifecycle = self._lifecycle
        if lifecycle is not None:
            close = getattr(lifecycle, "close", None)
            if callable(close):
                close()
        self._batcher.close()
        if self._warm_thread is not None:
            self._warm_thread.join(timeout=5.0)

    @property
    def healthy(self) -> bool:
        """Liveness: the process can still execute requests."""
        return not self._stopped.is_set()

    @property
    def ready(self) -> bool:
        """Readiness: warm-up finished and the service is accepting work."""
        return self._ready.is_set() and not self._stopped.is_set()

    @property
    def uptime_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    # -- request path -------------------------------------------------------

    def link(
        self,
        query: str,
        k: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> LinkResult:
        """Link one query through the micro-batcher (blocking)."""
        return self.link_many([query], k=k, timeout=timeout)[0]

    def link_many(
        self,
        queries: Sequence[str],
        k: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> List[LinkResult]:
        """Link several queries, submitted to the batcher as one burst.

        Admission control is burst-level: a burst arriving while the
        batcher's queue already holds ``admission_queue`` or more items
        is shed whole (:class:`ShedError`, HTTP 503 code ``shed``)
        rather than split or queued unboundedly.  A burst from an empty
        queue is always admitted, whatever its size — shedding half a
        request would break its all-or-nothing contract.
        """
        if not self.ready:
            self.metrics.counter("requests_rejected").inc()
            raise ServiceNotReadyError("service is not ready")
        bound = self.config.admission_queue
        if bound > 0 and self._batcher.qsize() >= bound:
            self.metrics.counter("requests_shed").inc()
            # The shed must be visible in the trace, not only counters.
            trace.span_event("frontend.shed", reason="queue_full")
            for _ in queries:
                self.slo.record(0.0, outcome="shed")
            raise ShedError(
                "queue_full",
                f"admission queue is full ({bound} waiting); request shed",
            )
        wait = timeout if timeout is not None else self.config.request_timeout_s
        started = time.monotonic()
        # One span per query, captured here (the caller's context, under
        # the HTTP root span if any) and carried with the request so the
        # batcher's worker thread can nest linker spans beneath it.  The
        # span stays open until the future resolves: its duration is the
        # queue wait plus model time, i.e. what the caller experienced.
        spans = [
            trace.start_span("service.request", query=query)
            for query in queries
        ]
        futures = [
            self._batcher.submit_nowait(
                _LinkRequest(
                    query=query, k=k, ctx=span if span.is_recording else None
                )
            )
            for query, span in zip(queries, spans)
        ]
        results: List[LinkResult] = []
        try:
            for span, future in zip(spans, futures):
                remaining = wait - (time.monotonic() - started)
                try:
                    result = future.result(max(remaining, 0.0))
                except BaseException as error:
                    span.set_tag("error", type(error).__name__)
                    raise
                results.append(result)
                span.set_tag("results", len(result.ranked))
                if result.degraded:
                    span.set_tag("degraded", True)
                    span.set_tag("degraded_reason", result.degraded_reason)
        except TimeoutError:
            self.metrics.counter("requests_timeout").inc()
            for _ in queries:
                self.slo.record(0.0, outcome="error")
            raise
        except Exception:
            # Exception, not BaseException: KeyboardInterrupt/SystemExit
            # must propagate without being booked as request failures.
            self.metrics.counter("requests_failed").inc()
            for _ in queries:
                self.slo.record(0.0, outcome="error")
            raise
        finally:
            for span in spans:
                span.end()
        elapsed = time.monotonic() - started
        for result in results:
            self.metrics.counter("requests_total").inc()
            self.metrics.counter("concepts_returned").inc(len(result.ranked))
            self.metrics.observe_breakdown(result.timing)
            self.slo.record(elapsed, outcome="ok")
            if result.degraded:
                self.metrics.counter("requests_degraded").inc()
                reason = result.degraded_reason or ""
                if reason.startswith("error"):
                    self.metrics.counter("phase2_failures").inc()
                elif reason.startswith("budget"):
                    self.metrics.counter("phase2_budget_exceeded").inc()
        self.metrics.histogram("request_seconds").observe(elapsed)
        return results

    def _handle_batch(
        self, requests: Sequence[_LinkRequest]
    ) -> List[LinkResult]:
        self.metrics.counter("batches_total").inc()
        self.metrics.histogram(
            "batch_size", bounds=[1, 2, 4, 8, 16, 32, 64, 128]
        ).observe(len(requests))
        with self._model_lock:
            results = self.linker.link_batch(
                [request.query for request in requests],
                k=[request.k for request in requests],
                trace_contexts=[request.ctx for request in requests],
            )
        lifecycle = self._lifecycle
        if lifecycle is not None:
            # The observer taps uncertain queries and mirrors traffic
            # onto a shadowing candidate; it must never fail a request.
            try:
                lifecycle.observe_results(results)
            except Exception as error:  # noqa: BLE001 - tap is best-effort
                self.metrics.counter("lifecycle_observer_errors").inc()
                LOGGER.warning("lifecycle observer failed: %s", error)
        return results

    # -- model lifecycle ----------------------------------------------------

    @contextmanager
    def exclusive(self):
        """Exclusive model access: no batch runs while the block does.

        The blue/green swapper flips the linker's engine pointer inside
        this context; in-flight batches complete first (the batcher
        worker holds the same lock around ``link_batch``).
        """
        with self._model_lock:
            yield

    def attach_lifecycle(self, controller: object) -> None:
        """Install the lifecycle controller tapping this service's traffic."""
        if self._lifecycle is not None:
            raise RuntimeError("a lifecycle controller is already attached")
        self._lifecycle = controller

    @property
    def lifecycle(self) -> Optional[object]:
        """The attached lifecycle controller, or None."""
        return self._lifecycle

    @property
    def ontology(self):
        """The ontology answers are rendered against (for the server)."""
        return self.linker.ontology

    # -- introspection ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-ready report: metrics + caches + batcher + lifecycle."""
        report: Dict[str, Any] = {
            "ready": self.ready,
            "healthy": self.healthy,
            "uptime_seconds": self.uptime_seconds,
            "config": {
                "max_batch_size": self.config.max_batch_size,
                "batch_wait_ms": self.config.batch_wait_ms,
                "request_timeout_s": self.config.request_timeout_s,
                "warm_on_start": self.config.warm_on_start,
                "admission_queue": self.config.admission_queue,
            },
        }
        report.update(self.metrics.snapshot())
        report["batcher"] = self._batcher.stats.as_dict()
        report["traces"] = self.tracer.stats()
        report["slo"] = self.slo.snapshot()
        cache_stats = getattr(self.linker, "cache_stats", None)
        if callable(cache_stats):
            report["caches"] = {
                stats.name: stats.as_dict() for stats in cache_stats()
            }
        # Deployment provenance (training seed, checkpoint/resume point)
        # from the pipeline manifest, so BENCH runs can attribute
        # degradation rates to the exact model build.
        report["pipeline"] = dict(
            getattr(self.linker, "pipeline_metadata", None) or {}
        )
        # Sharded-engine counters (shard sizes, scatter-gather failure
        # counts) when the linker serves from a compiled artifact.
        engine = getattr(self.linker, "engine", None)
        if engine is not None:
            report["engine"] = engine.stats()
        # Lifecycle state (pool fill, swap state, rollback reason
        # codes) when a controller is attached — the operator's view of
        # an in-progress blue/green swap.
        if self._lifecycle is not None:
            status = getattr(self._lifecycle, "status", None)
            if callable(status):
                report["lifecycle"] = status()
        return report


class ProcPoolLinkingService:
    """The GIL-free serving tier: N forked workers behind a front-end.

    Duck-types :class:`LinkingService` for everything the HTTP server
    touches — ``healthy`` / ``ready`` / ``link_many`` / ``snapshot`` /
    ``metrics`` / ``tracer`` / ``ontology`` / ``stop`` — but instead of
    a micro-batcher thread it runs ``config.workers`` forked processes
    (:mod:`repro.serving.procpool`), each mmap-ing the compiled
    artifact (zero copy) and decoding outside the parent's GIL, behind
    an :class:`~repro.serving.frontend.AsyncFrontend` that admits,
    sheds, fuses, and dispatches (:mod:`repro.serving.frontend`).

    ``build_linker`` is invoked *inside each forked child* — it should
    construct the worker's linker with ``mmap_artifact=True`` and
    ``fuse_phase2=True`` (the CLI and test fixtures do).  The parent
    never builds a linker; it only needs ``ontology`` to render
    concept descriptions in responses.

    Determinism: every worker runs the same pure function over the
    same frozen artifact, so rankings are identical to the in-process
    reference regardless of worker count or request interleaving — the
    cross-process equivalence suite's guarantee.

    The model lifecycle (blue/green swap) is not wired for this tier:
    ``lifecycle`` is always None and ``attach_lifecycle`` refuses.
    """

    def __init__(
        self,
        build_linker,
        ontology,
        config: Optional[ServingConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config if config is not None else ServingConfig()
        if self.config.workers < 1:
            raise ValueError(
                "ProcPoolLinkingService requires ServingConfig.workers >= 1"
            )
        self._build_linker = build_linker
        self._ontology = ontology
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(
                sample_rate=self.config.trace_sample_rate,
                capacity=self.config.trace_buffer,
            )
        )
        self.slo = SloTracker(
            window_s=self.config.slo_window_s,
            availability_objective=self.config.slo_availability,
            deadline_ms=self.config.deadline_ms,
        )
        self._frontend: Optional[AsyncFrontend] = None
        self._stopped = threading.Event()
        self._started_at: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self, wait: bool = False) -> "ProcPoolLinkingService":
        """Fork the workers; with ``wait`` block until all are ready."""
        if self._stopped.is_set():
            raise RuntimeError(
                "service was stopped; build a new service to restart"
            )
        if self._started_at is not None:
            raise RuntimeError("service already started")
        self._started_at = time.monotonic()
        pool = ProcessPool(
            self._build_linker,
            self.config.workers,
            warm=self.config.warm_on_start,
        )
        self._frontend = AsyncFrontend(
            pool,
            admission_bound=self.config.admission_queue,
            deadline_ms=self.config.deadline_ms,
            shed_policy=self.config.shed_policy,
            max_batch_size=self.config.max_batch_size,
            metrics=self.metrics,
        )
        if wait:
            self._frontend.all_ready.wait()
            if self._frontend.init_error is not None:
                raise RuntimeError(
                    f"worker start-up failed: {self._frontend.init_error}"
                )
        return self

    def stop(self) -> None:
        """Stop the front-end and tear the worker pool down (idempotent)."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        if self._frontend is not None:
            self._frontend.stop()

    @property
    def healthy(self) -> bool:
        return not self._stopped.is_set()

    @property
    def ready(self) -> bool:
        """All workers handshook ready; a worker init failure (e.g. a
        corrupt slab at map time) keeps this False forever."""
        return (
            not self._stopped.is_set()
            and self._frontend is not None
            and self._frontend.ready
        )

    @property
    def uptime_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    @property
    def lifecycle(self) -> Optional[object]:
        return None

    def attach_lifecycle(self, controller: object) -> None:
        """Refused: workers hold forked model copies a swap can't reach."""
        raise RuntimeError(
            "the multi-process tier does not support the model lifecycle; "
            "run workers=0 for blue/green swaps"
        )

    @property
    def ontology(self):
        """The ontology answers are rendered against (for the server)."""
        return self._ontology

    # -- request path -------------------------------------------------------

    def link(
        self,
        query: str,
        k: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> LinkResult:
        """Link one query through the worker pool (may shed)."""
        return self.link_many([query], k=k, timeout=timeout)[0]

    def link_many(
        self,
        queries: Sequence[str],
        k: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> List[LinkResult]:
        """Link a burst through the admission queue and worker pool.

        The burst is admitted (or shed) atomically, dispatched to one
        worker — possibly fused with other in-flight bursts — and its
        results come back in submission order.  Raises
        :class:`~repro.serving.frontend.ShedError` under overload,
        ``TimeoutError`` past the request budget, and
        :class:`ServiceNotReadyError` before the workers are up.
        """
        if not self.ready:
            self.metrics.counter("requests_rejected").inc()
            detail = ""
            if self._frontend is not None and self._frontend.init_error:
                # Surface the poisoned rollout's cause to the caller:
                # "not ready" with N-1 live workers hiding a corrupt
                # slab is the outage mode hardest to diagnose blind.
                detail = (
                    f": worker start-up failed ({self._frontend.init_error})"
                )
            raise ServiceNotReadyError(f"service is not ready{detail}")
        assert self._frontend is not None
        wait = timeout if timeout is not None else self.config.request_timeout_s
        started = time.monotonic()
        spans = [
            trace.start_span("service.request", query=query)
            for query in queries
        ]
        try:
            try:
                future = self._frontend.submit(
                    list(queries), [k] * len(queries), spans=spans
                )
            except ShedError:
                self.metrics.counter("requests_shed").inc()
                for _ in queries:
                    self.slo.record(0.0, outcome="shed")
                raise
            try:
                results: List[LinkResult] = future.result(wait)
            except ShedError:
                self.metrics.counter("requests_shed").inc()
                for _ in queries:
                    self.slo.record(0.0, outcome="shed")
                raise
            except TimeoutError:
                self.metrics.counter("requests_timeout").inc()
                for _ in queries:
                    self.slo.record(0.0, outcome="error")
                raise
            except Exception:
                self.metrics.counter("requests_failed").inc()
                for _ in queries:
                    self.slo.record(0.0, outcome="error")
                raise
            for span, result in zip(spans, results):
                span.set_tag("results", len(result.ranked))
                if result.degraded:
                    span.set_tag("degraded", True)
                    span.set_tag("degraded_reason", result.degraded_reason)
        except BaseException as error:
            for span in spans:
                if span.is_recording:
                    span.set_tag("error", type(error).__name__)
            raise
        finally:
            for span in spans:
                span.end()
        elapsed = time.monotonic() - started
        for result in results:
            self.metrics.counter("requests_total").inc()
            self.metrics.counter("concepts_returned").inc(len(result.ranked))
            self.metrics.observe_breakdown(result.timing)
            self.slo.record(elapsed, outcome="ok")
            if result.degraded:
                self.metrics.counter("requests_degraded").inc()
                reason = result.degraded_reason or ""
                if reason.startswith("error"):
                    self.metrics.counter("phase2_failures").inc()
                elif reason.startswith("budget"):
                    self.metrics.counter("phase2_budget_exceeded").inc()
        self.metrics.histogram("request_seconds").observe(elapsed)
        return results

    # -- introspection ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready report: metrics + front-end + per-worker stats."""
        report: Dict[str, Any] = {
            "ready": self.ready,
            "healthy": self.healthy,
            "uptime_seconds": self.uptime_seconds,
            "config": {
                "workers": self.config.workers,
                "admission_queue": self.config.admission_queue,
                "deadline_ms": self.config.deadline_ms,
                "shed_policy": self.config.shed_policy,
                "max_batch_size": self.config.max_batch_size,
                "request_timeout_s": self.config.request_timeout_s,
                "warm_on_start": self.config.warm_on_start,
            },
        }
        report.update(self.metrics.snapshot())
        report["traces"] = self.tracer.stats()
        report["slo"] = self.slo.snapshot()
        if self._frontend is not None:
            report["frontend"] = self._frontend.stats()
        return report
