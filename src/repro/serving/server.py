"""Stdlib-only threaded HTTP JSON API in front of a LinkingService.

The API is versioned under ``/v1`` (JSON unless noted).  Consolidated
route reference:

=======  ======================  ==========================================
Method   Route                   Purpose
=======  ======================  ==========================================
POST     ``/v1/link``            Link queries (optionally tenant-scoped)
POST     ``/v1/map``             Project a concept across tenant ontologies
GET      ``/healthz``            Liveness (canonical unversioned)
GET      ``/readyz``             Readiness (canonical unversioned)
GET      ``/v1/metrics``         Service snapshot / Prometheus exposition
GET      ``/v1/traces``          Sampled span traces from the ring buffer
GET      ``/v1/admin/tenants``   Tenant registry state (multi-tenant only)
GET      ``/v1/admin/lifecycle`` Model-lifecycle status
GET      ``/v1/admin/workers``   Multi-process tier introspection
POST     ``/v1/admin/swap``      Drive the blue/green artifact swapper
=======  ======================  ==========================================

* ``POST /v1/link`` — body ``{"query": "..."}`` or ``{"queries":
  [...]}`` with optional ``"k"``, ``"top"``, and ``"tenant"``;
  responds ``{"results": [...], "request_id": ..., "api_version":
  ...}`` where each result carries the ranked concepts, applied
  rewrites, and the per-query OR/CR/ED/RT timing breakdown (Figure
  11's decomposition).  An ``X-Request-ID`` request header is
  honoured (else one is generated); it is echoed as a response
  header, embedded in the payload, stamped on every correlated JSON
  log line, and is the key for finding the request's trace.  On a
  multi-tenant deployment the tenant is named by the body ``tenant``
  field and/or the ``X-Tenant`` header (they must agree; naming none
  routes to the configured default tenant), and the response carries
  the resolved ``"tenant"``.  Single-tenant deployments with no
  tenant named answer **bit-identically** to the pre-tenancy server.
* ``POST /v1/map`` — cross-ontology projection: body ``{"query":
  ..., "source": tenant, "target": tenant}`` links the query in the
  source tenant's ontology and projects the top concept into the
  target tenant's via shared-alias anchors (``{"cid": ...}`` instead
  of ``query`` projects an already-linked concept); optional ``"k"``
  and ``"limit"``.  404 ``mapping_disabled`` on single-tenant
  deployments.
* ``GET /healthz`` (alias ``/v1/healthz``) — liveness; 200 while the
  process can serve.
* ``GET /readyz`` (alias ``/v1/readyz``) — readiness; 503 until
  warm-up finishes, then 200.
* ``GET /v1/metrics`` — the service snapshot (counters, latency
  histograms with p50/p95/p99, cache, batcher, and sharded-engine
  statistics; plus the per-tenant registry view on multi-tenant
  deployments); ``?format=prometheus`` (or an ``Accept: text/plain``
  header) returns Prometheus text exposition instead, with
  ``tenant``-labeled series when tenants are declared.
* ``GET /v1/traces`` — recent sampled span traces from the ring
  buffer (``?limit=N`` bounds the reply, ``?request_id=...`` fetches
  one).
* ``GET /v1/admin/tenants`` — the tenant registry: per-tenant
  load/evict state, accounted bytes, quota windows, request counts,
  and SLO windows; 404 ``tenants_disabled`` on single-tenant
  deployments.  v1-only.
* ``GET /v1/admin/lifecycle`` — model-lifecycle status (uncertainty
  pool fill, swap state, shadow report, rollback reason codes); 404
  ``lifecycle_disabled`` when no controller is attached.  On
  multi-tenant deployments ``?tenant=NAME`` targets one tenant's
  controller.
* ``GET /v1/admin/workers`` — multi-process tier introspection: the
  per-worker slot table (pid, readiness, job/query/error/respawn/
  degrade counts, busy seconds), the front-end's queue/shed/fusion
  counters, and the rolling SLO window; 404 ``workers_disabled`` on
  the single-process tier.  v1-only.
* ``POST /v1/admin/swap`` — body ``{"action": "promote"}`` (optional
  ``"force": true``) or ``{"action": "rollback"}``; drives the
  blue/green swapper.  Promotion blocked by a quality gate answers 409
  ``swap_blocked`` with the shadow report; rollback with nothing to
  roll back answers 409 ``no_candidate``.  v1-only (no legacy alias).
  On multi-tenant deployments a body ``"tenant"`` targets that
  tenant's controller.

**Retired routes.**  The pre-versioning routes ``/link``,
``/metrics``, and ``/traces`` carried ``Deprecation: true`` plus a
``Link: rel="successor-version"`` header for two releases; they now
answer **410 Gone** with the standard error envelope (code ``gone``)
and the same ``Link`` header naming the ``/v1`` successor.  Migration:
prepend ``/v1`` to the path — request and response bodies are
unchanged.  ``/healthz`` and ``/readyz`` remain canonical unversioned
(load-balancer convention).

Errors share one envelope across every endpoint: ``{"error": {"code":
..., "message": ..., "request_id": ...}}`` with 400 for bad requests,
404 for unknown routes/traces/tenants (code ``unknown_tenant``), 410
for retired routes (code ``gone``), 429 when a tenant's quota window
is exhausted (code ``quota_exceeded``, with a ``Retry-After``
header), 503 before readiness (code ``not_ready``) or under load
shedding (code ``shed``), 504 on request timeout, and 500 for
anything unexpected.  One OS thread per connection
(``ThreadingHTTPServer``) is plenty here because the model-bound work
is serialised by the batcher anyway; threads only overlap on parsing
and I/O.
"""

from __future__ import annotations

import json
import math
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.api import API_VERSION
from repro.core.linker import LinkResult
from repro.obs import trace
from repro.obs.prom import (
    render_prometheus,
    snapshot_gauges,
    tenant_series,
    worker_series,
)
from repro.serving.frontend import ShedError
from repro.serving.service import LinkingService, ServiceNotReadyError
from repro.tenancy.errors import QuotaExceededError, UnknownTenantError
from repro.utils.errors import ReproError
from repro.utils.logging import get_logger

LOGGER = get_logger("serving.server")

MAX_BODY_BYTES = 1 << 20  # 1 MiB of JSON is already thousands of queries
MAX_QUERIES_PER_REQUEST = 256

#: URL prefix of the current stable HTTP surface.
V1_PREFIX = "/v1"


class BadRequestError(ValueError):
    """Client-side request problem, reported as HTTP 400."""


def error_envelope(
    code: str, message: str, request_id: str
) -> Dict[str, Any]:
    """The one error shape every endpoint answers with.

    ``code`` is a stable, machine-matchable identifier (``bad_request``,
    ``not_ready``, ``timeout``, ``not_found``, ``trace_not_found``,
    ``internal``, or a ``ReproError`` class name); ``message`` is
    human-facing prose; ``request_id`` correlates the failure with logs
    and traces.
    """
    return {
        "error": {
            "code": code,
            "message": message,
            "request_id": request_id,
        }
    }


def result_to_json(
    result: LinkResult, ontology: Any, top: Optional[int] = None
) -> Dict[str, Any]:
    """Serialise one LinkResult against the ontology that produced it.

    ``ontology`` is passed explicitly (rather than read off the
    server's service) because on a multi-tenant deployment each result
    renders against its own tenant's ontology.  Degraded results
    (Phase I keyword ranking only) report ``null`` for
    ``log_prob``/``loss``: ``-inf`` is not valid strict JSON, and a
    sentinel number would be indistinguishable from a real score.
    """
    ranked = result.ranked if top is None else result.ranked[:top]
    return {
        "query": result.query,
        "tokens": list(result.tokens),
        "rewritten_tokens": list(result.rewritten_tokens),
        "rewrites": [
            {"original": rewrite.original, "replacement": rewrite.replacement}
            for rewrite in result.rewrites
        ],
        "ranked": [
            {
                "cid": concept.cid,
                "log_prob": (
                    concept.log_prob
                    if math.isfinite(concept.log_prob)
                    else None
                ),
                "loss": concept.loss if math.isfinite(concept.loss) else None,
                "keyword_score": concept.keyword_score,
                "description": ontology.get(concept.cid).description,
            }
            for concept in ranked
        ],
        "timing": result.timing.as_dict(),
        "degraded": result.degraded,
        "degraded_reason": result.degraded_reason,
    }


def _parse_tenant_field(payload: Dict[str, Any]) -> Optional[str]:
    """The body's optional ``tenant`` field (None when absent)."""
    tenant = payload.get("tenant")
    if tenant is None:
        return None
    if not isinstance(tenant, str) or not tenant.strip():
        raise BadRequestError("'tenant' must be a non-empty string")
    return tenant.strip()


def _parse_link_body(payload: Any) -> Tuple[list, Optional[int], Optional[int]]:
    """Validate a /link body; returns ``(queries, k, top)``."""
    if not isinstance(payload, dict):
        raise BadRequestError("request body must be a JSON object")
    has_query = "query" in payload
    has_queries = "queries" in payload
    if has_query == has_queries:
        raise BadRequestError(
            "provide exactly one of 'query' (string) or 'queries' (list)"
        )
    if has_query:
        query = payload["query"]
        if not isinstance(query, str) or not query.strip():
            raise BadRequestError("'query' must be a non-empty string")
        queries = [query]
    else:
        queries = payload["queries"]
        if not isinstance(queries, list) or not queries:
            raise BadRequestError("'queries' must be a non-empty list")
        if len(queries) > MAX_QUERIES_PER_REQUEST:
            raise BadRequestError(
                f"at most {MAX_QUERIES_PER_REQUEST} queries per request"
            )
        if not all(isinstance(q, str) and q.strip() for q in queries):
            raise BadRequestError("'queries' entries must be non-empty strings")
    k = payload.get("k")
    if k is not None and (not isinstance(k, int) or isinstance(k, bool) or k < 1):
        raise BadRequestError("'k' must be a positive integer")
    top = payload.get("top")
    if top is not None and (
        not isinstance(top, int) or isinstance(top, bool) or top < 1
    ):
        raise BadRequestError("'top' must be a positive integer")
    return queries, k, top


class _LinkRequestHandler(BaseHTTPRequestHandler):
    server: "LinkingHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        LOGGER.debug("%s %s", self.address_string(), format % args)

    def _respond(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        # Every JSON response self-describes its API version, so a
        # client (or a capture in a bug report) is never ambiguous
        # about which surface produced it.
        payload.setdefault("api_version", API_VERSION)
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _respond_text(
        self,
        status: int,
        text: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _request_id(self) -> str:
        """This request's correlation id (header-supplied or generated)."""
        return (
            self.headers.get("X-Request-ID") or ""
        ).strip() or trace.new_request_id()

    def _respond_error(
        self,
        status: int,
        code: str,
        message: str,
        request_id: Optional[str] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        # Every error echoes X-Request-ID, like success responses do:
        # a shed or init-failure 503 is exactly the response a caller
        # most needs to correlate with logs and traces.
        rid = request_id or self._request_id()
        merged = {"X-Request-ID": rid}
        if headers:
            merged.update(headers)
        self._respond(
            status, error_envelope(code, message, rid), headers=merged
        )

    def _route(self) -> Tuple[str, Dict[str, list], bool]:
        """``(normalised path, query params, legacy?)``.

        The ``/v1`` prefix is stripped so one dispatch serves both
        surfaces; ``legacy`` marks a pre-versioning path, which answers
        identically but carries deprecation headers.
        """
        parts = urlsplit(self.path)
        path = parts.path
        params = parse_qs(parts.query)
        if path == V1_PREFIX or path.startswith(V1_PREFIX + "/"):
            return path[len(V1_PREFIX):] or "/", params, False
        return path, params, True

    def _respond_gone(self, path: str) -> None:
        """410 for a retired pre-versioning route, naming the successor.

        These routes carried ``Deprecation: true`` for two releases;
        the tombstone keeps the ``Link: rel="successor-version"``
        header so unmigrated clients still learn the ``/v1`` path from
        the failure itself.
        """
        successor = f"{V1_PREFIX}{path}"
        self._respond_error(
            410,
            "gone",
            f"{path} was retired; use {successor} (same request and "
            "response bodies)",
            headers={"Link": f'<{successor}>; rel="successor-version"'},
        )

    def _tenant_header(self) -> Optional[str]:
        """The ``X-Tenant`` request header (None when absent/blank)."""
        value = (self.headers.get("X-Tenant") or "").strip()
        return value or None

    # -- GET ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        path, params, legacy = self._route()
        # Health endpoints are canonical unversioned (load-balancer
        # convention); /metrics and /traces moved under /v1, and their
        # bare pre-versioning forms are retired (410 Gone).
        if legacy and path in ("/metrics", "/traces"):
            self._respond_gone(path)
            return
        extra: Optional[Dict[str, str]] = None
        if path == "/healthz":
            if service.healthy:
                self._respond(200, {"status": "ok"})
            else:
                self._respond_error(503, "unhealthy", "service is stopping")
        elif path == "/readyz":
            if service.ready:
                self._respond(200, {"status": "ready"})
            else:
                self._respond_error(
                    503, "not_ready", "warm-up has not completed"
                )
        elif path == "/metrics":
            accepts = self.headers.get("Accept", "")
            wants_text = (
                params.get("format", [""])[0] == "prometheus"
                or "text/plain" in accepts
            )
            snapshot = service.snapshot()
            if wants_text:
                self._respond_text(
                    200,
                    render_prometheus(
                        service.metrics,
                        gauges=snapshot_gauges(snapshot),
                        labeled=[
                            *worker_series(snapshot),
                            *tenant_series(snapshot),
                        ],
                    ),
                    headers=extra,
                )
            else:
                self._respond(200, snapshot, headers=extra)
        elif path == "/traces":
            self._respond_traces(params, extra)
        elif path == "/admin/workers" and not legacy:
            snapshot = service.snapshot()
            frontend = snapshot.get("frontend")
            if frontend is None:
                self._respond_error(
                    404,
                    "workers_disabled",
                    "this service runs the single-process tier (workers=0)",
                )
            else:
                self._respond(
                    200,
                    {
                        "workers": frontend.get("workers", []),
                        "frontend": {
                            key: value
                            for key, value in frontend.items()
                            if key != "workers"
                        },
                        "slo": snapshot.get("slo"),
                    },
                )
        elif path == "/admin/tenants" and not legacy:
            if not getattr(service, "multi_tenant", False):
                self._respond_error(
                    404,
                    "tenants_disabled",
                    "this deployment is single-tenant (no tenants section)",
                )
            else:
                self._respond(200, service.registry.snapshot())
        elif path == "/admin/lifecycle" and not legacy:
            tenant_param = params.get("tenant", [None])[0]
            if getattr(service, "multi_tenant", False):
                try:
                    lifecycle = service.lifecycle_for(tenant_param)
                except UnknownTenantError as error:
                    self._respond_error(404, "unknown_tenant", str(error))
                    return
            elif tenant_param is not None:
                self._respond_error(
                    404,
                    "unknown_tenant",
                    "this deployment is single-tenant; drop the 'tenant' "
                    "parameter",
                )
                return
            else:
                lifecycle = getattr(service, "lifecycle", None)
            if lifecycle is None:
                self._respond_error(
                    404,
                    "lifecycle_disabled",
                    "no lifecycle controller is attached to this service",
                )
            else:
                self._respond(200, {"lifecycle": lifecycle.status()})
        else:
            self._respond_error(404, "not_found", f"no route for {self.path}")

    def _respond_traces(
        self, params: Dict[str, list], headers: Optional[Dict[str, str]]
    ) -> None:
        tracer = self.server.service.tracer
        request_id = params.get("request_id", [None])[0]
        if request_id:
            found = tracer.find(request_id)
            if found is None:
                self._respond_error(
                    404,
                    "trace_not_found",
                    f"no retained trace for request {request_id!r} "
                    "(evicted from the ring buffer, or never sampled)",
                    headers=headers,
                )
                return
            self._respond(
                200,
                {"traces": [found], "stats": tracer.stats()},
                headers=headers,
            )
            return
        limit_raw = params.get("limit", [None])[0]
        limit: Optional[int] = None
        if limit_raw is not None:
            try:
                limit = int(limit_raw)
            except ValueError:
                self._respond_error(
                    400,
                    "bad_request",
                    "'limit' must be an integer",
                    headers=headers,
                )
                return
        self._respond(
            200,
            {"traces": tracer.traces(limit=limit), "stats": tracer.stats()},
            headers=headers,
        )

    # -- POST ---------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path, _, legacy = self._route()
        if legacy:
            if path == "/link":
                self._respond_gone(path)
            else:
                self._respond_error(
                    404, "not_found", f"no route for {self.path}"
                )
            return
        if path == "/admin/swap":
            self._handle_swap()
            return
        if path == "/map":
            self._handle_map()
            return
        if path != "/link":
            self._respond_error(404, "not_found", f"no route for {self.path}")
            return
        # The request ID exists whether or not this trace is sampled:
        # it is echoed in the response (header + body), stamped on the
        # JSON logs, and — when sampled — keys the span tree in /traces.
        request_id = self._request_id()
        root = self.server.service.tracer.start_trace(
            "http.link", request_id=request_id
        )
        with root:
            status, payload, extra = self._handle_link(root, request_id)
            root.set_tag("status", status)
        payload["request_id"] = request_id
        headers = {"X-Request-ID": request_id}
        headers.update(extra)
        self._respond(status, payload, headers=headers)

    def _resolve_tenant(self, payload: Dict[str, Any]) -> Optional[str]:
        """The request's tenant from body field and/or ``X-Tenant``.

        Both channels exist so curl-style callers can use the body and
        proxy/gateway deployments can inject a header; when both are
        present they must agree — silently preferring one would make
        misrouted requests undebuggable.
        """
        body_tenant = _parse_tenant_field(payload)
        header_tenant = self._tenant_header()
        if (
            body_tenant is not None
            and header_tenant is not None
            and body_tenant != header_tenant
        ):
            raise BadRequestError(
                f"body tenant {body_tenant!r} and X-Tenant header "
                f"{header_tenant!r} disagree"
            )
        return body_tenant if body_tenant is not None else header_tenant

    def _handle_link(
        self, root: Any, request_id: str
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Run one /link request under ``root``.

        Returns ``(status, body, extra headers)``.
        """

        def error_body(code: str, message: str) -> Dict[str, Any]:
            return error_envelope(code, message, request_id)

        service = self.server.service
        multi_tenant = getattr(service, "multi_tenant", False)
        tenant: Optional[str] = None
        try:
            payload = self._read_json()
            queries, k, top = _parse_link_body(payload)
            requested = self._resolve_tenant(payload)
            root.set_tag("queries", len(queries))
            if k is not None:
                root.set_tag("k", k)
            if multi_tenant:
                tenant = service.resolve_name(requested)
                root.set_tag("tenant", tenant)
                results = service.link_many(queries, k=k, tenant=tenant)
                ontology = service.ontology_for(tenant)
            else:
                if requested is not None:
                    raise UnknownTenantError(
                        f"tenant {requested!r} was named but this "
                        "deployment is single-tenant"
                    )
                results = service.link_many(queries, k=k)
                ontology = service.ontology
        except BadRequestError as error:
            return 400, error_body("bad_request", str(error)), {}
        except UnknownTenantError as error:
            return 404, error_body("unknown_tenant", str(error)), {}
        except QuotaExceededError as error:
            # Retry-After is the seconds until the oldest request in
            # the tenant's rolling window expires, rounded up.
            retry_after = max(1, math.ceil(error.retry_after_s))
            return (
                429,
                error_body("quota_exceeded", str(error)),
                {"Retry-After": str(retry_after)},
            )
        except ServiceNotReadyError as error:
            # The exception's own message matters: for the procpool
            # tier it names a failed worker's init error.
            return 503, error_body("not_ready", str(error)), {}
        except ShedError as error:
            # Load shedding is a 503 like not-ready — the service is
            # alive but refusing this request; retry against a less
            # loaded instance (or after backoff).
            return 503, error_body("shed", str(error)), {}
        except TimeoutError:
            return (
                504,
                error_body("timeout", "request timed out; retry with backoff"),
                {},
            )
        except ReproError as error:
            return 400, error_body(type(error).__name__, str(error)), {}
        except Exception as error:  # noqa: BLE001 - last-resort boundary
            LOGGER.error("internal error serving /link: %s", error)
            return 500, error_body("internal", "internal server error"), {}
        degraded = sum(1 for result in results if result.degraded)
        LOGGER.info(
            "linked %d queries (%d degraded)", len(results), degraded
        )
        body: Dict[str, Any] = {
            "results": [
                result_to_json(result, ontology, top=top)
                for result in results
            ]
        }
        if multi_tenant:
            body["tenant"] = tenant
        return 200, body, {}

    def _handle_map(self) -> None:
        """``POST /v1/map``: cross-ontology concept projection."""
        service = self.server.service
        request_id = self._request_id()
        if not getattr(service, "multi_tenant", False):
            self._respond_error(
                404,
                "mapping_disabled",
                "cross-ontology mapping needs a multi-tenant deployment "
                "(no tenants section is configured)",
                request_id=request_id,
            )
            return
        headers = {"X-Request-ID": request_id}
        root = service.tracer.start_trace("http.map", request_id=request_id)
        try:
            with root:
                payload = self._read_json()
                if not isinstance(payload, dict):
                    raise BadRequestError("request body must be a JSON object")
                query = payload.get("query")
                cid = payload.get("cid")
                if (query is None) == (cid is None):
                    raise BadRequestError(
                        "provide exactly one of 'query' (string) or 'cid' "
                        "(string)"
                    )
                field = "query" if query is not None else "cid"
                value = query if query is not None else cid
                if not isinstance(value, str) or not value.strip():
                    raise BadRequestError(
                        f"'{field}' must be a non-empty string"
                    )
                for name in ("source", "target"):
                    given = payload.get(name)
                    if given is not None and (
                        not isinstance(given, str) or not given.strip()
                    ):
                        raise BadRequestError(
                            f"'{name}' must be a non-empty string"
                        )
                k = payload.get("k")
                if k is not None and (
                    not isinstance(k, int) or isinstance(k, bool) or k < 1
                ):
                    raise BadRequestError("'k' must be a positive integer")
                limit = payload.get("limit", 5)
                if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
                    raise BadRequestError("'limit' must be a positive integer")
                report = service.map_concept(
                    payload.get("source"),
                    payload.get("target"),
                    query=query,
                    cid=cid,
                    k=k,
                    limit=limit,
                )
                root.set_tag("source", report["source"])
                root.set_tag("target", report["target"])
            report["request_id"] = request_id
            self._respond(200, report, headers=headers)
        except BadRequestError as error:
            self._respond_error(
                400, "bad_request", str(error), request_id=request_id
            )
        except UnknownTenantError as error:
            self._respond_error(
                404, "unknown_tenant", str(error), request_id=request_id
            )
        except QuotaExceededError as error:
            self._respond_error(
                429,
                "quota_exceeded",
                str(error),
                request_id=request_id,
                headers={"Retry-After": str(max(1, math.ceil(error.retry_after_s)))},
            )
        except ServiceNotReadyError as error:
            self._respond_error(
                503, "not_ready", str(error), request_id=request_id
            )
        except ShedError as error:
            self._respond_error(503, "shed", str(error), request_id=request_id)
        except TimeoutError:
            self._respond_error(
                504,
                "timeout",
                "request timed out; retry with backoff",
                request_id=request_id,
            )
        except ReproError as error:
            self._respond_error(
                400, type(error).__name__, str(error), request_id=request_id
            )
        except Exception as error:  # noqa: BLE001 - last-resort boundary
            LOGGER.error("internal error serving /map: %s", error)
            self._respond_error(
                500, "internal", "internal server error", request_id=request_id
            )

    def _handle_swap(self) -> None:
        """``POST /v1/admin/swap``: drive the blue/green swapper.

        On a multi-tenant deployment the body's ``"tenant"`` (or the
        default tenant) names whose controller is driven; the
        single-tenant path is untouched.
        """
        service = self.server.service
        request_id = self._request_id()
        if getattr(service, "multi_tenant", False):
            self._handle_swap_multi_tenant(request_id)
            return
        lifecycle = getattr(self.server.service, "lifecycle", None)
        if lifecycle is None:
            self._respond_error(
                404,
                "lifecycle_disabled",
                "no lifecycle controller is attached to this service",
                request_id=request_id,
            )
            return
        try:
            payload = self._read_json()
        except BadRequestError as error:
            self._respond_error(
                400, "bad_request", str(error), request_id=request_id
            )
            return
        action = payload.get("action") if isinstance(payload, dict) else None
        if action not in ("promote", "rollback"):
            self._respond_error(
                400,
                "bad_request",
                "'action' must be 'promote' or 'rollback'",
                request_id=request_id,
            )
            return
        self._drive_swap(lifecycle, action, payload, request_id)

    def _handle_swap_multi_tenant(self, request_id: str) -> None:
        """The tenant-targeted swap path (multi-tenant deployments).

        The body is read *first* (unlike the single-tenant path, which
        checks for an attached controller before parsing) because the
        target tenant is named in it.
        """
        try:
            payload = self._read_json()
            if not isinstance(payload, dict):
                raise BadRequestError("request body must be a JSON object")
            requested = self._resolve_tenant(payload)
        except BadRequestError as error:
            self._respond_error(
                400, "bad_request", str(error), request_id=request_id
            )
            return
        service = self.server.service
        try:
            tenant = service.resolve_name(requested)
        except UnknownTenantError as error:
            self._respond_error(
                404, "unknown_tenant", str(error), request_id=request_id
            )
            return
        lifecycle = service.lifecycle_for(tenant)
        if lifecycle is None:
            self._respond_error(
                404,
                "lifecycle_disabled",
                f"no lifecycle controller is attached to tenant {tenant!r}",
                request_id=request_id,
            )
            return
        action = payload.get("action")
        if action not in ("promote", "rollback"):
            self._respond_error(
                400,
                "bad_request",
                "'action' must be 'promote' or 'rollback'",
                request_id=request_id,
            )
            return
        self._drive_swap(lifecycle, action, payload, request_id)

    def _drive_swap(
        self,
        lifecycle: Any,
        action: str,
        payload: Dict[str, Any],
        request_id: str,
    ) -> None:
        """Run a validated promote/rollback against one controller."""
        from repro.lifecycle.swap import LifecycleError

        headers = {"X-Request-ID": request_id}
        try:
            if action == "promote":
                force = bool(payload.get("force", False))
                report = lifecycle.promote(force=force)
                if report.get("promoted"):
                    self._respond(
                        200,
                        {"swap": report, "request_id": request_id},
                        headers=headers,
                    )
                else:
                    body = error_envelope(
                        "swap_blocked",
                        f"promotion blocked: {report.get('reason')}",
                        request_id,
                    )
                    body["swap"] = report
                    self._respond(409, body, headers=headers)
            else:
                reason = str(payload.get("reason") or "manual")
                report = lifecycle.rollback(reason)
                self._respond(
                    200,
                    {"swap": report, "request_id": request_id},
                    headers=headers,
                )
        except LifecycleError as error:
            self._respond_error(
                409, "no_candidate", str(error), request_id=request_id
            )
        except ReproError as error:
            self._respond_error(
                400, type(error).__name__, str(error), request_id=request_id
            )
        except Exception as error:  # noqa: BLE001 - last-resort boundary
            LOGGER.error("internal error serving /admin/swap: %s", error)
            self._respond_error(
                500, "internal", "internal server error", request_id=request_id
            )

    def _read_json(self) -> Any:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise BadRequestError("Content-Length header is required")
        try:
            length = int(length_header)
        except ValueError:
            raise BadRequestError("Content-Length must be an integer")
        if length <= 0:
            raise BadRequestError("request body is empty")
        if length > MAX_BODY_BYTES:
            raise BadRequestError(
                f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise BadRequestError("request body is not valid JSON")


class LinkingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries its LinkingService."""

    daemon_threads = True
    # Fast rebinds between test/deploy restarts.
    allow_reuse_address = True
    # socketserver's default listen backlog is 5; a burst of concurrent
    # clients (the whole point of this server) overflows that and shows
    # up as connection resets on a loaded machine.
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], service: LinkingService) -> None:
        super().__init__(address, _LinkRequestHandler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]


def create_server(
    service: LinkingService, host: str = "127.0.0.1", port: int = 0
) -> LinkingHTTPServer:
    """Bind (port 0 picks an ephemeral port) without starting to serve."""
    return LinkingHTTPServer((host, port), service)


def run_server(
    server: LinkingHTTPServer, install_signal_handlers: bool = True
) -> None:
    """Serve until SIGINT/SIGTERM (or ``server.shutdown()``), then drain.

    Signal handlers are only installed from the main thread (Python
    forbids them elsewhere); background callers stop the server with
    ``server.shutdown()``.
    """
    stop = threading.Event()

    def _request_stop(signum: object = None, frame: object = None) -> None:
        # shutdown() must not run on the serve_forever thread; hand it off.
        stop.set()
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signal_handlers and threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGINT, _request_stop)
        signal.signal(signal.SIGTERM, _request_stop)
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.service.stop()
        server.server_close()
        LOGGER.info("server stopped")
