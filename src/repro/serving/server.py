"""Stdlib-only threaded HTTP JSON API in front of a LinkingService.

The API is versioned under ``/v1`` (JSON unless noted):

* ``POST /v1/link`` — body ``{"query": "..."}`` or ``{"queries":
  [...]}`` with optional ``"k"``; responds ``{"results": [...],
  "request_id": ..., "api_version": "1.0"}`` where each result carries
  the ranked concepts, applied rewrites, and the per-query OR/CR/ED/RT
  timing breakdown (Figure 11's decomposition).  An ``X-Request-ID``
  request header is honoured (else one is generated); it is echoed as
  a response header, embedded in the payload, stamped on every
  correlated JSON log line, and is the key for finding the request's
  trace.
* ``GET /healthz`` (alias ``/v1/healthz``) — liveness; 200 while the
  process can serve.
* ``GET /readyz`` (alias ``/v1/readyz``) — readiness; 503 until
  warm-up finishes, then 200.
* ``GET /v1/metrics`` — the service snapshot (counters, latency
  histograms with p50/p95/p99, cache, batcher, and sharded-engine
  statistics); ``?format=prometheus`` (or an ``Accept: text/plain``
  header) returns Prometheus text exposition instead.
* ``GET /v1/traces`` — recent sampled span traces from the ring
  buffer (``?limit=N`` bounds the reply, ``?request_id=...`` fetches
  one).
* ``GET /v1/admin/lifecycle`` — model-lifecycle status (uncertainty
  pool fill, swap state, shadow report, rollback reason codes); 404
  ``lifecycle_disabled`` when no controller is attached.
* ``GET /v1/admin/workers`` — multi-process tier introspection: the
  per-worker slot table (pid, readiness, job/query/error/respawn/
  degrade counts, busy seconds), the front-end's queue/shed/fusion
  counters, and the rolling SLO window; 404 ``workers_disabled`` on
  the single-process tier.  v1-only.
* ``POST /v1/admin/swap`` — body ``{"action": "promote"}`` (optional
  ``"force": true``) or ``{"action": "rollback"}``; drives the
  blue/green swapper.  Promotion blocked by a quality gate answers 409
  ``swap_blocked`` with the shadow report; rollback with nothing to
  roll back answers 409 ``no_candidate``.  v1-only (no legacy alias).

The pre-versioning routes (``/link``, ``/metrics``, ``/traces``)
remain as aliases that answer identically but carry a
``Deprecation: true`` response header plus a ``Link:
rel="successor-version"`` pointing at the ``/v1`` route; they will be
removed in v2.

Errors share one envelope across every endpoint: ``{"error": {"code":
..., "message": ..., "request_id": ...}}`` with 400 for bad requests,
404 for unknown routes/traces, 503 before readiness (code
``not_ready``) or under load shedding (code ``shed``), 504 on request
timeout, and 500 for anything unexpected.  One OS thread per
connection (``ThreadingHTTPServer``) is plenty here because the
model-bound work is serialised by the batcher anyway; threads only
overlap on parsing and I/O.
"""

from __future__ import annotations

import json
import math
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.api import API_VERSION
from repro.core.linker import LinkResult
from repro.obs import trace
from repro.obs.prom import render_prometheus, snapshot_gauges, worker_series
from repro.serving.frontend import ShedError
from repro.serving.service import LinkingService, ServiceNotReadyError
from repro.utils.errors import ReproError
from repro.utils.logging import get_logger

LOGGER = get_logger("serving.server")

MAX_BODY_BYTES = 1 << 20  # 1 MiB of JSON is already thousands of queries
MAX_QUERIES_PER_REQUEST = 256

#: URL prefix of the current stable HTTP surface.
V1_PREFIX = "/v1"


class BadRequestError(ValueError):
    """Client-side request problem, reported as HTTP 400."""


def error_envelope(
    code: str, message: str, request_id: str
) -> Dict[str, Any]:
    """The one error shape every endpoint answers with.

    ``code`` is a stable, machine-matchable identifier (``bad_request``,
    ``not_ready``, ``timeout``, ``not_found``, ``trace_not_found``,
    ``internal``, or a ``ReproError`` class name); ``message`` is
    human-facing prose; ``request_id`` correlates the failure with logs
    and traces.
    """
    return {
        "error": {
            "code": code,
            "message": message,
            "request_id": request_id,
        }
    }


def result_to_json(
    result: LinkResult, server: "LinkingHTTPServer", top: Optional[int] = None
) -> Dict[str, Any]:
    """Serialise one LinkResult (descriptions resolved if possible).

    Degraded results (Phase I keyword ranking only) report ``null`` for
    ``log_prob``/``loss``: ``-inf`` is not valid strict JSON, and a
    sentinel number would be indistinguishable from a real score.
    """
    ontology = server.service.ontology
    ranked = result.ranked if top is None else result.ranked[:top]
    return {
        "query": result.query,
        "tokens": list(result.tokens),
        "rewritten_tokens": list(result.rewritten_tokens),
        "rewrites": [
            {"original": rewrite.original, "replacement": rewrite.replacement}
            for rewrite in result.rewrites
        ],
        "ranked": [
            {
                "cid": concept.cid,
                "log_prob": (
                    concept.log_prob
                    if math.isfinite(concept.log_prob)
                    else None
                ),
                "loss": concept.loss if math.isfinite(concept.loss) else None,
                "keyword_score": concept.keyword_score,
                "description": ontology.get(concept.cid).description,
            }
            for concept in ranked
        ],
        "timing": result.timing.as_dict(),
        "degraded": result.degraded,
        "degraded_reason": result.degraded_reason,
    }


def _parse_link_body(payload: Any) -> Tuple[list, Optional[int], Optional[int]]:
    """Validate a /link body; returns ``(queries, k, top)``."""
    if not isinstance(payload, dict):
        raise BadRequestError("request body must be a JSON object")
    has_query = "query" in payload
    has_queries = "queries" in payload
    if has_query == has_queries:
        raise BadRequestError(
            "provide exactly one of 'query' (string) or 'queries' (list)"
        )
    if has_query:
        query = payload["query"]
        if not isinstance(query, str) or not query.strip():
            raise BadRequestError("'query' must be a non-empty string")
        queries = [query]
    else:
        queries = payload["queries"]
        if not isinstance(queries, list) or not queries:
            raise BadRequestError("'queries' must be a non-empty list")
        if len(queries) > MAX_QUERIES_PER_REQUEST:
            raise BadRequestError(
                f"at most {MAX_QUERIES_PER_REQUEST} queries per request"
            )
        if not all(isinstance(q, str) and q.strip() for q in queries):
            raise BadRequestError("'queries' entries must be non-empty strings")
    k = payload.get("k")
    if k is not None and (not isinstance(k, int) or isinstance(k, bool) or k < 1):
        raise BadRequestError("'k' must be a positive integer")
    top = payload.get("top")
    if top is not None and (
        not isinstance(top, int) or isinstance(top, bool) or top < 1
    ):
        raise BadRequestError("'top' must be a positive integer")
    return queries, k, top


class _LinkRequestHandler(BaseHTTPRequestHandler):
    server: "LinkingHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        LOGGER.debug("%s %s", self.address_string(), format % args)

    def _respond(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        # Every JSON response self-describes its API version, so a
        # client (or a capture in a bug report) is never ambiguous
        # about which surface produced it.
        payload.setdefault("api_version", API_VERSION)
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _respond_text(
        self,
        status: int,
        text: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _request_id(self) -> str:
        """This request's correlation id (header-supplied or generated)."""
        return (
            self.headers.get("X-Request-ID") or ""
        ).strip() or trace.new_request_id()

    def _respond_error(
        self,
        status: int,
        code: str,
        message: str,
        request_id: Optional[str] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        # Every error echoes X-Request-ID, like success responses do:
        # a shed or init-failure 503 is exactly the response a caller
        # most needs to correlate with logs and traces.
        rid = request_id or self._request_id()
        merged = {"X-Request-ID": rid}
        if headers:
            merged.update(headers)
        self._respond(
            status, error_envelope(code, message, rid), headers=merged
        )

    def _route(self) -> Tuple[str, Dict[str, list], bool]:
        """``(normalised path, query params, legacy?)``.

        The ``/v1`` prefix is stripped so one dispatch serves both
        surfaces; ``legacy`` marks a pre-versioning path, which answers
        identically but carries deprecation headers.
        """
        parts = urlsplit(self.path)
        path = parts.path
        params = parse_qs(parts.query)
        if path == V1_PREFIX or path.startswith(V1_PREFIX + "/"):
            return path[len(V1_PREFIX):] or "/", params, False
        return path, params, True

    @staticmethod
    def _deprecation_headers(path: str) -> Dict[str, str]:
        """Headers steering legacy-route clients to the ``/v1`` twin."""
        return {
            "Deprecation": "true",
            "Link": f'<{V1_PREFIX}{path}>; rel="successor-version"',
        }

    # -- GET ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        path, params, legacy = self._route()
        # Health endpoints are canonical unversioned (load-balancer
        # convention); /metrics and /traces moved under /v1, so their
        # bare forms answer with deprecation headers.
        extra: Optional[Dict[str, str]] = None
        if legacy and path in ("/metrics", "/traces"):
            extra = self._deprecation_headers(path)
        if path == "/healthz":
            if service.healthy:
                self._respond(200, {"status": "ok"})
            else:
                self._respond_error(503, "unhealthy", "service is stopping")
        elif path == "/readyz":
            if service.ready:
                self._respond(200, {"status": "ready"})
            else:
                self._respond_error(
                    503, "not_ready", "warm-up has not completed"
                )
        elif path == "/metrics":
            accepts = self.headers.get("Accept", "")
            wants_text = (
                params.get("format", [""])[0] == "prometheus"
                or "text/plain" in accepts
            )
            snapshot = service.snapshot()
            if wants_text:
                self._respond_text(
                    200,
                    render_prometheus(
                        service.metrics,
                        gauges=snapshot_gauges(snapshot),
                        labeled=worker_series(snapshot),
                    ),
                    headers=extra,
                )
            else:
                self._respond(200, snapshot, headers=extra)
        elif path == "/traces":
            self._respond_traces(params, extra)
        elif path == "/admin/workers" and not legacy:
            snapshot = service.snapshot()
            frontend = snapshot.get("frontend")
            if frontend is None:
                self._respond_error(
                    404,
                    "workers_disabled",
                    "this service runs the single-process tier (workers=0)",
                )
            else:
                self._respond(
                    200,
                    {
                        "workers": frontend.get("workers", []),
                        "frontend": {
                            key: value
                            for key, value in frontend.items()
                            if key != "workers"
                        },
                        "slo": snapshot.get("slo"),
                    },
                )
        elif path == "/admin/lifecycle" and not legacy:
            lifecycle = getattr(service, "lifecycle", None)
            if lifecycle is None:
                self._respond_error(
                    404,
                    "lifecycle_disabled",
                    "no lifecycle controller is attached to this service",
                )
            else:
                self._respond(200, {"lifecycle": lifecycle.status()})
        else:
            self._respond_error(404, "not_found", f"no route for {self.path}")

    def _respond_traces(
        self, params: Dict[str, list], headers: Optional[Dict[str, str]]
    ) -> None:
        tracer = self.server.service.tracer
        request_id = params.get("request_id", [None])[0]
        if request_id:
            found = tracer.find(request_id)
            if found is None:
                self._respond_error(
                    404,
                    "trace_not_found",
                    f"no retained trace for request {request_id!r} "
                    "(evicted from the ring buffer, or never sampled)",
                    headers=headers,
                )
                return
            self._respond(
                200,
                {"traces": [found], "stats": tracer.stats()},
                headers=headers,
            )
            return
        limit_raw = params.get("limit", [None])[0]
        limit: Optional[int] = None
        if limit_raw is not None:
            try:
                limit = int(limit_raw)
            except ValueError:
                self._respond_error(
                    400,
                    "bad_request",
                    "'limit' must be an integer",
                    headers=headers,
                )
                return
        self._respond(
            200,
            {"traces": tracer.traces(limit=limit), "stats": tracer.stats()},
            headers=headers,
        )

    # -- POST ---------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path, _, legacy = self._route()
        if path == "/admin/swap" and not legacy:
            self._handle_swap()
            return
        if path != "/link":
            self._respond_error(404, "not_found", f"no route for {self.path}")
            return
        # The request ID exists whether or not this trace is sampled:
        # it is echoed in the response (header + body), stamped on the
        # JSON logs, and — when sampled — keys the span tree in /traces.
        request_id = self._request_id()
        root = self.server.service.tracer.start_trace(
            "http.link", request_id=request_id
        )
        with root:
            status, payload = self._handle_link(root, request_id)
            root.set_tag("status", status)
        payload["request_id"] = request_id
        headers = {"X-Request-ID": request_id}
        if legacy:
            headers.update(self._deprecation_headers("/link"))
        self._respond(status, payload, headers=headers)

    def _handle_link(
        self, root: Any, request_id: str
    ) -> Tuple[int, Dict[str, Any]]:
        """Run one /link request under ``root``; returns (status, body)."""

        def error_body(code: str, message: str) -> Dict[str, Any]:
            return error_envelope(code, message, request_id)

        try:
            payload = self._read_json()
            queries, k, top = _parse_link_body(payload)
            root.set_tag("queries", len(queries))
            if k is not None:
                root.set_tag("k", k)
            results = self.server.service.link_many(queries, k=k)
        except BadRequestError as error:
            return 400, error_body("bad_request", str(error))
        except ServiceNotReadyError as error:
            # The exception's own message matters: for the procpool
            # tier it names a failed worker's init error.
            return 503, error_body("not_ready", str(error))
        except ShedError as error:
            # Load shedding is a 503 like not-ready — the service is
            # alive but refusing this request; retry against a less
            # loaded instance (or after backoff).
            return 503, error_body("shed", str(error))
        except TimeoutError:
            return 504, error_body(
                "timeout", "request timed out; retry with backoff"
            )
        except ReproError as error:
            return 400, error_body(type(error).__name__, str(error))
        except Exception as error:  # noqa: BLE001 - last-resort boundary
            LOGGER.error("internal error serving /link: %s", error)
            return 500, error_body("internal", "internal server error")
        degraded = sum(1 for result in results if result.degraded)
        LOGGER.info(
            "linked %d queries (%d degraded)", len(results), degraded
        )
        return 200, {
            "results": [
                result_to_json(result, self.server, top=top)
                for result in results
            ]
        }

    def _handle_swap(self) -> None:
        """``POST /v1/admin/swap``: drive the blue/green swapper."""
        from repro.lifecycle.swap import LifecycleError

        request_id = self._request_id()
        lifecycle = getattr(self.server.service, "lifecycle", None)
        if lifecycle is None:
            self._respond_error(
                404,
                "lifecycle_disabled",
                "no lifecycle controller is attached to this service",
                request_id=request_id,
            )
            return
        try:
            payload = self._read_json()
        except BadRequestError as error:
            self._respond_error(
                400, "bad_request", str(error), request_id=request_id
            )
            return
        action = payload.get("action") if isinstance(payload, dict) else None
        if action not in ("promote", "rollback"):
            self._respond_error(
                400,
                "bad_request",
                "'action' must be 'promote' or 'rollback'",
                request_id=request_id,
            )
            return
        headers = {"X-Request-ID": request_id}
        try:
            if action == "promote":
                force = bool(payload.get("force", False))
                report = lifecycle.promote(force=force)
                if report.get("promoted"):
                    self._respond(
                        200,
                        {"swap": report, "request_id": request_id},
                        headers=headers,
                    )
                else:
                    body = error_envelope(
                        "swap_blocked",
                        f"promotion blocked: {report.get('reason')}",
                        request_id,
                    )
                    body["swap"] = report
                    self._respond(409, body, headers=headers)
            else:
                reason = str(payload.get("reason") or "manual")
                report = lifecycle.rollback(reason)
                self._respond(
                    200,
                    {"swap": report, "request_id": request_id},
                    headers=headers,
                )
        except LifecycleError as error:
            self._respond_error(
                409, "no_candidate", str(error), request_id=request_id
            )
        except ReproError as error:
            self._respond_error(
                400, type(error).__name__, str(error), request_id=request_id
            )
        except Exception as error:  # noqa: BLE001 - last-resort boundary
            LOGGER.error("internal error serving /admin/swap: %s", error)
            self._respond_error(
                500, "internal", "internal server error", request_id=request_id
            )

    def _read_json(self) -> Any:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise BadRequestError("Content-Length header is required")
        try:
            length = int(length_header)
        except ValueError:
            raise BadRequestError("Content-Length must be an integer")
        if length <= 0:
            raise BadRequestError("request body is empty")
        if length > MAX_BODY_BYTES:
            raise BadRequestError(
                f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise BadRequestError("request body is not valid JSON")


class LinkingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries its LinkingService."""

    daemon_threads = True
    # Fast rebinds between test/deploy restarts.
    allow_reuse_address = True
    # socketserver's default listen backlog is 5; a burst of concurrent
    # clients (the whole point of this server) overflows that and shows
    # up as connection resets on a loaded machine.
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], service: LinkingService) -> None:
        super().__init__(address, _LinkRequestHandler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]


def create_server(
    service: LinkingService, host: str = "127.0.0.1", port: int = 0
) -> LinkingHTTPServer:
    """Bind (port 0 picks an ephemeral port) without starting to serve."""
    return LinkingHTTPServer((host, port), service)


def run_server(
    server: LinkingHTTPServer, install_signal_handlers: bool = True
) -> None:
    """Serve until SIGINT/SIGTERM (or ``server.shutdown()``), then drain.

    Signal handlers are only installed from the main thread (Python
    forbids them elsewhere); background callers stop the server with
    ``server.shutdown()``.
    """
    stop = threading.Event()

    def _request_stop(signum: object = None, frame: object = None) -> None:
        # shutdown() must not run on the serve_forever thread; hand it off.
        stop.set()
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signal_handlers and threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGINT, _request_stop)
        signal.signal(signal.SIGTERM, _request_stop)
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.service.stop()
        server.server_close()
        LOGGER.info("server stopped")
