"""Micro-batching scheduler: coalesce in-flight requests into batches.

The paper's cost model (Section 5) says Phase-II COM-AID forward passes
dominate per-query time, and candidate sets of concurrent queries
overlap heavily in practice (clinicians hammer the same subtrees).
Handing the linker *batches* instead of single queries lets it encode
each distinct candidate concept once per batch and share the encodings
— the serving-time analogue of training-time mini-batching.

``MicroBatcher`` owns a single worker thread that drains a queue:

* the first pending item opens a batch and starts a deadline clock;
* further items join until the batch reaches ``max_batch_size`` (a
  *size flush*) or ``max_wait_ms`` elapses (a *deadline flush*);
* the whole batch goes to the handler in arrival order and each
  caller's future is resolved with its positional result.

A single worker is a feature, not a shortcut: it serialises access to
the (not thread-safe) model, which is what makes concurrent requests
return bit-identical rankings to sequential calls.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generic, List, Optional, Sequence, TypeVar

from repro.utils.errors import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")


class BatcherClosedError(RuntimeError):
    """Raised by ``submit`` after the batcher has been closed."""


class BatcherSaturatedError(RuntimeError):
    """Raised by ``submit`` when the bounded input queue is full."""


class BatchFuture(Generic[R]):
    """A minimal future resolved by the batcher's worker thread."""

    def __init__(self) -> None:
        self._done = threading.Event()
        self._result: Optional[R] = None
        self._error: Optional[BaseException] = None

    def _resolve(self, result: R) -> None:
        self._result = result
        self._done.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def done(self) -> bool:
        """Whether a result or error has been delivered."""
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> R:
        """Block for the result; raises ``TimeoutError`` if not ready."""
        if not self._done.wait(timeout):
            raise TimeoutError("batched request did not complete in time")
        if self._error is not None:
            raise self._error
        return self._result  # type: ignore[return-value]


@dataclass
class BatcherStats:
    """Flush accounting (updated by the worker thread only)."""

    batches: int = 0
    items: int = 0
    size_flushes: int = 0
    deadline_flushes: int = 0
    drain_flushes: int = 0
    max_batch: int = 0
    errors: int = 0
    rejected: int = 0

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready copy, with the derived mean batch size included."""
        mean = self.items / self.batches if self.batches else 0.0
        return {
            "batches": self.batches,
            "items": self.items,
            "size_flushes": self.size_flushes,
            "deadline_flushes": self.deadline_flushes,
            "drain_flushes": self.drain_flushes,
            "max_batch": self.max_batch,
            "mean_batch": mean,
            "errors": self.errors,
            "rejected": self.rejected,
        }


@dataclass
class _Pending(Generic[T, R]):
    item: T
    future: "BatchFuture[R]" = field(default_factory=BatchFuture)


class MicroBatcher(Generic[T, R]):
    """Coalesces submitted items into handler calls on a worker thread.

    ``handler`` receives a list of items and must return one result per
    item, in order.  A handler exception rejects every future in that
    batch (requests are independent; the next batch proceeds).
    """

    _CLOSE = object()

    def __init__(
        self,
        handler: Callable[[Sequence[T]], Sequence[R]],
        max_batch_size: int = 8,
        max_wait_ms: float = 2.0,
        name: str = "batcher",
        max_queue: int = 0,
    ) -> None:
        if max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms must be >= 0, got {max_wait_ms}"
            )
        if max_queue < 0:
            raise ConfigurationError(
                f"max_queue must be >= 0 (0 = unbounded), got {max_queue}"
            )
        self.name = name
        self._handler = handler
        self._max_batch_size = max_batch_size
        self._max_wait = max_wait_ms / 1000.0
        self._max_queue = max_queue
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._closed = threading.Event()
        self._stats = BatcherStats()
        self._stats_lock = threading.Lock()
        self._worker = threading.Thread(
            target=self._run, name=f"{name}-worker", daemon=True
        )
        self._worker.start()

    # -- submission ---------------------------------------------------------

    def submit_nowait(self, item: T) -> "BatchFuture[R]":
        """Enqueue ``item`` and return its future immediately.

        With ``max_queue`` set, a full input queue raises
        :class:`BatcherSaturatedError` instead of queuing unboundedly —
        honest backpressure beats a queue that grows until the caller's
        timeout makes the eventual answer worthless.
        """
        if self._closed.is_set():
            raise BatcherClosedError(f"{self.name} is closed")
        if self._max_queue > 0 and self._queue.qsize() >= self._max_queue:
            with self._stats_lock:
                self._stats.rejected += 1
            raise BatcherSaturatedError(
                f"{self.name} queue is full ({self._max_queue} waiting)"
            )
        pending: _Pending[T, R] = _Pending(item)
        self._queue.put(pending)
        return pending.future

    def qsize(self) -> int:
        """Approximate number of items waiting (admission-control input)."""
        return self._queue.qsize()

    def submit(self, item: T, timeout: Optional[float] = None) -> R:
        """Enqueue ``item`` and block until its result is available."""
        return self.submit_nowait(item).result(timeout)

    # -- lifecycle ----------------------------------------------------------

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting work, drain what is queued, join the worker."""
        if not self._closed.is_set():
            self._closed.set()
            self._queue.put(self._CLOSE)
        self._worker.join(timeout)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    @property
    def stats(self) -> BatcherStats:
        with self._stats_lock:
            return BatcherStats(**vars(self._stats))

    # -- worker -------------------------------------------------------------

    def _run(self) -> None:
        while True:
            first = self._queue.get()
            if first is self._CLOSE:
                self._flush_remaining()
                return
            batch: List[_Pending[T, R]] = [first]
            reason = self._fill(batch)
            self._dispatch(batch, reason)
            if reason == "close":
                self._flush_remaining()
                return

    def _fill(self, batch: List["_Pending[T, R]"]) -> str:
        """Grow ``batch`` until size, deadline, or close; returns why."""
        deadline = time.monotonic() + self._max_wait
        while len(batch) < self._max_batch_size:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return "deadline"
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                return "deadline"
            if item is self._CLOSE:
                return "close"
            batch.append(item)
        return "size"

    def _flush_remaining(self) -> None:
        """After close: process whatever is still queued, batch by batch."""
        leftover: List[_Pending[T, R]] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is self._CLOSE:
                continue
            leftover.append(item)
        for start in range(0, len(leftover), self._max_batch_size):
            self._dispatch(
                leftover[start : start + self._max_batch_size], "drain"
            )

    def _dispatch(self, batch: List["_Pending[T, R]"], reason: str) -> None:
        try:
            results = self._handler([pending.item for pending in batch])
            if len(results) != len(batch):
                raise RuntimeError(
                    f"batch handler returned {len(results)} results "
                    f"for {len(batch)} items"
                )
        except BaseException as error:  # noqa: BLE001 - forwarded to callers
            for pending in batch:
                pending.future._reject(error)
            with self._stats_lock:
                self._stats.errors += 1
            return
        finally:
            with self._stats_lock:
                self._stats.batches += 1
                self._stats.items += len(batch)
                self._stats.max_batch = max(self._stats.max_batch, len(batch))
                if reason == "size":
                    self._stats.size_flushes += 1
                elif reason in ("deadline", "close"):
                    self._stats.deadline_flushes += 1
                else:
                    self._stats.drain_flushes += 1
        for pending, result in zip(batch, results):
            pending.future._resolve(result)
