"""Offline concept compilation: the ``repro compile`` step.

A trained COM-AID pipeline still pays per-concept work online: Phase I
scans a TF-IDF index built at process start, and Phase II runs the
concept encoder (and the β ancestor encoders) for every candidate the
LRU caches have not seen.  Compilation runs all of that exactly once,
offline, and freezes the results into a versioned, checksummed
**concept artifact**:

.. code-block:: text

    <dir>/
      artifact.json     format, model fingerprint, Phase-I documents +
                        global TF-IDF statistics, concept order, and
                        the slab directory (per-array dtype/shape/offset)
      slab.bin          one contiguous, 64-byte-aligned binary slab:
                        final_h (N,d), final_c (N,d), concatenated
                        per-word encoder states + offsets, word ids,
                        and the Def.-4.1 structure memories (N, beta, d)
                        (absent for the COM-AID⁻c/⁻wc ablations)
      manifest.json     per-file sha256/byte sizes (atomic-persistence
                        format shared with the pipeline manifest)

The slab layout (format 3) exists for the multi-process serving tier:
``load_artifact(..., mmap=True)`` maps ``slab.bin`` read-only with
``np.memmap`` after verifying its checksum, so N forked worker
processes mapping the same artifact share one copy of the encodings
through the page cache — zero copies, no pickling of model state.
Formats 1 and 2 (the pre-slab ``encodings.npz``/``structure.npz``
layout) still load through the copy path.

The artifact is written through :func:`repro.core.persistence.atomic_directory`,
so a crash mid-compile never corrupts an existing artifact, and
:func:`verify_artifact` (or ``load_artifact(verify=True)``) proves a
directory complete and uncorrupted before it is put behind traffic.
Loading checks the **model fingerprint** — a SHA-256 over the model's
parameter tensors plus its architecture config — so an artifact can
never be served against weights other than the ones it was compiled
from (stale-artifact bugs surface as a :class:`DataError`, not as
silently wrong rankings).

Equivalence: the stored encodings are produced by the very same
``encode_concept`` / ``structural_context`` calls the online linker
would make, so a linker backed by the artifact returns bit-identical
concept representations — the sharded-engine equivalence suite rests
on this.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.candidates import concept_documents
from repro.core.comaid import ComAid, ConceptEncoding
from repro.kb.knowledge_base import KnowledgeBase
from repro.obs import trace
from repro.ontology.ontology import Ontology
from repro.ontology.paths import structural_context
from repro.retrieval.ann import DenseIndex
from repro.retrieval.inverted import InvertedIndex
from repro.text.tfidf import CorpusStats, TfIdfIndex
from repro.utils.errors import DataError
from repro.utils.faults import probe
from repro.utils.logging import get_logger

PathLike = Union[str, Path]

logger = get_logger("engine.compile")

#: Artifact directory format version (bumped on layout changes).
#: Format 2 added the optional precompiled retrieval indexes
#: (``index_sparse.npz`` / ``index_dense.npz`` plus the header's
#: ``retrieval`` section with per-index checksums).  Format 3 replaced
#: the compressed ``encodings.npz``/``structure.npz`` pair with one
#: contiguous aligned raw slab (``slab.bin``) so the artifact can be
#: memory-mapped read-only and shared zero-copy across processes.
ARTIFACT_FORMAT = 3

#: Formats this build can load.  Format-1 artifacts (pre-retrieval)
#: load unchanged — they simply carry no compiled indexes; format-2
#: artifacts load through the npz copy path (no mmap).
SUPPORTED_FORMATS = (1, 2, 3)

ARTIFACT_FILE = "artifact.json"
ENCODINGS_FILE = "encodings.npz"
STRUCTURE_FILE = "structure.npz"
SLAB_FILE = "slab.bin"
SPARSE_INDEX_FILE = "index_sparse.npz"
DENSE_INDEX_FILE = "index_dense.npz"

#: Byte alignment for every array in the format-3 slab.  64 covers the
#: widest vector registers (AVX-512) and cache lines, so mapped arrays
#: behave exactly like freshly allocated ones for BLAS kernels.
SLAB_ALIGN = 64

#: What ``compile_artifact(index=...)`` accepts.
INDEX_CHOICES = ("none", "sparse", "dense", "both")

#: Files a complete artifact must contain (the structure memories and
#: retrieval indexes are optional).  Formats ≤ 2 require the npz pair's
#: first element instead of the slab.
REQUIRED_FILES = (ARTIFACT_FILE, SLAB_FILE)
LEGACY_REQUIRED_FILES = (ARTIFACT_FILE, ENCODINGS_FILE)


def _sha256_of(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _write_slab(path: Path, arrays: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Write ``arrays`` as one contiguous aligned binary slab.

    Each array is laid out C-contiguous at a :data:`SLAB_ALIGN`-aligned
    offset (zero padding between arrays).  Returns the header's
    ``slab`` section: file name, total bytes, alignment, per-array
    ``{dtype, shape, offset}`` directory, and the slab's sha256 — the
    checksum a memory-mapping loader re-verifies at map time.
    """
    entries: Dict[str, Dict[str, Any]] = {}
    offset = 0
    with path.open("wb") as handle:
        for name, array in arrays.items():
            contiguous = np.ascontiguousarray(array)
            padding = (-offset) % SLAB_ALIGN
            if padding:
                handle.write(b"\0" * padding)
                offset += padding
            entries[name] = {
                "dtype": contiguous.dtype.str,
                "shape": [int(extent) for extent in contiguous.shape],
                "offset": offset,
            }
            data = contiguous.tobytes()
            handle.write(data)
            offset += len(data)
    return {
        "file": SLAB_FILE,
        "nbytes": offset,
        "align": SLAB_ALIGN,
        "arrays": entries,
        "sha256": _sha256_of(path),
    }


def _load_slab(
    source: Path, slab_meta: Dict[str, Any], mmap: bool, check: bool
) -> Dict[str, np.ndarray]:
    """Materialise the format-3 slab's arrays.

    With ``mmap`` the file is mapped read-only (``np.memmap``) and
    every array is a zero-copy view into the mapping — N processes
    mapping the same artifact share one physical copy through the page
    cache.  Without it, arrays are independent in-memory copies (the
    behaviour of the old npz loader).  ``check`` re-hashes the file
    against the header's sha256 first — the map-time verification that
    turns a truncated or bit-flipped slab into a :class:`DataError`
    naming the file instead of silently wrong scores.
    """
    try:
        name = str(slab_meta["file"])
        expected_bytes = int(slab_meta["nbytes"])
        expected_sha = str(slab_meta["sha256"])
        directory = dict(slab_meta["arrays"])
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(
            f"artifact {source} has a malformed slab header entry: {exc}"
        ) from exc
    path = source / name
    if not path.exists():
        raise DataError(
            f"artifact {source} declares slab {name} but the file is missing"
        )
    actual_bytes = path.stat().st_size
    if actual_bytes != expected_bytes:
        raise DataError(
            f"artifact slab {path} is truncated or padded: {actual_bytes} "
            f"bytes on disk, {expected_bytes} declared"
        )
    if check:
        actual_sha = _sha256_of(path)
        if actual_sha != expected_sha:
            raise DataError(
                f"artifact slab {path} is corrupt: sha256 {actual_sha} != "
                f"declared {expected_sha}"
            )
    if mmap:
        raw: np.ndarray = np.memmap(path, dtype=np.uint8, mode="r")
    else:
        raw = np.frombuffer(path.read_bytes(), dtype=np.uint8)
    arrays: Dict[str, np.ndarray] = {}
    for array_name, entry in directory.items():
        try:
            dtype = np.dtype(str(entry["dtype"]))
            shape = tuple(int(extent) for extent in entry["shape"])
            offset = int(entry["offset"])
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(
                f"artifact slab entry {array_name!r} in {source} is "
                f"malformed: {exc}"
            ) from exc
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if offset < 0 or offset + nbytes > expected_bytes:
            raise DataError(
                f"artifact slab entry {array_name!r} in {path} points "
                f"outside the slab ({offset}+{nbytes} > {expected_bytes})"
            )
        view = raw[offset : offset + nbytes].view(dtype).reshape(shape)
        arrays[array_name] = view if mmap else view.copy()
    return arrays


def model_fingerprint(model: ComAid) -> Dict[str, Any]:
    """Identity of the weights an artifact was compiled from.

    SHA-256 over every parameter tensor (name, shape, raw bytes) plus
    the architecture config and vocabulary size.  Two models agree on
    the fingerprint iff they would produce the same encodings.
    """
    digest = hashlib.sha256()
    for name, parameter in sorted(model.named_parameters()):
        digest.update(name.encode("utf-8"))
        array = np.ascontiguousarray(parameter.value)
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return {
        "params_sha256": digest.hexdigest(),
        "config": dataclasses.asdict(model.config),
        "vocab_size": len(model.vocab),
    }


@dataclass
class ConceptArtifact:
    """An in-memory view of a compiled concept artifact.

    Arrays are the slabs exactly as stored; per-concept accessors
    return zero-copy views into them, so S shards sharing one loaded
    artifact cost one copy of the encodings in total.
    """

    directory: Path
    format: int
    fingerprint: Dict[str, Any]
    metadata: Dict[str, Any]
    cids: Tuple[str, ...]
    final_h: np.ndarray
    final_c: np.ndarray
    states: np.ndarray
    state_offsets: np.ndarray
    word_ids: np.ndarray
    word_offsets: np.ndarray
    structure: Optional[np.ndarray]
    documents: List[Tuple[str, List[str]]]
    corpus_stats: CorpusStats
    index_aliases: bool
    #: Precompiled retrieval indexes (format ≥ 2 with ``--index``);
    #: ``None`` when the artifact was compiled without them.
    sparse_index: Optional[InvertedIndex] = None
    dense_index: Optional[DenseIndex] = None
    #: The header's ``retrieval`` section (per-index checksums and
    #: training parameters), empty for artifacts without indexes.
    retrieval_meta: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Whether the slab arrays are read-only views into an mmap'd file
    #: (format ≥ 3 loaded with ``mmap=True``) rather than private
    #: in-memory copies.
    mmap: bool = False

    def __post_init__(self) -> None:
        self._positions = {cid: i for i, cid in enumerate(self.cids)}

    def __len__(self) -> int:
        return len(self.cids)

    def __contains__(self, cid: str) -> bool:
        return cid in self._positions

    def position_of(self, cid: str) -> int:
        """Global position of ``cid`` in the compiled concept order.

        This order is the monolithic index's insertion order, i.e. the
        tie-break the unsharded TF-IDF top-k uses — scatter-gather
        merging sorts on it to reproduce the unsharded ranking exactly.
        """
        try:
            return self._positions[cid]
        except KeyError:
            raise DataError(f"concept {cid!r} is not in the compiled artifact")

    def encoding_of(self, cid: str) -> ConceptEncoding:
        """The precompiled :class:`ConceptEncoding` for ``cid`` (views)."""
        position = self.position_of(cid)
        lo, hi = self.state_offsets[position], self.state_offsets[position + 1]
        wlo, whi = self.word_offsets[position], self.word_offsets[position + 1]
        states = self.states[lo:hi]
        return ConceptEncoding(
            word_ids=tuple(int(w) for w in self.word_ids[wlo:whi]),
            states=states,
            final_h=self.final_h[position],
            final_c=self.final_c[position],
            caches=None,
        )

    def structure_memory_of(self, cid: str) -> Optional[np.ndarray]:
        """The ``(beta, dim)`` Def.-4.1 structure memory, or ``None``."""
        if self.structure is None:
            return None
        return self.structure[self.position_of(cid)]

    def check_model(self, model: ComAid) -> None:
        """Raise :class:`DataError` unless ``model`` matches the artifact."""
        current = model_fingerprint(model)
        if current["params_sha256"] != self.fingerprint.get("params_sha256"):
            raise DataError(
                f"artifact {self.directory} was compiled from different "
                "model weights (fingerprint mismatch); re-run `repro "
                "compile` after retraining"
            )

    def monolithic_index(self) -> TfIdfIndex:
        """One unsharded TF-IDF index over the frozen documents."""
        return TfIdfIndex().fit(self.documents)


def compile_artifact(
    directory: PathLike,
    model: ComAid,
    ontology: Ontology,
    kb: Optional[KnowledgeBase] = None,
    index_aliases: bool = True,
    restrict_to: Optional[Sequence[str]] = None,
    metadata: Optional[Dict[str, Any]] = None,
    index: str = "none",
    index_seed: int = 0,
) -> Path:
    """Encode every fine-grained concept once and freeze the results.

    Runs the concept encoder over each indexed concept (the ``h_c``
    final states plus the per-word text-attention memories), builds the
    Def.-4.1 structure memories along each concept's β-ancestor path,
    tokenises the Phase-I index documents, and writes everything —
    with global TF-IDF statistics and a model fingerprint — into
    ``directory`` crash-safely.  Returns the artifact path.

    ``index`` additionally compiles the sublinear retrieval indexes
    (:mod:`repro.retrieval`) into the artifact: ``"sparse"`` freezes
    the TF-IDF postings into the array-backed inverted index,
    ``"dense"`` k-means-trains the IVF ANN index over the concept
    encoder final states (seeded by ``index_seed``), ``"both"`` does
    both, and ``"none"`` (the default) keeps the format-1 content —
    non-exact retrieval modes then build/refuse at engine start.  Each
    compiled index file carries its own sha256 in the header's
    ``retrieval`` section, verified again at load.
    """
    if index not in INDEX_CHOICES:
        raise DataError(
            f"index must be one of {INDEX_CHOICES}, got {index!r}"
        )
    documents = concept_documents(
        ontology, kb=kb, index_aliases=index_aliases, restrict_to=restrict_to
    )
    if not documents:
        raise DataError("no fine-grained concepts to compile")
    fitted = TfIdfIndex().fit(documents)
    stats = fitted.stats()
    beta = model.config.beta
    use_structure = model.config.use_structure_attention
    dim = model.config.dim

    cids: List[str] = []
    final_h_rows: List[np.ndarray] = []
    final_c_rows: List[np.ndarray] = []
    state_blocks: List[np.ndarray] = []
    word_blocks: List[List[int]] = []
    structure_blocks: List[np.ndarray] = []
    with trace.span("engine.compile", concepts=len(documents)):
        for cid, _ in documents:
            probe("engine.compile.concept")
            concept = ontology.get(cid)
            word_ids = model.words_to_ids(list(concept.words))
            encoding = model.encode_concept(word_ids, keep_caches=False)
            cids.append(cid)
            final_h_rows.append(encoding.final_h)
            final_c_rows.append(encoding.final_c)
            state_blocks.append(encoding.states)
            word_blocks.append(list(word_ids))
            if use_structure:
                path = structural_context(ontology, cid, beta)
                ancestors = []
                for ancestor in path[1:]:
                    ids = model.words_to_ids(list(ancestor.words))
                    ancestors.append(
                        model.encode_concept(ids, keep_caches=False)
                    )
                if len(ancestors) != beta:
                    raise DataError(
                        f"concept {cid!r} yielded {len(ancestors)} ancestors "
                        f"for beta={beta}"
                    )
                structure_blocks.append(
                    np.vstack([a.final_h for a in ancestors])
                )

    state_offsets = np.zeros(len(cids) + 1, dtype=np.int64)
    np.cumsum([block.shape[0] for block in state_blocks], out=state_offsets[1:])
    word_offsets = np.zeros(len(cids) + 1, dtype=np.int64)
    np.cumsum([len(block) for block in word_blocks], out=word_offsets[1:])

    header = {
        "format": ARTIFACT_FORMAT,
        "fingerprint": model_fingerprint(model),
        "concepts": len(cids),
        "dim": dim,
        "beta": beta,
        "index": {
            "order": cids,
            "index_aliases": bool(index_aliases),
            "stats": stats.to_dict(),
            "documents": {cid: list(tokens) for cid, tokens in documents},
        },
    }

    from repro.core.persistence import atomic_directory, write_manifest

    target = Path(directory)
    with atomic_directory(target) as staging:
        retrieval_meta: Dict[str, Any] = {}
        if index in ("sparse", "both"):
            probe("engine.compile.write.index_sparse.npz")
            with trace.span("engine.compile.index", kind="sparse"):
                sparse_arrays = InvertedIndex.from_tfidf(fitted).to_arrays()
            np.savez_compressed(
                staging / SPARSE_INDEX_FILE, **sparse_arrays
            )
            retrieval_meta["sparse"] = {
                "file": SPARSE_INDEX_FILE,
                "sha256": _sha256_of(staging / SPARSE_INDEX_FILE),
            }
        if index in ("dense", "both"):
            probe("engine.compile.write.index_dense.npz")
            with trace.span("engine.compile.index", kind="dense"):
                dense = DenseIndex.train(
                    np.stack(final_h_rows), seed=index_seed
                )
            np.savez_compressed(
                staging / DENSE_INDEX_FILE, **dense.to_arrays()
            )
            retrieval_meta["dense"] = {
                "file": DENSE_INDEX_FILE,
                "sha256": _sha256_of(staging / DENSE_INDEX_FILE),
                "n_clusters": dense.n_clusters,
                "seed": index_seed,
            }
        if retrieval_meta:
            header["retrieval"] = retrieval_meta
        probe("engine.compile.write.slab.bin")
        slab_arrays: Dict[str, np.ndarray] = {
            "final_h": np.stack(final_h_rows),
            "final_c": np.stack(final_c_rows),
            "states": (
                np.concatenate(state_blocks)
                if state_blocks
                else np.zeros((0, dim))
            ),
            "state_offsets": state_offsets,
            "word_ids": np.asarray(
                [wid for block in word_blocks for wid in block],
                dtype=np.int64,
            ),
            "word_offsets": word_offsets,
        }
        if use_structure:
            slab_arrays["structure"] = np.stack(structure_blocks)
        header["slab"] = _write_slab(staging / SLAB_FILE, slab_arrays)
        probe("engine.compile.write.artifact.json")
        (staging / ARTIFACT_FILE).write_text(
            json.dumps(header, indent=2, sort_keys=True), encoding="utf-8"
        )
        write_manifest(staging, ARTIFACT_FORMAT, metadata)
    logger.info(
        "compiled %d concepts (%d encoder states) into %s",
        len(cids),
        int(state_offsets[-1]),
        target,
    )
    return target


def _load_index_arrays(
    source: Path, entry: Dict[str, Any], verify: bool
) -> Dict[str, np.ndarray]:
    """Read one compiled index file, checking its header checksum.

    The ``retrieval`` header entry pins each index file's sha256
    independently of the manifest, so a swapped or regenerated index
    can never be served against the artifact it did not come from.
    """
    try:
        name = str(entry["file"])
        expected = str(entry["sha256"])
    except (KeyError, TypeError) as exc:
        raise DataError(
            f"artifact {source} has a malformed retrieval entry: {exc}"
        ) from exc
    path = source / name
    if not path.exists():
        raise DataError(
            f"artifact {source} declares retrieval index {name} but the "
            "file is missing"
        )
    if verify:
        actual = _sha256_of(path)
        if actual != expected:
            raise DataError(
                f"retrieval index {path} is corrupt: sha256 {actual} != "
                f"declared {expected}"
            )
    try:
        with np.load(path) as archive:
            return {key: archive[key] for key in archive.files}
    except (OSError, ValueError) as exc:
        raise DataError(
            f"retrieval index {path} is corrupt or unreadable: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


def verify_artifact(directory: PathLike) -> Dict[str, Any]:
    """Prove an artifact directory is complete and uncorrupted.

    Manifest-driven byte-size and SHA-256 checks over every listed
    file, then every *header-pinned* payload is re-hashed against the
    header's own sha256: the format-3 slab and — for artifacts with
    compiled retrieval indexes — each index file.  The header pins
    those independently of the manifest, so even a consistently
    regenerated manifest cannot smuggle a swapped slab or index past
    verification.  Returns the parsed manifest, raises
    :class:`DataError` naming the first offending file otherwise.
    """
    from repro.core.persistence import verify_manifest_dir

    source = Path(directory)
    header_path = source / ARTIFACT_FILE
    try:
        header = json.loads(header_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise DataError(
            f"artifact file {header_path} is unreadable or not valid JSON: "
            f"{exc}"
        ) from exc
    required = (
        REQUIRED_FILES
        if isinstance(header.get("format"), int) and header["format"] >= 3
        else LEGACY_REQUIRED_FILES
    )
    manifest = verify_manifest_dir(source, required, kind="artifact")
    if "slab" in header:
        # Re-hash the slab against the header's pin (see docstring);
        # this is also exactly the map-time check the mmap loader runs.
        _load_slab(source, header["slab"], mmap=True, check=True)
    for kind in sorted(header.get("retrieval") or {}):
        entry = header["retrieval"][kind]
        try:
            name = str(entry["file"])
            expected = str(entry["sha256"])
        except (KeyError, TypeError) as exc:
            raise DataError(
                f"artifact {source} has a malformed retrieval entry for "
                f"{kind!r}: {exc}"
            ) from exc
        path = source / name
        if not path.exists():
            raise DataError(
                f"artifact {source} declares retrieval index {name} but "
                "the file is missing"
            )
        actual = _sha256_of(path)
        if actual != expected:
            raise DataError(
                f"retrieval index {path} is corrupt: sha256 {actual} != "
                f"declared {expected}"
            )
    return manifest


def load_artifact(
    directory: PathLike,
    model: Optional[ComAid] = None,
    verify: bool = True,
    mmap: bool = False,
) -> ConceptArtifact:
    """Load a compiled concept artifact.

    With ``verify`` (the default) every file is checksummed against the
    manifest before deserialisation — a tampered or torn artifact
    raises :class:`DataError` naming the file.  Passing ``model``
    additionally checks the weight fingerprint, refusing to serve an
    artifact compiled from other weights.

    With ``mmap`` a format-3 artifact's slab is mapped read-only
    instead of copied into anonymous memory: every process mapping the
    same ``slab.bin`` shares one set of page-cache pages, which is what
    makes an N-worker process pool cost O(1) artifact memory.  The
    slab's header checksum is always proven before the map is served —
    by :func:`verify_artifact` when ``verify`` is on, or by a dedicated
    map-time re-hash when it is off.  Formats 1–2 predate the slab and
    fall back to the copying ``.npz`` path.
    """
    source = Path(directory)
    if verify:
        verify_artifact(source)
    header_path = source / ARTIFACT_FILE
    if not header_path.exists():
        raise DataError(f"{source} does not look like a compiled artifact")
    try:
        header = json.loads(header_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DataError(
            f"artifact file {header_path} is not valid JSON: {exc}"
        ) from exc
    if header.get("format") not in SUPPORTED_FORMATS:
        raise DataError(
            f"artifact {source} has format {header.get('format')!r}; this "
            f"build reads formats {SUPPORTED_FORMATS}"
        )
    try:
        order = [str(cid) for cid in header["index"]["order"]]
        raw_documents = header["index"]["documents"]
        documents = [
            (cid, [str(token) for token in raw_documents[cid]])
            for cid in order
        ]
        stats = CorpusStats.from_dict(header["index"]["stats"])
        index_aliases = bool(header["index"]["index_aliases"])
        fingerprint = dict(header["fingerprint"])
    except (KeyError, TypeError) as exc:
        raise DataError(
            f"artifact file {header_path} is missing fields: {exc}"
        ) from exc
    mapped = False
    if int(header["format"]) >= 3:
        try:
            slab_meta = header["slab"]
        except KeyError as exc:
            raise DataError(
                f"artifact file {header_path} is missing fields: {exc}"
            ) from exc
        # verify_artifact() above already re-hashed the slab; when the
        # caller opted out of verification the map-time check below is
        # the only thing standing between a torn slab and the engine.
        slab = _load_slab(source, slab_meta, mmap=mmap, check=not verify)
        try:
            final_h = slab["final_h"]
            final_c = slab["final_c"]
            states = slab["states"]
            state_offsets = slab["state_offsets"]
            word_ids = slab["word_ids"]
            word_offsets = slab["word_offsets"]
        except KeyError as exc:
            raise DataError(
                f"artifact {source} slab is missing array {exc}"
            ) from exc
        structure = slab.get("structure")
        mapped = mmap
    else:
        if mmap:
            logger.info(
                "artifact %s is format %s (pre-slab); mmap requested but "
                "falling back to the copying loader",
                source,
                header["format"],
            )
        try:
            with np.load(source / ENCODINGS_FILE) as archive:
                final_h = archive["final_h"]
                final_c = archive["final_c"]
                states = archive["states"]
                state_offsets = archive["state_offsets"]
                word_ids = archive["word_ids"]
                word_offsets = archive["word_offsets"]
        except (OSError, KeyError, ValueError) as exc:
            raise DataError(
                f"artifact file {source / ENCODINGS_FILE} is corrupt or "
                f"unreadable: {type(exc).__name__}: {exc}"
            ) from exc
        structure = None
        structure_path = source / STRUCTURE_FILE
        if structure_path.exists():
            try:
                with np.load(structure_path) as archive:
                    structure = archive["structure"]
            except (OSError, KeyError, ValueError) as exc:
                raise DataError(
                    f"artifact file {structure_path} is corrupt or "
                    f"unreadable: {type(exc).__name__}: {exc}"
                ) from exc
    retrieval_meta = dict(header.get("retrieval") or {})
    sparse_index: Optional[InvertedIndex] = None
    dense_index: Optional[DenseIndex] = None
    # When verify=True the per-index checksums were already proven by
    # verify_artifact() above; skip re-hashing the same bytes here.
    if "sparse" in retrieval_meta:
        arrays = _load_index_arrays(source, retrieval_meta["sparse"], False)
        sparse_index = InvertedIndex.from_arrays(
            arrays, keys=list(order), stats=stats
        )
    if "dense" in retrieval_meta:
        arrays = _load_index_arrays(source, retrieval_meta["dense"], False)
        dense_index = DenseIndex.from_arrays(arrays, vectors=final_h)
    manifest_metadata: Dict[str, Any] = {}
    from repro.core.persistence import load_manifest

    manifest = load_manifest(source)
    if manifest is not None:
        manifest_metadata = dict(manifest.get("metadata") or {})
    artifact = ConceptArtifact(
        directory=source,
        format=int(header["format"]),
        fingerprint=fingerprint,
        metadata=manifest_metadata,
        cids=tuple(order),
        final_h=final_h,
        final_c=final_c,
        states=states,
        state_offsets=state_offsets,
        word_ids=word_ids,
        word_offsets=word_offsets,
        structure=structure,
        documents=documents,
        corpus_stats=stats,
        index_aliases=index_aliases,
        sparse_index=sparse_index,
        dense_index=dense_index,
        retrieval_meta=retrieval_meta,
        mmap=mapped,
    )
    if len(artifact.cids) != final_h.shape[0]:
        raise DataError(
            f"artifact {source} is inconsistent: {len(artifact.cids)} "
            f"concepts listed, {final_h.shape[0]} encodings stored"
        )
    if model is not None:
        artifact.check_model(model)
    return artifact
