"""Scale-out linking engine: precompiled concept artifacts + sharding.

The paper's online cost analysis (Section 5, Figure 11) shows the
encode-decode forward passes dominating linking time, and its target
deployments (full SNOMED/ICD-scale ontologies) are orders of magnitude
larger than the fixtures — per-query concept encoding does not survive
that scale.  This package moves every per-concept computation offline
and partitions the online work:

* :mod:`repro.engine.compile` — the ``repro compile`` step: encode
  every fine-grained concept once (final encoder states ``h_c``, the
  per-word text-attention memories, Def.-4.1 structure memories, and
  the Phase-I TF-IDF documents/statistics) into a versioned,
  checksummed artifact directory written through the atomic
  persistence layer;
* :mod:`repro.engine.shards` — partition the concept space into S
  shards, each with its own Phase-I index (global IDF scale) and a
  zero-copy slice of the precomputed encoding slab, with scatter-gather
  top-k merging for Phase I and shard-local batched Phase-II scoring
  on a persistent worker pool.

``S=1`` degenerates to the current in-thread path; rankings and
log-probs are identical to the unsharded linker at any S (proven by
``tests/engine/test_shards.py``).
"""

from repro.engine.compile import (
    ARTIFACT_FORMAT,
    ConceptArtifact,
    compile_artifact,
    load_artifact,
    verify_artifact,
)
from repro.engine.shards import ShardedConceptEngine, ShardFailure

__all__ = [
    "ARTIFACT_FORMAT",
    "ConceptArtifact",
    "ShardFailure",
    "ShardedConceptEngine",
    "compile_artifact",
    "load_artifact",
    "verify_artifact",
]
