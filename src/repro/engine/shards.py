"""Sharded scatter-gather linking over a compiled concept artifact.

The concept space is partitioned round-robin (by compiled position)
into ``S`` shards.  Each shard owns

* a Phase-I TF-IDF index over its slice of the frozen artifact
  documents, fitted with the **global** corpus statistics so its
  cosines are bit-identical to a monolithic index's (see
  :class:`repro.text.tfidf.CorpusStats`), and
* zero-copy views into the artifact's precomputed encoding slab, so
  Phase-II scoring never runs the concept or ancestor encoders online.

Phase I scatters a query to every shard, gathers each shard's local
top-k, and merges on ``(-score, global_position)`` — exactly the
monolithic index's tie-break — so the merged ranking equals the
unsharded one.  Phase II groups a query's candidates by owning shard
and runs one lock-step batched decode
(:meth:`repro.core.comaid.ComAid.score_batch`) per shard; row scores
are independent of batch composition, so per-shard grouping matches
whole-batch scoring to floating-point round-off.  That same
independence makes the scatter a pure performance knob, so it is
adaptive: a batch smaller than ``min_scatter_candidates`` per shard is
decoded whole on the calling thread — a lock-step decode's cost is
dominated by its per-timestep fixed overhead, and splitting a small
candidate set into S tiny decodes plus S pool hops costs more than it
recovers (the classic scatter-gather minimum-batch rule).

Shards execute on a persistent thread pool (``S`` workers): the
encoding slabs are shared memory and NumPy releases the GIL inside the
decode matmuls, so threads — not processes — are the right executor
here (no per-request serialisation of the slabs).  ``S=1`` runs
everything inline on the calling thread, degenerating to the current
path.  A shard that fails during retrieval is skipped (partial
gather, counted in :meth:`ShardedConceptEngine.stats`); only when
*every* shard fails does retrieval raise :class:`ShardFailure`.
Scoring failures always propagate — a partially-scored ranking would
order candidates unfairly — and land in the linker's degraded-mode
guard.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.candidates import CandidateGenerator
from repro.core.comaid import ComAid, ConceptEncoding
from repro.core.config import RetrievalConfig
from repro.engine.compile import ConceptArtifact
from repro.obs import trace
from repro.ontology.ontology import Ontology
from repro.retrieval.hybrid import HybridRetriever
from repro.retrieval.inverted import InvertedIndex
from repro.utils.errors import ConfigurationError, DataError, ReproError
from repro.utils.faults import probe
from repro.utils.logging import get_logger

logger = get_logger("engine.shards")

#: Minimum average candidates per shard before Phase II scatters.  A
#: lock-step decode's cost is dominated by per-timestep fixed overhead,
#: so S tiny decodes cost ~S× one whole-batch decode; below this
#: threshold the engine runs a single whole-batch decode inline instead
#: (identical scores — rows are batch-composition independent).
MIN_SCATTER_CANDIDATES = 8


class ShardFailure(ReproError):
    """Every shard failed to answer a scatter-gather retrieval."""


class ShardedConceptEngine:
    """Scatter-gather linking engine over ``S`` concept shards.

    Construct from a trained model, the ontology, and a loaded
    :class:`~repro.engine.compile.ConceptArtifact` (the artifact's
    fingerprint should already have been checked against ``model`` by
    ``load_artifact``).  The engine then serves the linker's two hot
    paths: :meth:`retrieve` (Phase I, scatter-gather) and
    :meth:`score_batch` (Phase II, per-shard lock-step decode), both
    backed entirely by precompiled state.
    """

    def __init__(
        self,
        model: ComAid,
        ontology: Ontology,
        artifact: ConceptArtifact,
        shards: int = 1,
        min_scatter_candidates: int = MIN_SCATTER_CANDIDATES,
        retrieval: Optional[RetrievalConfig] = None,
    ) -> None:
        """Partition the artifact's concepts into ``shards`` shards.

        ``min_scatter_candidates`` sets the Phase-II scatter threshold:
        batches smaller than ``shards * min_scatter_candidates`` are
        decoded whole on the calling thread (0 scatters every batch).

        ``retrieval`` selects the Phase-I strategy
        (:class:`repro.core.config.RetrievalConfig`).  ``exact`` (the
        default) scatter-gathers per-shard TF-IDF scans; ``sparse``,
        ``dense`` and ``hybrid`` serve from one *global* sublinear
        index (:mod:`repro.retrieval`) — the inverted index is already
        sub-O(N) per query, so sharding it buys nothing; Phase II stays
        sharded either way.  Sparse serving prefers the artifact's
        precompiled index and falls back to freezing one at engine
        start; dense/hybrid require an artifact compiled with
        ``repro compile --index`` (no fallback — k-means training at
        startup would hide minutes of latency).
        """
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if min_scatter_candidates < 0:
            raise ConfigurationError(
                "min_scatter_candidates must be >= 0, got "
                f"{min_scatter_candidates}"
            )
        if shards > len(artifact):
            raise ConfigurationError(
                f"cannot split {len(artifact)} concepts into {shards} "
                "shards (at least one shard would be empty)"
            )
        self._model = model
        self._ontology = ontology
        self._artifact = artifact
        self._shards = shards
        self._min_scatter_candidates = min_scatter_candidates
        stats = artifact.corpus_stats
        shard_documents: List[List[Tuple[str, List[str]]]] = [
            [] for _ in range(shards)
        ]
        self._shard_of: Dict[str, int] = {}
        for position, document in enumerate(artifact.documents):
            shard = position % shards
            shard_documents[shard].append(document)
            self._shard_of[document[0]] = shard
        self._generators = [
            CandidateGenerator.from_documents(ontology, documents, stats)
            for documents in shard_documents
        ]
        self._pool: Optional[ThreadPoolExecutor] = None
        if shards > 1:
            self._pool = ThreadPoolExecutor(
                max_workers=shards, thread_name_prefix="repro-shard"
            )
        self._retrieval = (
            retrieval if retrieval is not None else RetrievalConfig()
        )
        self._hybrid: Optional[HybridRetriever] = None
        if self._retrieval.mode != "exact":
            self._hybrid = self._build_retriever(self._retrieval)
        self._lock = threading.Lock()
        self._retrieve_failures = 0
        self._retrievals = 0
        self._score_batches = 0
        self._mode_retrievals: Dict[str, int] = {
            mode: 0 for mode in ("exact", "sparse", "dense", "hybrid")
        }

    def _build_retriever(self, config: RetrievalConfig) -> HybridRetriever:
        """The global sublinear retriever for non-exact modes."""
        artifact = self._artifact
        sparse = artifact.sparse_index
        if sparse is None:
            # No precompiled sparse index (format-1 artifact, or
            # compiled with --index none/dense): freezing one from the
            # frozen documents is cheap relative to engine start and
            # yields the identical index.
            logger.info(
                "artifact has no precompiled sparse index; freezing one "
                "from %d documents at engine start",
                len(artifact.documents),
            )
            sparse = InvertedIndex.build(
                artifact.documents, stats=artifact.corpus_stats
            )
        dense = artifact.dense_index
        if config.mode in ("dense", "hybrid") and dense is None:
            raise ConfigurationError(
                f"retrieval mode {config.mode!r} needs a compiled dense "
                "index but the artifact has none; re-run `repro compile "
                "--index dense` (or --index both)"
            )
        model = self._model

        def encode_query(tokens: Sequence[str]) -> Optional[np.ndarray]:
            if not tokens:
                return None
            ids = model.words_to_ids(list(tokens))
            return model.encode_concept(ids, keep_caches=False).final_h

        return HybridRetriever(
            sparse,
            dense,
            encode_query,
            nprobe=config.nprobe,
            fusion_weight=config.fusion_weight,
            fusion_method=config.fusion_method,
        )

    # -- introspection ------------------------------------------------------

    @property
    def shards(self) -> int:
        """The shard count S."""
        return self._shards

    @property
    def retrieval_mode(self) -> str:
        """The active Phase-I retrieval mode."""
        return self._retrieval.mode

    @property
    def retriever(self) -> Optional["HybridRetriever"]:
        """The global sublinear retriever (None in exact mode)."""
        return self._hybrid

    @property
    def artifact(self) -> ConceptArtifact:
        """The compiled artifact backing this engine."""
        return self._artifact

    @property
    def fingerprint(self) -> str:
        """The artifact's model-weight SHA-256 (deployment identity).

        The blue/green swapper reports this before/after a flip, and
        ``/v1/metrics`` surfaces it so an operator can always tell
        *which* weights a live instance is serving.
        """
        return str(self._artifact.fingerprint.get("params_sha256", ""))

    @property
    def indexed_cids(self) -> Tuple[str, ...]:
        """All indexed concept ids in global (artifact) order."""
        return self._artifact.cids

    @property
    def omega(self) -> Set[str]:
        """The indexed concepts' description vocabulary Ω."""
        merged: Set[str] = set()
        for generator in self._generators:
            merged.update(generator.omega)
        return merged

    def __contains__(self, cid: str) -> bool:
        return cid in self._shard_of

    def shard_of(self, cid: str) -> int:
        """The shard owning ``cid`` (its compiled position mod S)."""
        try:
            return self._shard_of[cid]
        except KeyError:
            raise DataError(f"concept {cid!r} is not in the compiled artifact")

    def stats(self) -> Dict[str, Any]:
        """Engine counters for the serving layer's snapshot/metrics."""
        with self._lock:
            return {
                "shards": self._shards,
                "fingerprint": self.fingerprint,
                "concepts": len(self._artifact),
                "shard_sizes": [
                    len(generator.indexed_cids)
                    for generator in self._generators
                ],
                "retrievals": self._retrievals,
                "retrieve_shard_failures": self._retrieve_failures,
                "score_batches": self._score_batches,
                "retrieval_mode": self._retrieval.mode,
                "retrievals_by_mode": dict(self._mode_retrievals),
                "mmap": bool(getattr(self._artifact, "mmap", False)),
            }

    # -- precomputed encodings ----------------------------------------------

    def encoding_of(self, cid: str) -> ConceptEncoding:
        """The precompiled encoding for ``cid`` (zero-copy views)."""
        return self._artifact.encoding_of(cid)

    def structure_memory_of(
        self, cid: str
    ) -> Union[np.ndarray, List[ConceptEncoding]]:
        """Precomputed ``(beta, dim)`` structure memory, or ``[]``.

        The empty-list form is what :meth:`ComAid.score_batch` expects
        for models without structure attention, so the return value can
        be passed straight through as a candidate's ``ancestors``.
        """
        memory = self._artifact.structure_memory_of(cid)
        return memory if memory is not None else []

    # -- Phase I: scatter-gather retrieval -----------------------------------

    def retrieve(
        self, tokens: Sequence[str], k: int
    ) -> List[Tuple[str, float]]:
        """Global top-``k`` candidates by scatter-gather over all shards.

        Each shard reports its local top-``k`` (global IDF scale); the
        gather merges on ``(-score, global_position)``, the monolithic
        index's exact sort key, and cuts to ``k`` — reproducing the
        unsharded ranking.  A shard that raises is skipped (its
        concepts simply cannot be retrieved this query); if every shard
        raises, :class:`ShardFailure` is raised with the last cause.

        Non-exact modes (``sparse``/``dense``/``hybrid``) answer from
        the global sublinear retriever instead — one index, no
        scatter — under the same Fig-11 CR span taxonomy with the mode
        tagged on the span.
        """
        mode = self._retrieval.mode
        with self._lock:
            self._retrievals += 1
            self._mode_retrievals[mode] += 1
        if self._hybrid is not None:
            with trace.span(
                "engine.retrieve", phase="CR", mode=mode, k=k
            ) as span:
                probe("engine.retrieve")
                if mode == "sparse":
                    matches = self._hybrid.sparse.search(
                        tokens,
                        k,
                        max_postings_per_term=(
                            self._retrieval.max_postings_per_term
                        ),
                    )
                else:
                    matches = self._hybrid.search(tokens, k, mode=mode)
                span.set_tag("candidates", len(matches))
                return [(match.key, match.score) for match in matches]
        context = trace.current_span()

        def scatter(shard: int) -> List[Tuple[str, float]]:
            with trace.attach(context), trace.span(
                "engine.shard.retrieve", phase="CR", shard=shard, k=k
            ) as span:
                probe("engine.shard.retrieve")
                hits = self._generators[shard].generate(tokens, k)
                span.set_tag("candidates", len(hits))
                return hits

        gathered: List[List[Tuple[str, float]]] = []
        failures = 0
        last_error: Optional[BaseException] = None
        if self._pool is None:
            for shard in range(self._shards):
                try:
                    gathered.append(scatter(shard))
                except Exception as error:  # noqa: BLE001 - partial gather
                    failures += 1
                    last_error = error
                    logger.warning(
                        "shard %d failed during retrieval: %s", shard, error
                    )
        else:
            futures: List[Future] = [
                self._pool.submit(scatter, shard)
                for shard in range(self._shards)
            ]
            for shard, future in enumerate(futures):
                try:
                    gathered.append(future.result())
                except Exception as error:  # noqa: BLE001 - partial gather
                    failures += 1
                    last_error = error
                    logger.warning(
                        "shard %d failed during retrieval: %s", shard, error
                    )
        if failures:
            with self._lock:
                self._retrieve_failures += failures
        if not gathered:
            raise ShardFailure(
                f"all {self._shards} shards failed during retrieval"
            ) from last_error
        position = self._artifact.position_of
        merged = sorted(
            (hit for hits in gathered for hit in hits),
            key=lambda hit: (-hit[1], position(hit[0])),
        )
        return merged[:k]

    # -- Phase II: per-shard batched scoring ---------------------------------

    def score_batch(
        self,
        query_ids: Sequence[Sequence[int]],
        cids: Sequence[str],
    ) -> np.ndarray:
        """``log p(q_j | c_j)`` for each candidate, grouped by shard.

        Drop-in for :meth:`ComAid.score_batch` with concept ids instead
        of encoding pairs: candidates are grouped by owning shard and
        each group runs one lock-step batched decode on the worker pool
        using the shard's slice of the precomputed slab.  Row scores do
        not depend on batch composition, so the per-shard grouping
        returns the same vector as one whole-batch call — which also
        makes the scatter adaptive: batches smaller than
        ``shards * min_scatter_candidates`` (or any batch when the pool
        is closed) run as a single whole-batch decode on the calling
        thread, since S tiny decodes plus pool hops cost more than one
        combined decode.  Any shard failure propagates (a partially
        scored ranking would be unfairly ordered) and is handled by the
        linker's degraded-mode guard.
        """
        if len(query_ids) != len(cids):
            raise DataError(
                f"got {len(query_ids)} query sequences for "
                f"{len(cids)} candidates"
            )
        with self._lock:
            self._score_batches += 1
        scores = np.zeros(len(cids), dtype=np.float64)
        if not cids:
            return scores
        groups: Dict[int, List[int]] = {}
        for index, cid in enumerate(cids):
            groups.setdefault(self.shard_of(cid), []).append(index)
        context = trace.current_span()

        def score_shard(shard: int, indices: List[int]) -> np.ndarray:
            with trace.attach(context), trace.span(
                "engine.shard.phase2",
                phase="ED",
                shard=shard,
                batch=len(indices),
            ):
                probe("engine.shard.score")
                batch = [
                    (
                        self._artifact.encoding_of(cids[index]),
                        self.structure_memory_of(cids[index]),
                    )
                    for index in indices
                ]
                ids = [list(query_ids[index]) for index in indices]
                return self._model.score_batch(ids, batch)

        ordered = sorted(groups.items())
        scatter = (
            self._pool is not None
            and len(ordered) > 1
            and len(cids) >= self._shards * self._min_scatter_candidates
        )
        if scatter:
            futures = [
                (indices, self._pool.submit(score_shard, shard, indices))
                for shard, indices in ordered
            ]
            # future.result() re-raises the worker's original exception
            # (InjectedFault included), keeping failure types identical
            # to the inline path.
            results = [
                (indices, future.result()) for indices, future in futures
            ]
        elif len(ordered) == 1:
            shard, indices = ordered[0]
            results = [(indices, score_shard(shard, indices))]
        else:
            # Below the scatter threshold (or pool closed): one
            # whole-batch decode inline; shard=-1 tags the merged span.
            whole = list(range(len(cids)))
            results = [(whole, score_shard(-1, whole))]
        for indices, shard_scores in results:
            for index, score in zip(indices, shard_scores):
                scores[index] = float(score)
        return scores

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedConceptEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
