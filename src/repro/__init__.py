"""NCL — Neural Concept Linking for healthcare (SIGMOD'18 reproduction).

Reproduction of Dai et al., "Fine-grained Concept Linking using Neural
Networks in Healthcare", SIGMOD 2018.  The package implements the full
system from first principles on NumPy:

* :mod:`repro.core` — the COM-AID encode-decode network with text and
  structure attention, its trainer, the two-phase online linker, and
  the expert-feedback controller;
* :mod:`repro.embeddings` — CBOW pre-training with concept-id
  injection;
* :mod:`repro.baselines` — the paper's five competitor methods;
* :mod:`repro.ontology` / :mod:`repro.kb` / :mod:`repro.datasets` —
  the concept-tree, knowledge-base, and synthetic-corpus substrates;
* :mod:`repro.nn` — the neural-network substrate (LSTM/attention with
  hand-derived backprop);
* :mod:`repro.eval` — metrics and per-figure experiment runners.

The most common entry points are re-exported here::

    from repro import (hospital_x_like, pretrain_word_vectors,
                       ComAidConfig, TrainingConfig, LinkerConfig,
                       ComAidTrainer, NeuralConceptLinker)
"""

from repro.core import (
    ComAid,
    ComAidConfig,
    ComAidTrainer,
    FeedbackController,
    LinkerConfig,
    NeuralConceptLinker,
    TrainingConfig,
)
from repro.datasets import hospital_x_like, mimic_iii_like
from repro.embeddings import CbowConfig, pretrain_word_vectors
from repro.kb import KnowledgeBase, SnippetCorpus
from repro.ontology import Concept, Ontology

__version__ = "1.0.0"

__all__ = [
    "CbowConfig",
    "ComAid",
    "ComAidConfig",
    "ComAidTrainer",
    "Concept",
    "FeedbackController",
    "KnowledgeBase",
    "LinkerConfig",
    "NeuralConceptLinker",
    "Ontology",
    "SnippetCorpus",
    "TrainingConfig",
    "__version__",
    "hospital_x_like",
    "mimic_iii_like",
    "pretrain_word_vectors",
]
