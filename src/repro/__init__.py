"""NCL — Neural Concept Linking for healthcare (SIGMOD'18 reproduction).

Reproduction of Dai et al., "Fine-grained Concept Linking using Neural
Networks in Healthcare", SIGMOD 2018.  The package implements the full
system from first principles on NumPy:

* :mod:`repro.core` — the COM-AID encode-decode network with text and
  structure attention, its trainer, the two-phase online linker, and
  the expert-feedback controller;
* :mod:`repro.engine` — precompiled concept artifacts and the sharded
  scatter-gather linking engine;
* :mod:`repro.embeddings` — CBOW pre-training with concept-id
  injection;
* :mod:`repro.baselines` — the paper's five competitor methods;
* :mod:`repro.ontology` / :mod:`repro.kb` / :mod:`repro.datasets` —
  the concept-tree, knowledge-base, and synthetic-corpus substrates;
* :mod:`repro.nn` — the neural-network substrate (LSTM/attention with
  hand-derived backprop);
* :mod:`repro.eval` — metrics and per-figure experiment runners.

**Import from** :mod:`repro.api` — the stable, versioned public
surface::

    from repro.api import (hospital_x_like, pretrain_word_vectors,
                           ComAidConfig, TrainingConfig, LinkerConfig,
                           ComAidTrainer, NeuralConceptLinker)

The historical top-level re-exports (``from repro import ...``) still
resolve, but lazily and with a :class:`DeprecationWarning` naming the
``repro.api`` replacement; they will be removed in a future major
version.
"""

import warnings
from typing import Any, List

__version__ = "1.0.0"

#: Legacy top-level re-exports, now shimmed through :mod:`repro.api`.
_DEPRECATED_EXPORTS = (
    "CbowConfig",
    "ComAid",
    "ComAidConfig",
    "ComAidTrainer",
    "Concept",
    "FeedbackController",
    "KnowledgeBase",
    "LinkerConfig",
    "NeuralConceptLinker",
    "Ontology",
    "SnippetCorpus",
    "TrainingConfig",
    "hospital_x_like",
    "mimic_iii_like",
    "pretrain_word_vectors",
)

__all__ = [
    *sorted(_DEPRECATED_EXPORTS),
    "__version__",
]


def __getattr__(name: str) -> Any:
    """Resolve a legacy top-level re-export via :mod:`repro.api`.

    Emits a :class:`DeprecationWarning` naming the stable replacement;
    the resolved object is NOT cached on this module, so every legacy
    access keeps warning until the import is migrated.
    """
    if name in _DEPRECATED_EXPORTS:
        warnings.warn(
            f"importing {name!r} from 'repro' is deprecated; use "
            f"'from repro.api import {name}' (the stable v1 surface)",
            DeprecationWarning,
            stacklevel=2,
        )
        import repro.api

        return getattr(repro.api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    """Advertise the lazy legacy surface to ``dir()``/completion."""
    return sorted(set(globals()) | set(__all__))
