"""Experiment runners, one module per paper table/figure.

Every module exposes ``run(scale=..., seed=..., verbose=...) -> dict``
returning the figure's series/rows; the benchmarks under
``benchmarks/`` are thin wrappers that call these and assert the
paper's qualitative shape.

Scales: the paper's experiments train for hours on a 40-thread C++
server; ours run on one CPU, so each experiment takes an
:class:`ExperimentScale` selecting ontology size, query count, and
training effort.  ``SMALL`` keeps multi-training experiments (the
ablation grids) in CPU-minutes; ``DEFAULT`` is used where one training
suffices.
"""

from repro.eval.experiments.scale import DEFAULT, SMALL, TINY, ExperimentScale

__all__ = ["DEFAULT", "ExperimentScale", "SMALL", "TINY"]
