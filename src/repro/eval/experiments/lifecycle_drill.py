"""Closed-loop lifecycle drill: pool → resolve → retrain → hot swap.

Shared by the ``repro lifecycle`` CLI command, the lifecycle benchmark
(``BENCH_lifecycle.json``), and the acceptance tests.  The drill builds
a live serving stack from a synthetic dataset, runs real traffic
through it, resolves pooled uncertain queries against the dataset's
ground truth (playing the expert), retrains, recompiles, and performs a
blue/green hot swap — while client threads hammer the service to prove
the swap window drops nothing.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.core.config import LifecycleConfig, LinkerConfig, ServingConfig
from repro.core.linker import NeuralConceptLinker
from repro.core.trainer import ComAidTrainer
from repro.eval.experiments.scale import PRESETS, ExperimentScale
from repro.lifecycle import LifecycleController
from repro.serving.service import LinkingService
from repro.utils.logging import get_logger

LOGGER = get_logger("eval.lifecycle_drill")


def build_lifecycle_stack(
    scale: ExperimentScale,
    workdir: Path,
    dataset: str = "hospital-x-like",
    seed: int = 7,
    lifecycle_config: Optional[LifecycleConfig] = None,
    serving_config: Optional[ServingConfig] = None,
):
    """Train a pipeline, compile it, and stand up a lifecycle-enabled
    service.

    Returns ``(service, controller, ground_truth)`` with the service
    already started and warmed; ``ground_truth`` maps query text to
    the dataset's gold concept (the scripted expert's answer key).
    """
    import dataclasses

    from repro.engine.compile import compile_artifact

    config = (
        lifecycle_config if lifecycle_config is not None else LifecycleConfig()
    )
    bundle = scale.dataset(dataset, rng=seed)
    trainer = ComAidTrainer(
        scale.model_config(), scale.training_config(), rng=seed
    )
    model = trainer.fit(bundle.kb)
    active_dir = workdir / "active"
    compile_artifact(
        active_dir,
        model,
        bundle.ontology,
        kb=bundle.kb,
        metadata={"drill": "lifecycle", "seed": seed},
        index=config.compile_index,
    )
    linker = NeuralConceptLinker(
        model,
        bundle.ontology,
        dataclasses.replace(LinkerConfig(), artifact_dir=str(active_dir)),
        kb=bundle.kb,
    )
    service = LinkingService(
        linker,
        serving_config
        if serving_config is not None
        else ServingConfig(warm_on_start=True),
    )
    controller = LifecycleController(
        service,
        trainer,
        bundle.kb,
        config=config,
        workdir=workdir,
        active_dir=active_dir,
        seed=seed,
    )
    service.attach_lifecycle(controller)
    service.start(wait=True)
    ground_truth = {query.text: query.cid for query in bundle.queries}
    return service, controller, ground_truth


def feed_traffic(
    service: LinkingService,
    queries: Sequence[str],
    chunk: int = 8,
) -> List[Any]:
    """Run ``queries`` through the service in micro-batch-sized bursts."""
    results: List[Any] = []
    for start in range(0, len(queries), chunk):
        results.extend(service.link_many(list(queries[start:start + chunk])))
    return results


def resolve_pool(
    controller: LifecycleController,
    ground_truth: Dict[str, str],
    minimum: int = 0,
) -> int:
    """Play the expert: resolve every pooled query against gold labels.

    With ``minimum``, additionally resolves gold queries directly until
    at least that many pairs are staged — the drill must reach the
    retrain threshold even when the model is confident everywhere.
    """
    resolved = 0
    for item in controller.pool.drain():
        cid = ground_truth.get(item.query)
        if cid is not None:
            controller.resolve(item.query, cid)
            resolved += 1
    if minimum:
        for query, cid in ground_truth.items():
            if controller.staged_pairs >= minimum:
                break
            controller.resolve(query, cid)
            resolved += 1
    return resolved


class _HammerClient(threading.Thread):
    """A closed-loop client driving traffic until told to stop."""

    def __init__(
        self, service: LinkingService, queries: Sequence[str], offset: int
    ) -> None:
        super().__init__(name=f"hammer-{offset}", daemon=True)
        self.service = service
        self.queries = list(queries)
        self.offset = offset
        self.stop = threading.Event()
        self.requests = 0
        self.failures = 0
        self.degraded = 0
        self.latencies: List[float] = []

    def run(self) -> None:
        index = self.offset
        while not self.stop.is_set():
            query = self.queries[index % len(self.queries)]
            index += 1
            started = time.monotonic()
            try:
                result = self.service.link(query)
            except Exception:  # noqa: BLE001 - every failure is the finding
                self.failures += 1
                continue
            finally:
                self.requests += 1
            self.latencies.append(time.monotonic() - started)
            if result.degraded:
                self.degraded += 1


def run_lifecycle_drill(
    scale: str = "tiny",
    seed: int = 7,
    workdir: Optional[Path] = None,
    clients: int = 2,
    retrain_epochs: int = 2,
) -> Dict[str, Any]:
    """The full closed loop under load; returns a JSON-ready report.

    Acceptance criteria measured here:

    * ``availability`` — fraction of hammer-client requests that
      succeeded *while the stage + promote window was open*; the hot
      swap must not fail or degrade a single request.
    * ``promoted`` — the shadow-scored candidate passed every gate and
      the engine pointer flipped (fingerprints prove it).
    * ``shadow_overhead_ratio`` — mean primary request latency while a
      shadow candidate was scoring, over the pre-staging baseline.
    """
    preset = PRESETS[scale]
    own_tmp: Optional[tempfile.TemporaryDirectory] = None
    if workdir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="lifecycle-drill-")
        workdir = Path(own_tmp.name)
    config = LifecycleConfig(
        enabled=True,
        pool_capacity=64,
        # Permissive uncertainty criteria: the drill needs pairs to
        # flow, not a tuned triage policy.
        loss_threshold=1.0,
        margin_threshold=5.0,
        retrain_after=8,
        retrain_epochs=retrain_epochs,
        min_shadow_samples=8,
        # A fine-tuned model legitimately diverges from its parent on
        # the queries it was just corrected on; the drill gates on
        # sanity, not parity.
        min_agreement=0.5,
        max_log_prob_drop=10.0,
        max_latency_ratio=50.0,
    )
    try:
        service, controller, ground_truth = build_lifecycle_stack(
            preset, workdir, seed=seed, lifecycle_config=config
        )
        queries = list(ground_truth)
        try:
            fingerprint_before = service.linker.model_fingerprint

            # Baseline latency, no candidate anywhere.
            baseline = feed_traffic(service, queries[:32])
            baseline_seconds = [r.timing.total() for r in baseline]

            # Pool + resolve + retrain + compile.
            feed_traffic(service, queries)
            resolve_pool(
                controller, ground_truth, minimum=config.retrain_after
            )
            controller.retrain()
            candidate_dir = controller.compile_candidate()

            # Open the swap window under load.
            hammers = [
                _HammerClient(service, queries, offset=i * 7)
                for i in range(clients)
            ]
            for hammer in hammers:
                hammer.start()
            try:
                controller.stage(artifact_dir=candidate_dir)
                shadowed = feed_traffic(service, queries[:48])
                shadow_seconds = [r.timing.total() for r in shadowed]
                promotion = controller.promote()
            finally:
                for hammer in hammers:
                    hammer.stop.set()
                for hammer in hammers:
                    hammer.join(timeout=10.0)

            fingerprint_after = service.linker.model_fingerprint
            requests = sum(h.requests for h in hammers)
            failures = sum(h.failures for h in hammers)
            degraded = sum(h.degraded for h in hammers)
            availability = (
                (requests - failures - degraded) / requests
                if requests
                else 1.0
            )
            baseline_mean = (
                sum(baseline_seconds) / len(baseline_seconds)
                if baseline_seconds
                else 0.0
            )
            shadow_mean = (
                sum(shadow_seconds) / len(shadow_seconds)
                if shadow_seconds
                else 0.0
            )
            overhead = (
                shadow_mean / baseline_mean if baseline_mean > 0 else 1.0
            )
            return {
                "scale": scale,
                "seed": seed,
                "promoted": bool(promotion.get("promoted")),
                "promotion": promotion,
                "fingerprint_before": fingerprint_before,
                "fingerprint_after": fingerprint_after,
                "fingerprint_changed": fingerprint_before != fingerprint_after,
                "swap_window": {
                    "clients": clients,
                    "requests": requests,
                    "failures": failures,
                    "degraded": degraded,
                    "availability": availability,
                },
                "shadow_overhead_ratio": overhead,
                "baseline_mean_seconds": baseline_mean,
                "shadowed_mean_seconds": shadow_mean,
                "status": controller.status(),
            }
        finally:
            service.stop()
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()
