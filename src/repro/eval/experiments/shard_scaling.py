"""Shard-engine benchmark — precompiled scatter-gather vs runtime encoding.

Figure 11 attributes most online cost to ED — encoding concepts on the
request path.  The engine (:mod:`repro.engine`) removes that term by
compiling every concept's encodings offline (``repro compile``) and
serving Phase I/II from S shards over the frozen slabs.  This runner
measures the end-to-end effect on one query stream through three
linkers sharing one trained model:

* ``runtime_cold`` — the pre-engine path, encoding caches invalidated
  per query (every query pays full ED, the worst honest baseline);
* ``engine_s1`` — precompiled artifact, one shard, in-thread;
* ``engine_s4`` — precompiled artifact, four shards on the worker pool.

The report records per-phase p50s, link throughput, the equivalence
audit against the runtime path, and ``os.cpu_count()`` — on a single
core the win is eliminating request-path encoding, not thread
parallelism, and the config labels say exactly what was compared.
"""

from __future__ import annotations

import os
import statistics
import tempfile
from dataclasses import replace
from typing import Dict, List, Sequence

from repro.core.linker import NeuralConceptLinker
from repro.engine.compile import compile_artifact
from repro.eval.experiments.scale import DEFAULT, ExperimentScale
from repro.eval.harness import build_pipeline
from repro.eval.reporting import emit, format_table
from repro.utils.rng import derive_rng, ensure_rng
from repro.utils.timing import TimingBreakdown

PHASES = ("OR", "CR", "ED", "RT")


def _percentiles(breakdowns: Sequence[TimingBreakdown]) -> Dict[str, float]:
    report: Dict[str, float] = {}
    for phase in PHASES:
        samples = [b.seconds.get(phase, 0.0) for b in breakdowns]
        report[f"{phase}_p50"] = statistics.median(samples) if samples else 0.0
    report["cr_ed_p50"] = report["CR_p50"] + report["ED_p50"]
    return report


def run_shard_scaling(
    scale: ExperimentScale = DEFAULT,
    seed: int = 2018,
    k: int = 10,
    queries_per_point: int = 40,
    shards: int = 4,
    dataset: str = "hospital-x-like",
    artifact_dir: str | None = None,
    verbose: bool = True,
) -> Dict[str, object]:
    """Runtime-encoding vs precompiled sharded engine on one pipeline.

    Returns a JSON-ready report: per-mode phase p50s and throughput,
    ``speedup_throughput`` (engine at ``shards`` workers over the
    runtime cold-cache path), ``cr_ed_p50_improvement`` (positive when
    the precompiled path's CR+ED median is lower), and the equivalence
    audit (``rankings_identical``, ``max_abs_log_prob_delta``).
    """
    generator = ensure_rng(seed)
    bundle = scale.dataset(dataset, rng=derive_rng(generator, dataset))
    pipeline = build_pipeline(
        bundle,
        model_config=scale.model_config(),
        training_config=scale.training_config(),
        cbow_config=scale.cbow_config(),
        rng=derive_rng(generator, dataset, "pipeline"),
    )
    runtime = pipeline.linker
    directory = artifact_dir or tempfile.mkdtemp(prefix="repro-artifact-")
    compile_artifact(
        directory,
        pipeline.model,
        bundle.ontology,
        kb=bundle.kb,
        index_aliases=runtime.config.index_aliases,
    )

    def engine_linker(shard_count: int) -> NeuralConceptLinker:
        return NeuralConceptLinker(
            pipeline.model,
            bundle.ontology,
            replace(
                runtime.config, artifact_dir=str(directory),
                shards=shard_count,
            ),
            kb=bundle.kb,
            word_vectors=pipeline.word_vectors,
        )

    queries = [query.text for query in bundle.queries[:queries_per_point]]
    modes = {
        "runtime_cold": {
            "linker": runtime,
            "label": "workers=1, runtime encoding, cold cache",
            "cold": True,
        },
        "engine_s1": {
            "linker": engine_linker(1),
            "label": "workers=1, precompiled artifact",
            "cold": False,
        },
        f"engine_s{shards}": {
            "linker": engine_linker(shards),
            "label": f"workers={shards}, precompiled artifact",
            "cold": False,
        },
    }
    timings: Dict[str, Dict[str, float]] = {}
    results: Dict[str, List] = {}
    for mode, spec in modes.items():
        linker = spec["linker"]
        breakdowns: List[TimingBreakdown] = []
        outcomes = []
        for query in queries:
            if spec["cold"]:
                linker.invalidate_cache()
            outcome = linker.link(query, k=k)
            outcomes.append(outcome)
            breakdowns.append(outcome.timing)
        report = _percentiles(breakdowns)
        total = sum(
            sum(b.seconds.get(phase, 0.0) for phase in PHASES)
            for b in breakdowns
        )
        report["link_seconds_total"] = total
        report["throughput_qps"] = len(queries) / max(total, 1e-12)
        report["label"] = spec["label"]
        timings[mode] = report
        results[mode] = outcomes

    max_delta = 0.0
    rankings_identical = True
    for mode in modes:
        if mode == "runtime_cold":
            continue
        for left, right in zip(results["runtime_cold"], results[mode]):
            if [c.cid for c in left.ranked] != [c.cid for c in right.ranked]:
                rankings_identical = False
            for a, b in zip(left.ranked, right.ranked):
                if a.cid == b.cid:
                    max_delta = max(max_delta, abs(a.log_prob - b.log_prob))

    sharded = timings[f"engine_s{shards}"]
    baseline = timings["runtime_cold"]
    report: Dict[str, object] = {
        "dataset": dataset,
        "scale": scale.name,
        "seed": seed,
        "k": k,
        "shards": shards,
        "queries": len(queries),
        "cpu_count": os.cpu_count(),
        "modes": timings,
        "speedup_throughput": sharded["throughput_qps"]
        / max(baseline["throughput_qps"], 1e-12),
        "cr_ed_p50_improvement": baseline["cr_ed_p50"]
        - sharded["cr_ed_p50"],
        "rankings_identical": rankings_identical,
        "max_abs_log_prob_delta": max_delta,
    }
    for mode in modes:
        engine = modes[mode]["linker"].engine
        if engine is not None:
            engine.close()
    if verbose:
        rows = [
            [mode]
            + [round(timings[mode][f"{p}_p50"] * 1e3, 3) for p in PHASES]
            + [round(timings[mode]["throughput_qps"], 1)]
            for mode in modes
        ]
        emit(
            format_table(
                ["mode"] + [f"{p} p50 (ms)" for p in PHASES] + ["qps"],
                rows,
                title=(
                    f"Shard engine, {dataset} k={k} S={shards} "
                    f"(throughput x{report['speedup_throughput']:.2f})"
                ),
            )
        )
    return report
