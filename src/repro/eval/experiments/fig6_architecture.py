"""Figure 6 — network architecture study (the attention ablations).

Trains COM-AID and its three derived architectures at each hidden
dimension of the (scaled) grid, on both datasets:

* COM-AID     — both attentions;
* COM-AID⁻c   — structure attention removed (an attentional
  seq2seq [2]);
* COM-AID⁻w   — text attention removed;
* COM-AID⁻wc  — both removed (a plain seq2seq [40]).

Expected shapes (paper Section 6.3): COM-AID dominates every variant on
accuracy and MRR; removing SC costs ≈0.08 accuracy, removing TC ≈0.1,
removing both ≳0.2.

Scoring note: this study evaluates with ``remove_shared_words=False``
so that Phase II ranks purely by each network's translation probability
— the architecture differences under study.  (The production linker's
shared-word shortcut resolves many queries before the decoder is
consulted, which would mask exactly the effect this figure measures.)
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.eval.experiments.scale import SMALL, ExperimentScale
from repro.eval.harness import build_pipeline, evaluate_ranker, linker_ranker
from repro.eval.reporting import emit, format_series
from repro.utils.rng import derive_rng, ensure_rng

VARIANTS = {
    "COM-AID": dict(use_text_attention=True, use_structure_attention=True),
    "COM-AID-c": dict(use_text_attention=True, use_structure_attention=False),
    "COM-AID-w": dict(use_text_attention=False, use_structure_attention=True),
    "COM-AID-wc": dict(use_text_attention=False, use_structure_attention=False),
}
DATASETS = ("hospital-x-like", "mimic-iii-like")


def run(
    scale: ExperimentScale = SMALL,
    seed: int = 2018,
    datasets: Sequence[str] = DATASETS,
    dim_grid: Sequence[int] = (),
    verbose: bool = True,
) -> Dict[str, Dict[str, Dict[str, List[float]]]]:
    """Returns ``{dataset: {variant: {"d": [...], "acc": [...], "mrr": [...]}}}``."""
    dims = list(dim_grid) if dim_grid else list(scale.dim_grid)
    generator = ensure_rng(seed)
    results: Dict[str, Dict[str, Dict[str, List[float]]]] = {}
    for name in datasets:
        dataset = scale.dataset(name, rng=derive_rng(generator, name))
        per_variant: Dict[str, Dict[str, List[float]]] = {
            variant: {"d": list(dims), "acc": [], "mrr": []}
            for variant in VARIANTS
        }
        for dim in dims:
            # Pre-training is architecture-independent: share one
            # vector set across the four variants at this dimension.
            from repro.embeddings.pretrain import pretrain_word_vectors

            vectors = pretrain_word_vectors(
                dataset.corpus,
                scale.cbow_config(dim=dim),
                rng=derive_rng(generator, name, "cbow", str(dim)),
            )
            for variant, flags in VARIANTS.items():
                pipeline = build_pipeline(
                    dataset,
                    model_config=scale.model_config(dim=dim, **flags),
                    training_config=scale.training_config(),
                    linker_config=scale.linker_config(
                        remove_shared_words=False
                    ),
                    word_vectors=vectors,
                    rng=derive_rng(generator, name, "pipeline"),
                )
                outcome = evaluate_ranker(
                    variant,
                    linker_ranker(pipeline.linker),
                    dataset.queries[: scale.eval_queries],
                )
                per_variant[variant]["acc"].append(outcome.accuracy)
                per_variant[variant]["mrr"].append(outcome.mrr)
        results[name] = per_variant
        if verbose:
            for variant, series in per_variant.items():
                emit(
                    format_series(
                        f"Fig6 {name} {variant} acc", dims, series["acc"], "d"
                    )
                )
                emit(
                    format_series(
                        f"Fig6 {name} {variant} mrr", dims, series["mrr"], "d"
                    )
                )
    return results


def average_drop(
    results: Dict[str, Dict[str, Dict[str, List[float]]]],
    variant: str,
    metric: str = "acc",
) -> float:
    """Mean accuracy drop of ``variant`` vs full COM-AID, across
    datasets and dimensions (the paper's "averagely drops 0.08/0.1/0.2"
    statements)."""
    drops: List[float] = []
    for per_variant in results.values():
        full = per_variant["COM-AID"][metric]
        ablated = per_variant[variant][metric]
        drops.extend(f - a for f, a in zip(full, ablated))
    return sum(drops) / len(drops)
