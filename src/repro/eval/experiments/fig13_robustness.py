"""Figure 13 (Appendix C) — robustness to training-data variation.

13(a): vary the considered concept fraction from 25% to 100% (labeled
data shrinks accordingly; evaluation queries cover the kept concepts).
Expected: accuracy decreases mildly as more concepts interfere; overall
the curve is flat-ish (NCL robust to labeled-data scale).

13(b): keep concepts and labeled data fixed; vary the *unlabeled*
corpus fraction from 25% to 100%.  Expected: accuracy degrades as the
pre-training corpus shrinks but stays well above the no-pretraining
floor (the paper reports >0.6 at 25%).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.datasets.generator import generate_queries
from repro.eval.experiments.scale import SMALL, ExperimentScale
from repro.eval.harness import build_pipeline, evaluate_ranker, linker_ranker
from repro.eval.reporting import emit, format_series
from repro.utils.rng import derive_rng, ensure_rng

FRACTIONS = (0.25, 0.5, 0.75, 1.0)
DATASETS = ("hospital-x-like", "mimic-iii-like")


def run_vary_concepts(
    scale: ExperimentScale = SMALL,
    seed: int = 2018,
    fractions: Sequence[float] = FRACTIONS,
    datasets: Sequence[str] = DATASETS,
    queries_per_point: int = 0,
    verbose: bool = True,
) -> Dict[str, Dict[str, List[float]]]:
    """Figure 13(a): accuracy vs considered-concept fraction."""
    generator = ensure_rng(seed)
    query_count = queries_per_point or scale.eval_queries
    results: Dict[str, Dict[str, List[float]]] = {}
    for name in datasets:
        dataset = scale.dataset(name, rng=derive_rng(generator, name))
        leaves = [leaf.cid for leaf in dataset.ontology.fine_grained()]
        from repro.embeddings.pretrain import pretrain_word_vectors

        vectors = pretrain_word_vectors(
            dataset.corpus,
            scale.cbow_config(),
            rng=derive_rng(generator, name, "cbow"),
        )
        accuracies: List[float] = []
        for fraction in fractions:
            keep_count = max(2, round(fraction * len(leaves)))
            kept = leaves[:keep_count]
            restricted = dataset.ontology.restricted_to(kept)
            pairs = dataset.kb.training_pairs(cids=kept)
            # Train on the restricted pair set and restrict the linker
            # to the kept concepts.
            from repro.core.linker import NeuralConceptLinker
            from repro.core.trainer import ComAidTrainer

            trainer = ComAidTrainer(
                scale.model_config(),
                scale.training_config(),
                rng=derive_rng(generator, name, "trainer", str(fraction)),
            )
            model = trainer.fit(dataset.kb, word_vectors=vectors, pairs=pairs)
            linker = NeuralConceptLinker(
                model,
                restricted,
                scale.linker_config(),
                kb=dataset.kb,
                word_vectors=vectors,
            )
            eval_queries = generate_queries(
                restricted,
                query_count,
                rng=derive_rng(generator, name, "queries", str(fraction)),
            )
            outcome = evaluate_ranker(
                f"NCL({fraction:.0%} concepts)",
                linker_ranker(linker),
                eval_queries,
            )
            accuracies.append(outcome.accuracy)
        results[name] = {"fraction": list(fractions), "acc": accuracies}
        if verbose:
            emit(
                format_series(f"Fig13a {name}", fractions, accuracies, "frac")
            )
    return results


def run_vary_unlabeled(
    scale: ExperimentScale = SMALL,
    seed: int = 2018,
    fractions: Sequence[float] = FRACTIONS,
    datasets: Sequence[str] = DATASETS,
    verbose: bool = True,
) -> Dict[str, Dict[str, List[float]]]:
    """Figure 13(b): accuracy vs unlabeled-corpus fraction."""
    generator = ensure_rng(seed)
    results: Dict[str, Dict[str, List[float]]] = {}
    for name in datasets:
        dataset = scale.dataset(name, rng=derive_rng(generator, name))
        accuracies: List[float] = []
        for fraction in fractions:
            reduced = dataset.corpus.subsample(
                fraction, rng=derive_rng(generator, name, "sub", str(fraction))
            )
            trimmed = type(dataset)(
                name=dataset.name,
                ontology=dataset.ontology,
                kb=dataset.kb,
                corpus=reduced,
                queries=dataset.queries,
                metadata=dict(dataset.metadata),
            )
            pipeline = build_pipeline(
                trimmed,
                model_config=scale.model_config(),
                training_config=scale.training_config(),
                cbow_config=scale.cbow_config(),
                rng=derive_rng(generator, name, "pipeline", str(fraction)),
            )
            outcome = evaluate_ranker(
                f"NCL({fraction:.0%} unlabeled)",
                linker_ranker(pipeline.linker),
                dataset.queries[: scale.eval_queries],
            )
            accuracies.append(outcome.accuracy)
        results[name] = {"fraction": list(fractions), "acc": accuracies}
        if verbose:
            emit(
                format_series(f"Fig13b {name}", fractions, accuracies, "frac")
            )
    return results
