"""Multi-process serving load benchmark — forked workers vs one.

``BENCH_shard.json`` showed the threaded tier topping out at the GIL:
shard threads cannot buy end-to-end qps because Phase-II decode is
pure Python + NumPy.  The multi-process tier
(:class:`~repro.serving.service.ProcPoolLinkingService`) forks N
workers that mmap one compiled slab and decode in parallel outside
the parent's GIL.  This runner measures what that buys under a
closed-loop load:

* C client threads hammer the service for a fixed duration, each
  issuing the next request the moment the previous one resolves;
* every request ends in exactly one of three ways — served, shed
  (an explicit :class:`~repro.serving.frontend.ShedError`), or failed
  — so *availability* (the fraction that got a definitive answer)
  is measurable, and anything hung or dropped shows up as < 1.0;
* served throughput, accepted-request latency percentiles, and the
  shed rate are recorded per worker count.

``os.cpu_count()`` rides along in the report: on a single core the
forked tier cannot beat one worker on throughput (there is only one
core to run them on), so the ≥2× gate in
``benchmarks/test_mp_serving.py`` only arms on ≥4 CPUs and the
availability gate (1.0, always) is the universal invariant.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from dataclasses import replace
from typing import Dict, List, Sequence

from repro.core.linker import NeuralConceptLinker
from repro.engine.compile import compile_artifact
from repro.eval.experiments.scale import DEFAULT, ExperimentScale
from repro.eval.harness import build_pipeline
from repro.eval.reporting import emit, format_table
from repro.serving.frontend import ShedError
from repro.serving.service import ProcPoolLinkingService
from repro.utils.rng import derive_rng, ensure_rng


def _percentile(samples: Sequence[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


class _ClientStats:
    """One closed-loop client's tally (merged after join)."""

    __slots__ = ("ok", "shed", "failed", "latencies")

    def __init__(self) -> None:
        self.ok = 0
        self.shed = 0
        self.failed = 0
        self.latencies: List[float] = []


def _drive(
    service: ProcPoolLinkingService,
    queries: Sequence[str],
    k: int,
    clients: int,
    duration_s: float,
) -> Dict[str, float]:
    """Closed-loop load: ``clients`` threads for ``duration_s`` seconds."""
    stop_at = time.monotonic() + duration_s
    tallies = [_ClientStats() for _ in range(clients)]

    def client(index: int) -> None:
        stats = tallies[index]
        cursor = index
        while time.monotonic() < stop_at:
            query = queries[cursor % len(queries)]
            cursor += clients
            started = time.perf_counter()
            try:
                service.link_many([query], k=k)
            except ShedError:
                stats.shed += 1
            except Exception:  # noqa: BLE001 - tallied as unavailability
                stats.failed += 1
            else:
                stats.ok += 1
                stats.latencies.append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=client, args=(index,), daemon=True)
        for index in range(clients)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    ok = sum(s.ok for s in tallies)
    shed = sum(s.shed for s in tallies)
    failed = sum(s.failed for s in tallies)
    issued = ok + shed + failed
    latencies = [sample for s in tallies for sample in s.latencies]
    return {
        "issued": issued,
        "served": ok,
        "shed": shed,
        "failed": failed,
        "elapsed_s": elapsed,
        "qps": ok / max(elapsed, 1e-12),
        "shed_rate": shed / max(issued, 1),
        # Every request either served, shed, or failed — a hung or
        # dropped request would leave issued short of the tally and a
        # failure books here directly.
        "availability": (ok + shed) / max(issued, 1),
        "latency_p50_s": _percentile(latencies, 0.50),
        "latency_p99_s": _percentile(latencies, 0.99),
    }


def run_mp_load(
    scale: ExperimentScale = DEFAULT,
    seed: int = 2018,
    k: int = 10,
    clients: int = 8,
    duration_s: float = 2.0,
    worker_counts: Sequence[int] = (1, 4),
    dataset: str = "hospital-x-like",
    artifact_dir: str | None = None,
    admission_queue: int = 256,
    shed_policy: str = "reject_new",
    max_batch_size: int = 8,
    verbose: bool = True,
) -> Dict[str, object]:
    """Closed-loop load against the multi-process tier per worker count.

    Returns a JSON-ready report: per-worker-count qps / latency
    percentiles / shed rate / availability, ``speedup_qps`` (the last
    worker count over the first), and ``availability`` (the minimum
    across modes — the number the benchmark gates at 1.0).
    """
    generator = ensure_rng(seed)
    bundle = scale.dataset(dataset, rng=derive_rng(generator, dataset))
    pipeline = build_pipeline(
        bundle,
        model_config=scale.model_config(),
        training_config=scale.training_config(),
        cbow_config=scale.cbow_config(),
        rng=derive_rng(generator, dataset, "pipeline"),
    )
    directory = artifact_dir or tempfile.mkdtemp(prefix="repro-mp-bench-")
    compile_artifact(
        directory,
        pipeline.model,
        bundle.ontology,
        kb=bundle.kb,
        index_aliases=pipeline.linker.config.index_aliases,
    )
    # Built once, pre-fork: the workers inherit the model and mapped
    # slab copy-on-write, exactly as `repro serve --workers N` does.
    worker_linker = NeuralConceptLinker(
        pipeline.model,
        bundle.ontology,
        replace(
            pipeline.linker.config,
            artifact_dir=str(directory),
            mmap_artifact=True,
            fuse_phase2=True,
        ),
        kb=bundle.kb,
        word_vectors=pipeline.word_vectors,
    )
    queries = [query.text for query in bundle.queries]

    from repro.core.config import ServingConfig

    modes: Dict[str, Dict[str, float]] = {}
    for workers in worker_counts:
        config = ServingConfig(
            workers=workers,
            admission_queue=admission_queue,
            shed_policy=shed_policy,
            max_batch_size=max_batch_size,
            warm_on_start=True,
        )
        service = ProcPoolLinkingService(
            lambda: worker_linker, bundle.ontology, config
        )
        service.start(wait=True)
        try:
            modes[f"workers_{workers}"] = _drive(
                service, queries, k, clients, duration_s
            )
        finally:
            service.stop()

    first = modes[f"workers_{worker_counts[0]}"]
    last = modes[f"workers_{worker_counts[-1]}"]
    report: Dict[str, object] = {
        "dataset": dataset,
        "scale": scale.name,
        "seed": seed,
        "k": k,
        "clients": clients,
        "duration_s": duration_s,
        "cpu_count": os.cpu_count(),
        "admission_queue": admission_queue,
        "shed_policy": shed_policy,
        "max_batch_size": max_batch_size,
        "worker_counts": list(worker_counts),
        "modes": modes,
        "speedup_qps": last["qps"] / max(first["qps"], 1e-12),
        "availability": min(mode["availability"] for mode in modes.values()),
    }
    if verbose:
        rows = [
            [
                name,
                int(stats["issued"]),
                round(stats["qps"], 1),
                round(stats["latency_p99_s"] * 1e3, 2),
                round(stats["shed_rate"], 4),
                round(stats["availability"], 4),
            ]
            for name, stats in modes.items()
        ]
        emit(
            format_table(
                ["mode", "issued", "qps", "p99 (ms)", "shed", "avail"],
                rows,
                title=(
                    f"Multi-process serving, {dataset} clients={clients} "
                    f"cpus={os.cpu_count()} "
                    f"(qps x{report['speedup_qps']:.2f})"
                ),
            )
        )
    return report
