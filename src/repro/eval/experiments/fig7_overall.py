"""Figure 7 — overall linking quality: NCL vs the five competitors.

Per dataset, evaluates (accuracy and MRR, group-averaged per the
paper's protocol):

* NCL (the full pipeline),
* pkduck at θ ∈ {0.1 .. 0.5},
* NOBLECoder (NC),
* LR⁺ (extended logistic regression over Phase-I candidates),
* WMD (best over a small d sweep, like the paper's tuning),
* Doc2Vec (best over a small d sweep).

Expected shape: NCL highest on both metrics and both datasets; pkduck
second, improving as θ decreases; NC, LR⁺, WMD and Doc2Vec behind.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.base import BaselineLinker
from repro.baselines.doc2vec import Doc2VecConfig, Doc2VecLinker
from repro.baselines.lr_plus import LrPlusLinker
from repro.baselines.noblecoder import NobleCoderLinker
from repro.baselines.pkduck import PkduckLinker
from repro.baselines.wmd import WmdLinker
from repro.datasets.splits import make_query_groups
from repro.embeddings.pretrain import pretrain_word_vectors
from repro.eval.experiments.scale import DEFAULT, ExperimentScale
from repro.eval.harness import (
    EvaluationResult,
    Ranker,
    build_pipeline,
    evaluate_groups,
    linker_ranker,
)
from repro.eval.reporting import emit, format_table
from repro.utils.rng import derive_rng, ensure_rng

THETA_GRID = (0.1, 0.2, 0.3, 0.4, 0.5)
DATASETS = ("hospital-x-like", "mimic-iii-like")


def baseline_ranker(baseline: BaselineLinker, k: int = 20) -> Ranker:
    """Adapt a :class:`BaselineLinker` to the harness ranker interface."""
    def rank(query: str) -> List[str]:
        return [cid for cid, _ in baseline.rank(query, k=k)]

    return rank


def run(
    scale: ExperimentScale = DEFAULT,
    seed: int = 2018,
    datasets: Sequence[str] = DATASETS,
    theta_grid: Sequence[float] = THETA_GRID,
    wmd_dims: Sequence[int] = (),
    verbose: bool = True,
) -> Dict[str, List[EvaluationResult]]:
    """Returns ``{dataset: [EvaluationResult per method]}``."""
    generator = ensure_rng(seed)
    wmd_dim_grid = list(wmd_dims) if wmd_dims else [scale.dim]
    results: Dict[str, List[EvaluationResult]] = {}
    for name in datasets:
        dataset = scale.dataset(name, rng=derive_rng(generator, name))
        groups = make_query_groups(
            dataset.queries,
            n_groups=scale.n_groups,
            group_size=scale.group_size,
            purposive_size=scale.purposive_size,
            rng=derive_rng(generator, name, "groups"),
        )
        rows: List[EvaluationResult] = []

        pipeline = build_pipeline(
            dataset,
            model_config=scale.model_config(),
            training_config=scale.training_config(),
            cbow_config=scale.cbow_config(),
            rng=derive_rng(generator, name, "pipeline"),
        )
        rows.append(
            evaluate_groups("NCL", linker_ranker(pipeline.linker), groups)
        )

        for theta in theta_grid:
            pkduck = PkduckLinker(dataset.ontology, theta=theta)
            rows.append(
                evaluate_groups(
                    f"pkduck(theta={theta})", baseline_ranker(pkduck), groups
                )
            )

        noble = NobleCoderLinker(dataset.ontology, kb=dataset.kb)
        rows.append(evaluate_groups("NC", baseline_ranker(noble), groups))

        lr_plus = LrPlusLinker(
            dataset.ontology,
            dataset.kb,
            rng=derive_rng(generator, name, "lr+"),
        ).fit()
        rows.append(evaluate_groups("LR+", baseline_ranker(lr_plus), groups))

        # WMD over plain (non-injected) word2vec vectors, best over the
        # d sweep — mirroring the paper's per-method tuning.
        best_wmd: Optional[EvaluationResult] = None
        for dim in wmd_dim_grid:
            vectors = pretrain_word_vectors(
                dataset.corpus,
                scale.cbow_config(dim=dim),
                rng=derive_rng(generator, name, "wmd", str(dim)),
                inject=False,
            )
            wmd = WmdLinker(dataset.ontology, vectors, prune_to=20)
            outcome = evaluate_groups(
                f"WMD(d={dim})", baseline_ranker(wmd), groups
            )
            if best_wmd is None or outcome.accuracy > best_wmd.accuracy:
                best_wmd = outcome
        assert best_wmd is not None
        rows.append(best_wmd)

        doc2vec = Doc2VecLinker(
            dataset.ontology,
            config=Doc2VecConfig(dim=scale.dim),
            rng=derive_rng(generator, name, "doc2vec"),
        ).fit()
        rows.append(
            evaluate_groups(
                f"Doc2Vec(d={scale.dim})", baseline_ranker(doc2vec), groups
            )
        )

        results[name] = rows
        if verbose:
            emit(
                format_table(
                    ["method", "accuracy", "MRR"],
                    [row.as_row() for row in rows],
                    title=f"Fig7 {name}",
                )
            )
    return results
