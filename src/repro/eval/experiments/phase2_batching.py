"""Phase-II batching benchmark — sequential vs lock-step candidate scoring.

Figure 11 shows the encode-decode part (ED) dominating online linking
time; ``LinkerConfig.batch_phase2`` attacks exactly that term by scoring
all k re-ranking candidates in one batched decode (one ``(k, ·)`` matmul
per decoder timestep instead of k mat-vecs).  This runner measures the
win and audits the equivalence claim in the same pass: the identical
query stream flows through two linkers sharing one trained model — one
sequential (the reference), one batched — and the report carries the
per-phase means, the ED+RT speedup, and the maximum log-prob delta /
ranking agreement between the two paths.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Sequence

from repro.core.linker import NeuralConceptLinker
from repro.eval.experiments.scale import DEFAULT, ExperimentScale
from repro.eval.harness import build_pipeline
from repro.eval.reporting import emit, format_table
from repro.utils.rng import derive_rng, ensure_rng
from repro.utils.timing import TimingBreakdown

PHASES = ("OR", "CR", "ED", "RT")


def _mean_breakdown(breakdowns: Sequence[TimingBreakdown]) -> Dict[str, float]:
    totals: Dict[str, float] = {phase: 0.0 for phase in PHASES}
    for breakdown in breakdowns:
        for phase in PHASES:
            totals[phase] += breakdown.seconds.get(phase, 0.0)
    count = max(len(breakdowns), 1)
    means = {phase: totals[phase] / count for phase in PHASES}
    means["total"] = sum(means.values())
    means["ed_rt"] = means["ED"] + means["RT"]
    return means


def run_phase2_batching(
    scale: ExperimentScale = DEFAULT,
    seed: int = 2018,
    k: int = 10,
    queries_per_point: int = 40,
    dataset: str = "hospital-x-like",
    verbose: bool = True,
) -> Dict[str, object]:
    """Sequential-vs-batched Phase II on one trained pipeline.

    Returns a JSON-ready report: per-mode mean OR/CR/ED/RT seconds per
    query, ``speedup_ed_rt`` (sequential ED+RT over batched ED+RT), and
    the equivalence audit (``rankings_identical``,
    ``max_abs_log_prob_delta``).
    """
    generator = ensure_rng(seed)
    bundle = scale.dataset(dataset, rng=derive_rng(generator, dataset))
    pipeline = build_pipeline(
        bundle,
        model_config=scale.model_config(),
        training_config=scale.training_config(),
        cbow_config=scale.cbow_config(),
        rng=derive_rng(generator, dataset, "pipeline"),
    )
    batched = pipeline.linker
    assert batched.config.batch_phase2, "default linker must be batched"
    sequential = NeuralConceptLinker(
        pipeline.model,
        bundle.ontology,
        replace(batched.config, batch_phase2=False),
        kb=bundle.kb,
        word_vectors=pipeline.word_vectors,
    )
    queries = [query.text for query in bundle.queries[:queries_per_point]]
    linkers = {"sequential": sequential, "batched": batched}
    timings: Dict[str, Dict[str, float]] = {}
    results: Dict[str, list] = {}
    for mode, linker in linkers.items():
        linker.warm_cache()  # steady-state encoder caches, like Fig. 11
        outcomes = [linker.link(query, k=k) for query in queries]
        timings[mode] = _mean_breakdown([item.timing for item in outcomes])
        results[mode] = outcomes

    max_delta = 0.0
    rankings_identical = True
    for left, right in zip(results["sequential"], results["batched"]):
        if [c.cid for c in left.ranked] != [c.cid for c in right.ranked]:
            rankings_identical = False
        for a, b in zip(left.ranked, right.ranked):
            if a.cid == b.cid:
                max_delta = max(max_delta, abs(a.log_prob - b.log_prob))

    speedup = timings["sequential"]["ed_rt"] / max(
        timings["batched"]["ed_rt"], 1e-12
    )
    report: Dict[str, object] = {
        "dataset": dataset,
        "scale": scale.name,
        "seed": seed,
        "k": k,
        "queries": len(queries),
        "sequential": timings["sequential"],
        "batched": timings["batched"],
        "speedup_ed_rt": speedup,
        "speedup_total": timings["sequential"]["total"]
        / max(timings["batched"]["total"], 1e-12),
        "rankings_identical": rankings_identical,
        "max_abs_log_prob_delta": max_delta,
    }
    if verbose:
        rows = [
            [mode]
            + [round(timings[mode][phase] * 1e3, 3) for phase in PHASES]
            + [round(timings[mode]["total"] * 1e3, 3)]
            for mode in ("sequential", "batched")
        ]
        emit(
            format_table(
                ["mode"] + [f"{p} (ms)" for p in PHASES] + ["total (ms)"],
                rows,
                title=(
                    f"Phase-II batching, {dataset} k={k} "
                    f"(ED+RT speedup {speedup:.2f}x)"
                ),
            )
        )
    return report
