"""Figure 5 — parameter tuning: k (5a) and β (5b).

5(a): vary the Phase-I candidate count k; report average coverage
('Cov') and accuracy ('Acc') over both datasets.  Expected shape: Cov
grows monotonically with k; Acc peaks around the default k and then
slightly drops as extra irrelevant candidates leak into Phase II.

5(b): vary the structural-context path length β; accuracy peaks at
β = 2 and declines beyond, because ICD ontologies are shallow and
padding duplicates top-level concepts without adding information.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.eval.experiments.scale import DEFAULT, ExperimentScale
from repro.eval.harness import build_pipeline, evaluate_ranker, linker_ranker
from repro.eval.metrics import coverage, top1_accuracy
from repro.eval.reporting import emit, format_series
from repro.utils.rng import derive_rng, ensure_rng

K_GRID = (10, 20, 30, 40, 50)
BETA_GRID = (1, 2, 3, 4)
DATASETS = ("hospital-x-like", "mimic-iii-like")


def run_vary_k(
    scale: ExperimentScale = DEFAULT,
    seed: int = 2018,
    k_grid: Sequence[int] = K_GRID,
    verbose: bool = True,
) -> Dict[str, List[float]]:
    """Figure 5(a): average Cov and Acc across both datasets per k."""
    generator = ensure_rng(seed)
    coverage_per_k = {k: [] for k in k_grid}
    accuracy_per_k = {k: [] for k in k_grid}
    for name in DATASETS:
        dataset = scale.dataset(name, rng=derive_rng(generator, name))
        pipeline = build_pipeline(
            dataset,
            model_config=scale.model_config(),
            training_config=scale.training_config(),
            cbow_config=scale.cbow_config(),
            rng=derive_rng(generator, name, "pipeline"),
        )
        queries = dataset.queries[: scale.eval_queries]
        gold = [query.cid for query in queries]
        for k in k_grid:
            ranked_lists = [
                [c.cid for c in pipeline.linker.link(query.text, k=k).ranked]
                for query in queries
            ]
            coverage_per_k[k].append(coverage(ranked_lists, gold))
            accuracy_per_k[k].append(top1_accuracy(ranked_lists, gold))
    results = {
        "k": list(k_grid),
        "cov": [sum(values) / len(values) for values in coverage_per_k.values()],
        "acc": [sum(values) / len(values) for values in accuracy_per_k.values()],
    }
    if verbose:
        emit(format_series("Fig5a Cov", results["k"], results["cov"], "k"))
        emit(format_series("Fig5a Acc", results["k"], results["acc"], "k"))
    return results


def run_vary_beta(
    scale: ExperimentScale = DEFAULT,
    seed: int = 2018,
    beta_grid: Sequence[int] = BETA_GRID,
    datasets: Sequence[str] = DATASETS,
    verbose: bool = True,
) -> Dict[str, Dict[str, List[float]]]:
    """Figure 5(b): accuracy per β, per dataset (one training per β)."""
    generator = ensure_rng(seed)
    results: Dict[str, Dict[str, List[float]]] = {}
    for name in datasets:
        dataset = scale.dataset(name, rng=derive_rng(generator, name))
        # Pre-training does not depend on β; reuse one vector set.
        from repro.embeddings.pretrain import pretrain_word_vectors

        vectors = pretrain_word_vectors(
            dataset.corpus,
            scale.cbow_config(),
            rng=derive_rng(generator, name, "cbow"),
        )
        accuracies: List[float] = []
        for beta in beta_grid:
            pipeline = build_pipeline(
                dataset,
                model_config=scale.model_config(beta=beta),
                training_config=scale.training_config(),
                word_vectors=vectors,
                rng=derive_rng(generator, name, "pipeline"),
            )
            outcome = evaluate_ranker(
                f"NCL(beta={beta})",
                linker_ranker(pipeline.linker),
                dataset.queries[: scale.eval_queries],
            )
            accuracies.append(outcome.accuracy)
        results[name] = {"beta": list(beta_grid), "acc": accuracies}
        if verbose:
            emit(format_series(f"Fig5b {name}", beta_grid, accuracies, "beta"))
    return results
