"""Figure 8 — effect of pre-training.

Compares the full pipeline against COM-AID⁻o1 (no pre-training: random
embedding initialisation, and no embedding-assisted query rewriting)
across the hidden-dimension grid on both datasets.

Expected shape: accuracy grows with d up to the grid's knee for both;
the pre-trained model stays above the non-pre-trained one at every d
with a gap ≳0.1 (ours is larger — with a small corpus, pre-training
carries relatively more of the signal).

An extra series isolates the *injection* component: pre-training with
plain CBOW (no concept-id injection) sits between the two, showing the
alteration itself matters and not just having embeddings.

Like the architecture study, this evaluates with
``remove_shared_words=False`` so rankings reflect the trained
translation probabilities rather than the shared-word shortcut.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.eval.experiments.scale import SMALL, ExperimentScale
from repro.eval.harness import build_pipeline, evaluate_ranker, linker_ranker
from repro.eval.reporting import emit, format_series
from repro.utils.rng import derive_rng, ensure_rng

DATASETS = ("hospital-x-like", "mimic-iii-like")

SERIES = (
    ("COM-AID", dict(pretrain=True, inject=True)),
    ("COM-AID-o1", dict(pretrain=False, inject=True)),
    ("COM-AID-plain", dict(pretrain=True, inject=False)),
)


def run(
    scale: ExperimentScale = SMALL,
    seed: int = 2018,
    datasets: Sequence[str] = DATASETS,
    dim_grid: Sequence[int] = (),
    include_plain: bool = True,
    verbose: bool = True,
) -> Dict[str, Dict[str, Dict[str, List[float]]]]:
    """Returns ``{dataset: {series: {"d": [...], "acc": [...]}}}``."""
    dims = list(dim_grid) if dim_grid else list(scale.dim_grid)
    generator = ensure_rng(seed)
    series = [
        (name, flags)
        for name, flags in SERIES
        if include_plain or name != "COM-AID-plain"
    ]
    results: Dict[str, Dict[str, Dict[str, List[float]]]] = {}
    for name in datasets:
        dataset = scale.dataset(name, rng=derive_rng(generator, name))
        per_series: Dict[str, Dict[str, List[float]]] = {
            series_name: {"d": list(dims), "acc": []} for series_name, _ in series
        }
        for dim in dims:
            # The injected pre-training is shared by the COM-AID series;
            # the plain series pre-trains its own (inject=False), the
            # -o1 series none at all.
            from repro.embeddings.pretrain import pretrain_word_vectors

            injected_vectors = pretrain_word_vectors(
                dataset.corpus,
                scale.cbow_config(dim=dim),
                rng=derive_rng(generator, name, "cbow", str(dim)),
            )
            for series_name, flags in series:
                vectors = None
                if flags["pretrain"] and flags["inject"]:
                    vectors = injected_vectors
                pipeline = build_pipeline(
                    dataset,
                    model_config=scale.model_config(dim=dim),
                    training_config=scale.training_config(),
                    linker_config=scale.linker_config(
                        remove_shared_words=False
                    ),
                    cbow_config=scale.cbow_config(dim=dim),
                    word_vectors=vectors,
                    rng=derive_rng(generator, name, "pipeline"),
                    **flags,
                )
                outcome = evaluate_ranker(
                    series_name,
                    linker_ranker(pipeline.linker),
                    dataset.queries[: scale.eval_queries],
                )
                per_series[series_name]["acc"].append(outcome.accuracy)
        results[name] = per_series
        if verbose:
            for series_name, data in per_series.items():
                emit(
                    format_series(
                        f"Fig8 {name} {series_name}", dims, data["acc"], "d"
                    )
                )
    return results


def pretraining_gap(
    results: Dict[str, Dict[str, Dict[str, List[float]]]]
) -> float:
    """Mean accuracy gap (pre-trained minus not) across datasets and d."""
    gaps: List[float] = []
    for per_series in results.values():
        full = per_series["COM-AID"]["acc"]
        ablated = per_series["COM-AID-o1"]["acc"]
        gaps.extend(f - a for f, a in zip(full, ablated))
    return sum(gaps) / len(gaps)
