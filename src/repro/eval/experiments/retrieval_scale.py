"""Retrieval-at-scale benchmark — sublinear indexes vs the exact scan.

The paper's Phase I retrieves candidates with an exact TF-IDF scan,
which is linear in matching postings and becomes the CR bottleneck once
the ontology outgrows ICD (Section 7 runs ~40k concepts; production
vocabularies pass 100k).  This runner measures the retrieval subsystem
(:mod:`repro.retrieval`) against that baseline on the synthetic 100k
fine-grained ontology from ``large-scale-like``:

* ``exact``  — :class:`~repro.text.tfidf.TfIdfIndex.search`, the
  pure-Python posting scan every prior experiment used;
* ``sparse`` — :class:`~repro.retrieval.inverted.InvertedIndex`,
  vectorised postings, bit-identical results (audited per query);
* ``dense``  — :class:`~repro.retrieval.ann.DenseIndex` IVF probe over
  bag-of-hashed-words document embeddings;
* ``hybrid`` — :class:`~repro.retrieval.hybrid.HybridRetriever` fusing
  both pools, the mode the scale gate targets.

Dense vectors come from a deterministic hashed-bag featurizer rather
than a trained encoder: encoding 100k concepts through COM-AID is a
training-scale job, and the quantity under test is index-structure cost
and recall, not embedding quality.  Recall@k is measured against the
exact scan's top-k, so the gate (``benchmarks/test_retrieval.py``)
asserts the honest trade: ``hybrid`` must keep >= 0.98 of the exact
candidates while cutting CR p50 by >= 5x.
"""

from __future__ import annotations

import os
import statistics
import time
import zlib
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.generator import build_large_scale_ontology, generate_queries
from repro.eval.reporting import emit, format_table
from repro.retrieval.ann import DenseIndex
from repro.retrieval.hybrid import HybridRetriever
from repro.retrieval.inverted import InvertedIndex
from repro.text.tfidf import TfIdfIndex
from repro.text.tokenize import tokenize
from repro.utils.rng import derive_rng, ensure_rng

MODES = ("exact", "sparse", "dense", "hybrid")


def hash_featurizer(dim: int = 32) -> Callable[[Sequence[str]], Optional[np.ndarray]]:
    """Deterministic bag-of-hashed-words embedder with a token cache.

    Each token's vector is drawn once from a CRC32-seeded generator, so
    the embedding is stable across processes and correlated with token
    overlap — the regime a trained encoder provides — without putting a
    model on the 100k-concept path.  Returns ``None`` for queries that
    produce a zero vector (the retriever's sparse-fallback contract).
    """
    cache: Dict[str, np.ndarray] = {}

    def encode(tokens: Sequence[str]) -> Optional[np.ndarray]:
        vector = np.zeros(dim)
        for token in tokens:
            vec = cache.get(token)
            if vec is None:
                rng = np.random.default_rng(zlib.crc32(token.encode("utf-8")))
                vec = rng.normal(size=dim)
                cache[token] = vec
            vector += vec
        return vector if np.linalg.norm(vector) else None

    return encode


def _timed(
    search: Callable[[Sequence[str]], List],
    queries: Sequence[Sequence[str]],
) -> Dict[str, object]:
    latencies: List[float] = []
    results: List[List] = []
    for tokens in queries:
        start = time.perf_counter()
        hits = search(tokens)
        latencies.append(time.perf_counter() - start)
        results.append(hits)
    return {
        "p50_ms": statistics.median(latencies) * 1e3,
        "mean_ms": statistics.fmean(latencies) * 1e3,
        "results": results,
    }


def run_retrieval_scale(
    scale: object = "large",
    seed: int = 2018,
    k: int = 64,
    query_count: int = 128,
    dim: int = 32,
    nprobe: int = 8,
    fusion_weight: float = 0.95,
    fusion_method: str = "rrf",
    index_seed: int = 0,
    verbose: bool = True,
) -> Dict[str, object]:
    """Exact vs sparse/dense/hybrid retrieval over the 100k ontology.

    Returns a JSON-ready report: per-mode CR p50/mean latency and
    recall@``k`` against the exact scan, ``speedup_p50`` ratios, the
    per-query ``sparse_identical`` audit, and build-time accounting.
    ``scale`` takes a ``SCALE_LEAF_TARGETS`` name or a leaf count.
    """
    generator = ensure_rng(seed)
    timer = time.perf_counter
    build_seconds: Dict[str, float] = {}

    start = timer()
    ontology = build_large_scale_ontology(
        scale, rng=derive_rng(generator, "retrieval-scale", "ontology")
    )
    build_seconds["ontology"] = timer() - start
    documents = [(c.cid, list(c.words)) for c in ontology.fine_grained()]

    start = timer()
    exact = TfIdfIndex().fit(documents)
    build_seconds["exact_fit"] = timer() - start
    start = timer()
    sparse = InvertedIndex.from_tfidf(exact)
    build_seconds["sparse_build"] = timer() - start

    encode = hash_featurizer(dim)
    start = timer()
    vectors = np.stack([encode(tokens) for _, tokens in documents])
    build_seconds["vectors"] = timer() - start
    start = timer()
    dense = DenseIndex.train(vectors, seed=index_seed)
    build_seconds["dense_train"] = timer() - start

    retriever = HybridRetriever(
        sparse,
        dense,
        encode,
        nprobe=nprobe,
        fusion_weight=fusion_weight,
        fusion_method=fusion_method,
    )

    linked = generate_queries(
        ontology,
        query_count,
        rng=derive_rng(generator, "retrieval-scale", "queries"),
    )
    queries = [tokenize(query.text) for query in linked]

    searches: Dict[str, Callable[[Sequence[str]], List]] = {
        "exact": lambda tokens: exact.search(tokens, k=k),
        "sparse": lambda tokens: retriever.search(tokens, k, mode="sparse"),
        "dense": lambda tokens: retriever.search(tokens, k, mode="dense"),
        "hybrid": lambda tokens: retriever.search(tokens, k, mode="hybrid"),
    }
    timings: Dict[str, Dict[str, object]] = {}
    for mode in MODES:
        timings[mode] = _timed(searches[mode], queries)

    truth = [
        {hit.key for hit in hits} for hits in timings["exact"]["results"]
    ]
    sparse_identical = all(
        fast == slow
        for fast, slow in zip(
            timings["sparse"]["results"], timings["exact"]["results"]
        )
    )
    modes: Dict[str, Dict[str, float]] = {}
    for mode in MODES:
        found = timings[mode]["results"]
        overlap = sum(
            len(expected & {hit.key for hit in hits})
            for expected, hits in zip(truth, found)
        )
        total = sum(len(expected) for expected in truth)
        modes[mode] = {
            "p50_ms": timings[mode]["p50_ms"],
            "mean_ms": timings[mode]["mean_ms"],
            "recall_at_k": overlap / total if total else 0.0,
        }

    exact_p50 = modes["exact"]["p50_ms"]
    report: Dict[str, object] = {
        "dataset": "large-scale-like",
        "scale": scale,
        "seed": seed,
        "k": k,
        "queries": len(queries),
        "dim": dim,
        "nprobe": nprobe,
        "fusion_weight": fusion_weight,
        "fusion_method": fusion_method,
        "cpu_count": os.cpu_count(),
        "concepts": len(documents),
        "n_clusters": dense.n_clusters,
        "modes": modes,
        "speedup_p50": {
            mode: exact_p50 / max(modes[mode]["p50_ms"], 1e-9)
            for mode in MODES
            if mode != "exact"
        },
        "sparse_identical": sparse_identical,
        "build_seconds": build_seconds,
    }
    if verbose:
        rows = [
            [
                mode,
                round(modes[mode]["p50_ms"], 3),
                round(modes[mode]["mean_ms"], 3),
                round(modes[mode]["recall_at_k"], 4),
                "-" if mode == "exact"
                else round(report["speedup_p50"][mode], 1),
            ]
            for mode in MODES
        ]
        emit(
            format_table(
                ["mode", "p50 (ms)", "mean (ms)", f"recall@{k}", "speedup"],
                rows,
                title=(
                    f"Retrieval at scale, {len(documents)} concepts k={k} "
                    f"({fusion_method}, w={fusion_weight}, nprobe={nprobe})"
                ),
            )
        )
    return report
