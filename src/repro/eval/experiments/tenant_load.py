"""Multi-tenant serving load benchmark — routing overhead and isolation.

Two tenants (a ``hospital-x-like`` pipeline and a ``snomed-like``
counterpart) serve from one process behind the
:class:`~repro.tenancy.service.MultiTenantLinkingService`.  The
question the benchmark answers: what does the tenant layer — name
resolution, quota admission, registry LRU bookkeeping, per-tenant
metric partitions — cost on the hot path, and does any tenant's
traffic fail under mixed load?

Design:

* **Baseline** — one dedicated :class:`LinkingService` per tenant,
  both driven concurrently by the same closed-loop client mix.  The
  baseline pays identical CPU contention (same thread count, same
  process), so the difference to the multi-tenant run isolates the
  routing layer rather than scheduling noise.
* **Multi-tenant** — the same client mix routed through one
  :class:`MultiTenantLinkingService` over both tenants.
* **Paired passes** — the two modes are measured back-to-back per
  pass (after a warm-up pass that fills every encoding cache), and
  the headline ``overhead_p50_pct`` is the *median* of the per-pass
  paired overheads — a transient stall in one pass moves one sample,
  not the estimate, which a single-pass difference would absorb.

``availability`` is the minimum across tenants and passes of the
multi-tenant run's per-tenant availability; the benchmark gates it at
1.0 unconditionally (every request served or explicitly refused —
nothing hung, nothing silently dropped).
"""

from __future__ import annotations

import os
import statistics
import threading
import time
from typing import Any, Callable, Dict, List, Sequence

from repro.core.config import (
    LinkerConfig,
    ServingConfig,
    TenancyConfig,
    TenantConfig,
)
from repro.core.linker import NeuralConceptLinker
from repro.eval.experiments.scale import DEFAULT, ExperimentScale
from repro.eval.harness import build_pipeline
from repro.eval.reporting import emit, format_table
from repro.serving.service import LinkingService
from repro.tenancy import MultiTenantLinkingService, TenantRegistry
from repro.utils.rng import derive_rng, ensure_rng

#: tenant name -> dataset preset backing it.
TENANT_DATASETS = {"icd": "hospital-x-like", "sct": "snomed-like"}


def _percentile(samples: Sequence[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


class _ClientStats:
    """One closed-loop client's tally (merged after join)."""

    __slots__ = ("ok", "failed", "latencies")

    def __init__(self) -> None:
        self.ok = 0
        self.failed = 0
        self.latencies: List[float] = []


def _drive_mixed(
    link: Callable[[str, str], Any],
    tenant_queries: Dict[str, Sequence[str]],
    clients_per_tenant: int,
    duration_s: float,
) -> Dict[str, Dict[str, float]]:
    """Closed-loop mixed-tenant load; returns per-tenant stats.

    ``link(tenant, query)`` is the dispatch under test — either a
    dedicated service per tenant or the multi-tenant router.
    """
    tenants = sorted(tenant_queries)
    plan = [
        (tenant, index)
        for tenant in tenants
        for index in range(clients_per_tenant)
    ]
    tallies = {
        (tenant, index): _ClientStats() for tenant, index in plan
    }
    barrier = threading.Barrier(len(plan))
    stop_at = [0.0]

    def client(tenant: str, index: int) -> None:
        stats = tallies[(tenant, index)]
        queries = tenant_queries[tenant]
        cursor = index
        barrier.wait(timeout=30.0)
        while time.monotonic() < stop_at[0]:
            query = queries[cursor % len(queries)]
            cursor += clients_per_tenant
            started = time.perf_counter()
            try:
                link(tenant, query)
            except Exception:  # noqa: BLE001 - tallied as unavailability
                stats.failed += 1
            else:
                stats.ok += 1
                stats.latencies.append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=client, args=pair, daemon=True)
        for pair in plan
    ]
    # The barrier releases all clients together; the clock starts just
    # before the last thread launches so every client sees the window.
    stop_at[0] = time.monotonic() + duration_s + 0.5
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    report: Dict[str, Dict[str, float]] = {}
    for tenant in tenants:
        stats = [tallies[(tenant, i)] for i in range(clients_per_tenant)]
        ok = sum(s.ok for s in stats)
        failed = sum(s.failed for s in stats)
        issued = ok + failed
        latencies = [x for s in stats for x in s.latencies]
        report[tenant] = {
            "issued": issued,
            "served": ok,
            "failed": failed,
            "availability": ok / max(issued, 1),
            "qps": ok / max(duration_s, 1e-12),
            "latency_p50_s": _percentile(latencies, 0.50),
            "latency_p99_s": _percentile(latencies, 0.99),
        }
    return report


def _overall_p50(per_tenant: Dict[str, Dict[str, float]]) -> float:
    """Served-request-weighted p50 across tenants (seconds)."""
    total = sum(stats["served"] for stats in per_tenant.values())
    if total == 0:
        return 0.0
    return sum(
        stats["latency_p50_s"] * stats["served"]
        for stats in per_tenant.values()
    ) / total


def run_tenant_load(
    scale: ExperimentScale = DEFAULT,
    seed: int = 2018,
    k: int = 10,
    clients_per_tenant: int = 4,
    duration_s: float = 1.5,
    passes: int = 3,
    cache_budget: int = 4096,
    verbose: bool = True,
) -> Dict[str, object]:
    """Paired dedicated-vs-multi-tenant load; returns the JSON report.

    The report's gates: ``availability`` (min per-tenant availability
    of the multi-tenant runs; must be 1.0) and ``overhead_p50_pct``
    (median paired p50 overhead of routing; gated ≤ 10% by
    ``benchmarks/test_tenant_serving.py``).
    """
    generator = ensure_rng(seed)
    worlds: Dict[str, Any] = {}
    for tenant, dataset in sorted(TENANT_DATASETS.items()):
        bundle = scale.dataset(dataset, rng=derive_rng(generator, dataset))
        pipeline = build_pipeline(
            bundle,
            model_config=scale.model_config(),
            training_config=scale.training_config(),
            cbow_config=scale.cbow_config(),
            rng=derive_rng(generator, dataset, "pipeline"),
        )
        worlds[tenant] = (bundle, pipeline)

    tenant_queries = {
        tenant: [query.text for query in worlds[tenant][0].queries]
        for tenant in worlds
    }
    serving = ServingConfig(warm_on_start=False)
    linker_config = LinkerConfig(k=k, encoding_cache_size=cache_budget)

    # -- dedicated baseline: one service per tenant, same process.
    dedicated: Dict[str, LinkingService] = {}
    for tenant, (bundle, pipeline) in worlds.items():
        linker = NeuralConceptLinker(
            pipeline.model, bundle.ontology, linker_config, kb=bundle.kb,
            word_vectors=pipeline.word_vectors,
        )
        dedicated[tenant] = LinkingService(linker, serving).start()

    # -- multi-tenant: one router over both, via an in-memory loader.
    def loader(name: str, tenant: TenantConfig, config: LinkerConfig):
        bundle, pipeline = worlds[name]
        linker = NeuralConceptLinker(
            pipeline.model, bundle.ontology, config, kb=bundle.kb,
            word_vectors=pipeline.word_vectors,
        )
        return linker, bundle.kb

    registry = TenantRegistry(
        TenancyConfig(
            definitions={
                name: TenantConfig(cache_budget=cache_budget)
                for name in worlds
            },
            default=sorted(worlds)[0],
        ),
        serving=serving,
        linker_config=linker_config,
        loader=loader,
    )
    multi = MultiTenantLinkingService(registry).start()

    def link_dedicated(tenant: str, query: str) -> None:
        dedicated[tenant].link_many([query], k=k)

    def link_multi(tenant: str, query: str) -> None:
        multi.link_many([query], k=k, tenant=tenant)

    pass_reports: List[Dict[str, Any]] = []
    overheads: List[float] = []
    try:
        # Warm-up pass (not recorded): loads every tenant and fills
        # the encoding caches on both sides of the comparison.
        _drive_mixed(
            link_dedicated, tenant_queries, clients_per_tenant, 0.3
        )
        _drive_mixed(link_multi, tenant_queries, clients_per_tenant, 0.3)
        for _ in range(passes):
            base = _drive_mixed(
                link_dedicated, tenant_queries, clients_per_tenant,
                duration_s,
            )
            routed = _drive_mixed(
                link_multi, tenant_queries, clients_per_tenant, duration_s
            )
            base_p50 = _overall_p50(base)
            routed_p50 = _overall_p50(routed)
            overheads.append(
                (routed_p50 - base_p50) / max(base_p50, 1e-12) * 100.0
            )
            pass_reports.append({"dedicated": base, "multi_tenant": routed})
    finally:
        multi.stop()
        for service in dedicated.values():
            service.stop()

    availability = min(
        stats["availability"]
        for report in pass_reports
        for stats in report["multi_tenant"].values()
    )
    final = pass_reports[-1]
    report: Dict[str, object] = {
        "tenants": {
            name: TENANT_DATASETS[name] for name in sorted(worlds)
        },
        "scale": scale.name,
        "seed": seed,
        "k": k,
        "clients_per_tenant": clients_per_tenant,
        "duration_s": duration_s,
        "passes": passes,
        "cpu_count": os.cpu_count(),
        "modes": final,
        "per_pass_overhead_p50_pct": overheads,
        "overhead_p50_pct": statistics.median(overheads),
        "availability": availability,
    }
    if verbose:
        rows = []
        for mode in ("dedicated", "multi_tenant"):
            for tenant, stats in sorted(final[mode].items()):
                rows.append(
                    [
                        mode,
                        tenant,
                        int(stats["issued"]),
                        round(stats["qps"], 1),
                        round(stats["latency_p50_s"] * 1e3, 3),
                        round(stats["latency_p99_s"] * 1e3, 2),
                        round(stats["availability"], 4),
                    ]
                )
        emit(
            format_table(
                ["mode", "tenant", "issued", "qps", "p50 (ms)",
                 "p99 (ms)", "avail"],
                rows,
                title=(
                    f"Multi-tenant serving, {2 * clients_per_tenant} "
                    f"clients cpus={os.cpu_count()} (p50 overhead "
                    f"{report['overhead_p50_pct']:+.2f}%)"
                ),
            )
        )
    return report
