"""Figure 10 (Appendix A.2) — effect of expert feedback on the
learned representations.

The paper feeds three expert feedbacks (f1, f2, f3) one at a time,
retrains incrementally, and plots PCA projections of sampled concept
and word representations before/after each feedback, showing that

* representations shift after every feedback (the training data
  changed), and
* the *fed* concept's decode of its feedback text improves — the model
  absorbs the expert's implication.

This runner reproduces that protocol quantitatively: it reports, per
feedback step, the mean PCA-space displacement of tracked concept and
word representations, and the fed pair's loss before vs after.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.feedback import FeedbackController
from repro.eval.experiments.scale import SMALL, ExperimentScale
from repro.eval.harness import build_pipeline
from repro.eval.reporting import emit
from repro.ontology.paths import structural_context
from repro.text.tokenize import tokenize
from repro.utils.rng import derive_rng, ensure_rng


def pca_project(matrix: np.ndarray, components: int = 2) -> np.ndarray:
    """Project rows of ``matrix`` onto their top principal components."""
    centered = matrix - matrix.mean(axis=0, keepdims=True)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:components].T


@dataclass
class FeedbackStep:
    """Measurements for one feedback increment."""

    feedback_cid: str
    feedback_text: str
    loss_before: float
    loss_after: float
    concept_shift: float
    word_shift: float


def run(
    scale: ExperimentScale = SMALL,
    seed: int = 2018,
    dataset_name: str = "hospital-x-like",
    n_feedbacks: int = 3,
    retrain_epochs: int = 2,
    verbose: bool = True,
) -> Dict[str, object]:
    """Feed ``n_feedbacks`` expert labels one at a time, snapshotting.

    Feedback queries are drawn from held-out evaluation queries whose
    initial linking was wrong or uncertain — the queries Timon would
    pool.
    """
    generator = ensure_rng(seed)
    dataset = scale.dataset(dataset_name, rng=derive_rng(generator, dataset_name))
    pipeline = build_pipeline(
        dataset,
        model_config=scale.model_config(),
        training_config=scale.training_config(),
        cbow_config=scale.cbow_config(),
        rng=derive_rng(generator, "pipeline"),
    )
    model, trainer, linker = pipeline.model, pipeline.trainer, pipeline.linker

    controller = FeedbackController(
        dataset.kb,
        loss_threshold=8.0,
        std_threshold=0.25,
        retrain_after=10**9,  # we trigger retraining manually per step
    )
    # Pool uncertain/wrong queries as feedback candidates.
    candidates: List[Tuple[str, str]] = []
    for query in dataset.queries[: scale.eval_queries]:
        result = linker.link(query.text)
        top = result.top
        if top is None or top.cid != query.cid or controller.assess(result).uncertain:
            candidates.append((query.text, query.cid))
        if len(candidates) >= n_feedbacks:
            break
    if len(candidates) < n_feedbacks:
        raise RuntimeError(
            f"only {len(candidates)} uncertain queries available for feedback"
        )

    # Track the concepts and words around the first feedback's concept.
    tracked_cids = [cid for _, cid in candidates]
    siblings = dataset.ontology.children_of(
        dataset.ontology.parent_of(tracked_cids[0]).cid
    )
    tracked_cids.extend(
        concept.cid for concept in siblings if concept.cid not in tracked_cids
    )
    tracked_words = sorted(
        {
            word
            for _, cid in candidates
            for word in dataset.ontology.get(cid).words
            if word in model.vocab
        }
    )[:12]

    def concept_matrix() -> np.ndarray:
        rows = []
        for cid in tracked_cids:
            ids = model.words_to_ids(list(dataset.ontology.get(cid).words))
            rows.append(model.concept_representation(ids))
        return np.vstack(rows)

    def word_matrix() -> np.ndarray:
        ids = [model.vocab.id_of(word) for word in tracked_words]
        return model.embedding.weight.value[ids].copy()

    def pair_loss(text: str, cid: str) -> float:
        concept = dataset.ontology.get(cid)
        concept_ids = model.words_to_ids(list(concept.words))
        ancestors = [
            model.words_to_ids(list(c.words))
            for c in structural_context(
                dataset.ontology, cid, model.config.beta
            )[1:]
        ]
        query_ids = model.words_to_ids(tokenize(text))
        return model.pair_loss(concept_ids, ancestors, query_ids)

    steps: List[FeedbackStep] = []
    previous_concepts = concept_matrix()
    previous_words = word_matrix()
    for text, cid in candidates[:n_feedbacks]:
        loss_before = pair_loss(text, cid)
        pair = controller.resolve(text, cid)
        trainer.continue_training([pair], epochs=retrain_epochs)
        linker.invalidate_cache()
        loss_after = pair_loss(text, cid)

        current_concepts = concept_matrix()
        current_words = word_matrix()
        stacked = np.vstack([previous_concepts, current_concepts])
        projected = pca_project(stacked)
        half = len(tracked_cids)
        concept_shift = float(
            np.linalg.norm(projected[:half] - projected[half:], axis=1).mean()
        )
        stacked_words = np.vstack([previous_words, current_words])
        projected_words = pca_project(stacked_words)
        word_half = len(tracked_words)
        word_shift = float(
            np.linalg.norm(
                projected_words[:word_half] - projected_words[word_half:], axis=1
            ).mean()
        )
        steps.append(
            FeedbackStep(
                feedback_cid=cid,
                feedback_text=text,
                loss_before=loss_before,
                loss_after=loss_after,
                concept_shift=concept_shift,
                word_shift=word_shift,
            )
        )
        previous_concepts = current_concepts
        previous_words = current_words
        if verbose:
            emit(
                f"Fig10 feedback {len(steps)}: <{cid}, {text!r}> "
                f"loss {loss_before:.2f} -> {loss_after:.2f}, "
                f"concept shift {concept_shift:.4f}, word shift {word_shift:.4f}"
            )
    return {
        "steps": steps,
        "tracked_cids": tracked_cids,
        "tracked_words": tracked_words,
    }
