"""Figure 12 (Appendix B.2) — offline training time analysis.

12(a): word-embedding pre-training seconds as the unlabeled corpus
grows; 12(b): COM-AID refinement seconds as the labeled pair count
grows.  Expected shapes: pre-training is much cheaper than refinement;
both grow roughly linearly in their data size; hospital-x costs more
than MIMIC at equal fractions (more data, longer descriptions).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.trainer import ComAidTrainer
from repro.embeddings.pretrain import pretrain_word_vectors
from repro.eval.experiments.scale import SMALL, ExperimentScale
from repro.eval.reporting import emit, format_series
from repro.utils.rng import derive_rng, ensure_rng
from repro.utils.timing import Stopwatch

FRACTIONS = (0.25, 0.5, 0.75, 1.0)
DATASETS = ("hospital-x-like", "mimic-iii-like")


def run_pretraining_time(
    scale: ExperimentScale = SMALL,
    seed: int = 2018,
    fractions: Sequence[float] = FRACTIONS,
    datasets: Sequence[str] = DATASETS,
    verbose: bool = True,
) -> Dict[str, Dict[str, List[float]]]:
    """Figure 12(a): CBOW seconds vs unlabeled-corpus fraction."""
    generator = ensure_rng(seed)
    results: Dict[str, Dict[str, List[float]]] = {}
    for name in datasets:
        dataset = scale.dataset(name, rng=derive_rng(generator, name))
        seconds: List[float] = []
        sizes: List[int] = []
        for fraction in fractions:
            corpus = dataset.corpus.subsample(
                fraction, rng=derive_rng(generator, name, str(fraction))
            )
            watch = Stopwatch().start()
            pretrain_word_vectors(
                corpus,
                scale.cbow_config(),
                rng=derive_rng(generator, name, "cbow", str(fraction)),
            )
            seconds.append(watch.stop())
            sizes.append(len(corpus))
        results[name] = {
            "fraction": list(fractions),
            "snippets": sizes,
            "seconds": seconds,
        }
        if verbose:
            emit(
                format_series(
                    f"Fig12a {name} pretrain-seconds", fractions, seconds, "frac"
                )
            )
    return results


def run_refinement_time(
    scale: ExperimentScale = SMALL,
    seed: int = 2018,
    fractions: Sequence[float] = FRACTIONS,
    datasets: Sequence[str] = DATASETS,
    verbose: bool = True,
) -> Dict[str, Dict[str, List[float]]]:
    """Figure 12(b): COM-AID training seconds vs labeled-pair fraction."""
    generator = ensure_rng(seed)
    results: Dict[str, Dict[str, List[float]]] = {}
    for name in datasets:
        dataset = scale.dataset(name, rng=derive_rng(generator, name))
        all_pairs = dataset.kb.training_pairs()
        seconds: List[float] = []
        counts: List[int] = []
        for fraction in fractions:
            count = max(1, round(fraction * len(all_pairs)))
            pairs = all_pairs[:count]
            trainer = ComAidTrainer(
                scale.model_config(),
                scale.training_config(),
                rng=derive_rng(generator, name, "trainer", str(fraction)),
            )
            trainer.fit(dataset.kb, pairs=pairs)
            seconds.append(trainer.history.seconds)
            counts.append(count)
        results[name] = {
            "fraction": list(fractions),
            "pairs": counts,
            "seconds": seconds,
        }
        if verbose:
            emit(
                format_series(
                    f"Fig12b {name} refine-seconds", fractions, seconds, "frac"
                )
            )
    return results
