"""Tracing-overhead benchmark — what instrumentation costs when off.

The linker and serving path call :func:`repro.obs.trace.span` on every
request whether or not anyone is tracing; the design promise (and the
acceptance gate in ``BENCH_obs.json``) is that with sampling off those
call sites cost one ContextVar read each — ≤1% of p50 link latency.
:func:`run_obs_overhead` measures the single-process linker;
:func:`run_obs_overhead_mp` applies the same paired-difference design
to the multi-process tier, where sampling off must additionally keep
the worker pipes span-free (``trace_ids=None`` on the wire, no
worker-side tracer, no trace payload in replies).
The single-process runner measures three modes over the identical
query stream on one warmed pipeline:

* ``untraced``  — ``linker.link`` with no root span anywhere (the
  instrumented no-op fast path, today's floor);
* ``traced_off``  — each link wrapped in a root from a
  ``Tracer(sample_rate=0.0)``: the sampling decision runs and returns
  the no-op singleton (the serving path with tracing disabled);
* ``traced_on``  — ``sample_rate=1.0``: full span trees recorded into
  the ring buffer (the price of actually looking).

The true sampling-off cost (~a few µs) is far below this machine's
run-to-run jitter on a ~ms link call, so the headline number is a
*paired* estimate: every query is timed in all three modes
back-to-back (rotating which mode goes first) and the overhead is the
median of the per-pair differences ``traced_x − untraced``, which
cancels drift (CPU frequency, allocator state, scheduler) that a
difference of independently-measured p50s would absorb.  GC is paused
during timed regions.
"""

from __future__ import annotations

import gc
import statistics
import time
from typing import Dict, List

from repro.eval.experiments.scale import SMALL, ExperimentScale
from repro.eval.harness import build_pipeline
from repro.eval.reporting import emit, format_table
from repro.obs.trace import Tracer
from repro.utils.rng import derive_rng, ensure_rng

MODES = ("untraced", "traced_off", "traced_on")


def _timed_link_seconds(linker, query, k, tracer) -> float:
    if tracer is None:
        started = time.perf_counter()
        linker.link(query, k=k)
        return time.perf_counter() - started
    started = time.perf_counter()
    with tracer.start_trace("bench.link", query=query):
        linker.link(query, k=k)
    return time.perf_counter() - started


def run_obs_overhead(
    scale: ExperimentScale = SMALL,
    seed: int = 2018,
    k: int = 10,
    queries_per_trial: int = 60,
    trials: int = 8,
    dataset: str = "hospital-x-like",
    verbose: bool = True,
) -> Dict[str, object]:
    """Measure span-site overhead; returns the JSON-ready report.

    ``overhead_off_pct`` is the headline number: the median paired
    penalty of the sampling-off serving path over the untraced floor,
    as a percentage of p50 link latency.
    """
    generator = ensure_rng(seed)
    bundle = scale.dataset(dataset, rng=derive_rng(generator, dataset))
    pipeline = build_pipeline(
        bundle,
        model_config=scale.model_config(),
        training_config=scale.training_config(),
        cbow_config=scale.cbow_config(),
        rng=derive_rng(generator, dataset, "pipeline"),
    )
    linker = pipeline.linker
    linker.warm_cache()
    queries = [
        bundle.queries[index % len(bundle.queries)].text
        for index in range(queries_per_trial)
    ]
    tracer_off = Tracer(sample_rate=0.0, capacity=1)
    tracer_on = Tracer(sample_rate=1.0, capacity=8)
    tracers = {"untraced": None, "traced_off": tracer_off, "traced_on": tracer_on}

    # One untimed pass so first-touch costs (lazy caches, branch
    # warm-up) are paid before any mode is measured.
    for query in queries:
        linker.link(query, k=k)

    samples: Dict[str, List[float]] = {mode: [] for mode in MODES}
    diffs: Dict[str, List[float]] = {
        mode: [] for mode in MODES if mode != "untraced"
    }
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for trial in range(trials):
            for index, query in enumerate(queries):
                # Time all three modes back-to-back per query, rotating
                # which goes first, so each paired difference sees the
                # same instantaneous machine state.
                offset = (trial + index) % len(MODES)
                timed = {
                    mode: _timed_link_seconds(linker, query, k, tracers[mode])
                    for mode in MODES[offset:] + MODES[:offset]
                }
                for mode in MODES:
                    samples[mode].append(timed[mode])
                for mode in diffs:
                    diffs[mode].append(timed[mode] - timed["untraced"])
    finally:
        if gc_was_enabled:
            gc.enable()
    p50 = {mode: statistics.median(samples[mode]) for mode in MODES}
    floor = max(p50["untraced"], 1e-12)
    report: Dict[str, object] = {
        "dataset": dataset,
        "scale": scale.name,
        "seed": seed,
        "k": k,
        "queries_per_trial": len(queries),
        "trials": trials,
        "pairs": len(diffs["traced_off"]),
        "p50_ms": {mode: p50[mode] * 1e3 for mode in MODES},
        "overhead_off_pct": (
            statistics.median(diffs["traced_off"]) / floor * 100.0
        ),
        "overhead_on_pct": (
            statistics.median(diffs["traced_on"]) / floor * 100.0
        ),
        "traces_recorded": tracer_on.stats()["finished"],
    }
    if verbose:
        rows = [[mode, round(p50[mode] * 1e3, 4)] for mode in MODES]
        emit(
            format_table(
                ["mode", "p50 (ms)"],
                rows,
                title=(
                    f"Tracing overhead, {dataset} k={k} "
                    f"(off {report['overhead_off_pct']:+.2f}%, "
                    f"on {report['overhead_on_pct']:+.2f}%)"
                ),
            )
        )
    return report


def _timed_request_seconds(service, query, k, tracer) -> float:
    if tracer is None:
        started = time.perf_counter()
        service.link_many([query], k=k)
        return time.perf_counter() - started
    started = time.perf_counter()
    with tracer.start_trace("bench.request", query=query):
        service.link_many([query], k=k)
    return time.perf_counter() - started


def run_obs_overhead_mp(
    scale: ExperimentScale = SMALL,
    seed: int = 2018,
    k: int = 10,
    queries_per_trial: int = 30,
    trials: int = 4,
    workers: int = 2,
    dataset: str = "hospital-x-like",
    artifact_dir: str | None = None,
    verbose: bool = True,
) -> Dict[str, object]:
    """Paired span-site overhead on the multi-process serving tier.

    Same three modes and pairing discipline as :func:`run_obs_overhead`
    but each timed unit is a full front-end request through
    :class:`~repro.serving.service.ProcPoolLinkingService` — admission
    queue, fusion window, worker pipe round-trip, Phase-II decode in a
    forked worker.  ``traced_on`` additionally pays the cross-process
    trace transport (worker-side span recording, ``export_trace`` over
    the reply pipe, parent-side ``graft``); ``traced_off`` must not —
    the dispatcher sends ``trace_ids=None`` and workers never build a
    tracer.  ``overhead_off_pct`` is the gated headline.
    """
    import tempfile
    from dataclasses import replace

    from repro.core.config import ServingConfig
    from repro.core.linker import NeuralConceptLinker
    from repro.engine.compile import compile_artifact
    from repro.serving.service import ProcPoolLinkingService

    generator = ensure_rng(seed)
    bundle = scale.dataset(dataset, rng=derive_rng(generator, dataset))
    pipeline = build_pipeline(
        bundle,
        model_config=scale.model_config(),
        training_config=scale.training_config(),
        cbow_config=scale.cbow_config(),
        rng=derive_rng(generator, dataset, "pipeline"),
    )
    directory = artifact_dir or tempfile.mkdtemp(prefix="repro-obs-mp-")
    compile_artifact(
        directory,
        pipeline.model,
        bundle.ontology,
        kb=bundle.kb,
        index_aliases=pipeline.linker.config.index_aliases,
    )
    worker_linker = NeuralConceptLinker(
        pipeline.model,
        bundle.ontology,
        replace(
            pipeline.linker.config,
            artifact_dir=str(directory),
            mmap_artifact=True,
            fuse_phase2=True,
        ),
        kb=bundle.kb,
        word_vectors=pipeline.word_vectors,
    )
    queries = [
        bundle.queries[index % len(bundle.queries)].text
        for index in range(queries_per_trial)
    ]
    config = ServingConfig(workers=workers, warm_on_start=True)
    service = ProcPoolLinkingService(
        lambda: worker_linker, bundle.ontology, config
    )
    service.start(wait=True)
    tracer_off = Tracer(sample_rate=0.0, capacity=1)
    tracer_on = Tracer(sample_rate=1.0, capacity=8)
    tracers = {
        "untraced": None, "traced_off": tracer_off, "traced_on": tracer_on
    }
    samples: Dict[str, List[float]] = {mode: [] for mode in MODES}
    diffs: Dict[str, List[float]] = {
        mode: [] for mode in MODES if mode != "untraced"
    }
    gc_was_enabled = gc.isenabled()
    try:
        # Untimed warm-up: fork start-up, pipe buffers, worker-side
        # first-touch decode paths.
        for query in queries:
            service.link_many([query], k=k)
        gc.collect()
        gc.disable()
        try:
            for trial in range(trials):
                for index, query in enumerate(queries):
                    offset = (trial + index) % len(MODES)
                    timed = {
                        mode: _timed_request_seconds(
                            service, query, k, tracers[mode]
                        )
                        for mode in MODES[offset:] + MODES[:offset]
                    }
                    for mode in MODES:
                        samples[mode].append(timed[mode])
                    for mode in diffs:
                        diffs[mode].append(timed[mode] - timed["untraced"])
        finally:
            if gc_was_enabled:
                gc.enable()
    finally:
        service.stop()
    p50 = {mode: statistics.median(samples[mode]) for mode in MODES}
    floor = max(p50["untraced"], 1e-12)
    report: Dict[str, object] = {
        "dataset": dataset,
        "scale": scale.name,
        "seed": seed,
        "k": k,
        "workers": workers,
        "queries_per_trial": len(queries),
        "trials": trials,
        "pairs": len(diffs["traced_off"]),
        "p50_ms": {mode: p50[mode] * 1e3 for mode in MODES},
        "overhead_off_pct": (
            statistics.median(diffs["traced_off"]) / floor * 100.0
        ),
        "overhead_on_pct": (
            statistics.median(diffs["traced_on"]) / floor * 100.0
        ),
        "traces_recorded": tracer_on.stats()["finished"],
    }
    if verbose:
        rows = [[mode, round(p50[mode] * 1e3, 4)] for mode in MODES]
        emit(
            format_table(
                ["mode", "p50 (ms)"],
                rows,
                title=(
                    f"Tracing overhead (procpool), {dataset} "
                    f"workers={workers} "
                    f"(off {report['overhead_off_pct']:+.2f}%, "
                    f"on {report['overhead_on_pct']:+.2f}%)"
                ),
            )
        )
    return report
