"""Experiment scale presets."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.core.config import ComAidConfig, LinkerConfig, TrainingConfig
from repro.datasets.generator import (
    DatasetBundle,
    hospital_x_like,
    mimic_iii_like,
    snomed_like,
)
from repro.embeddings.cbow import CbowConfig
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by all experiments at one scale.

    ``dim`` is the bench-scale analogue of the paper's d=150 default;
    ``dim_grid`` is the analogue of Table 1's d ∈ {50, 100, 150, 200}.
    """

    name: str
    categories_per_family: int
    leaves_per_category: int
    query_count: int
    dim: int
    dim_grid: tuple
    cbow_epochs: int
    train_epochs: int
    eval_queries: int
    n_groups: int
    group_size: int
    purposive_size: int

    def dataset(self, name: str, rng: RngLike = 2018) -> DatasetBundle:
        """Build the named dataset at this scale."""
        builders = {
            "hospital-x-like": hospital_x_like,
            "mimic-iii-like": mimic_iii_like,
            "snomed-like": snomed_like,
        }
        try:
            builder = builders[name]
        except KeyError:
            known = ", ".join(sorted(builders))
            raise ValueError(f"unknown dataset {name!r}; known: {known}") from None
        return builder(
            rng=rng,
            categories_per_family=self.categories_per_family,
            leaves_per_category=self.leaves_per_category,
            query_count=self.query_count,
        )

    def cbow_config(self, dim: int = 0) -> CbowConfig:
        """CBOW configuration at this scale (``dim`` overrides)."""
        return CbowConfig(
            dim=dim or self.dim,
            window=4,
            epochs=self.cbow_epochs,
            negatives=10,
            learning_rate=0.05,
            subsample=3e-3,
        )

    def model_config(self, dim: int = 0, **overrides) -> ComAidConfig:
        """COM-AID configuration at this scale (``dim``/flag overrides)."""
        return ComAidConfig(dim=dim or self.dim, **overrides)

    def training_config(self, **overrides) -> TrainingConfig:
        """Refinement training configuration at this scale."""
        base = TrainingConfig(
            epochs=self.train_epochs,
            batch_size=8,
            optimizer="adagrad",
            learning_rate=0.1,
        )
        return replace(base, **overrides) if overrides else base

    def linker_config(self, **overrides) -> LinkerConfig:
        """Online-linker configuration at this scale."""
        return LinkerConfig(**overrides) if overrides else LinkerConfig()


#: Grid/ablation experiments: many trainings, small ontology (~100 leaves).
SMALL = ExperimentScale(
    name="small",
    categories_per_family=3,
    leaves_per_category=3,
    query_count=260,
    dim=24,
    dim_grid=(12, 24, 36),
    cbow_epochs=15,
    train_epochs=8,
    eval_queries=120,
    n_groups=5,
    group_size=80,
    purposive_size=16,
)

#: Headline experiments: one training, ~360-leaf ontology.
DEFAULT = ExperimentScale(
    name="default",
    categories_per_family=6,
    leaves_per_category=5,
    query_count=400,
    dim=24,
    dim_grid=(12, 24, 36),
    cbow_epochs=20,
    train_epochs=10,
    eval_queries=150,
    n_groups=10,
    group_size=120,
    purposive_size=24,
)

#: Smoke tests only.
TINY = ExperimentScale(
    name="tiny",
    categories_per_family=2,
    leaves_per_category=2,
    query_count=80,
    dim=12,
    dim_grid=(8, 12),
    cbow_epochs=6,
    train_epochs=4,
    eval_queries=40,
    n_groups=2,
    group_size=30,
    purposive_size=8,
)

PRESETS: Dict[str, ExperimentScale] = {
    scale.name: scale for scale in (SMALL, DEFAULT, TINY)
}
