"""Figure 11 (Appendix B.1) — online linking time analysis.

Decomposes per-query online linking time into the paper's four parts —
out-of-vocabulary replacement (OR), candidate retrieval (CR),
encode-decode (ED), ranking (RT) — and measures how the total and the
parts grow (a) with the candidate count k and (b) with query length
|q|.

Expected shapes: time grows with k (driven by ED — more candidates to
decode) sub-linearly once the keyword matcher runs out of matching
concepts; time grows with |q| (CR examines more postings, ED decodes
more words); hospital-x is slower than MIMIC because ICD-10-style
canonical descriptions are longer.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.config import LinkerConfig
from repro.eval.experiments.scale import DEFAULT, ExperimentScale
from repro.eval.harness import NclPipeline, build_pipeline
from repro.eval.reporting import emit, format_table
from repro.utils.rng import derive_rng, ensure_rng
from repro.utils.timing import TimingBreakdown

K_GRID = (10, 20, 30, 40, 50)
LENGTH_GRID = (1, 2, 3, 4, 5, 6)
PHASES = ("OR", "CR", "ED", "RT")
DATASETS = ("hospital-x-like", "mimic-iii-like")


def _mean_breakdown(breakdowns: Sequence[TimingBreakdown]) -> Dict[str, float]:
    totals: Dict[str, float] = {phase: 0.0 for phase in PHASES}
    for breakdown in breakdowns:
        for phase in PHASES:
            totals[phase] += breakdown.seconds.get(phase, 0.0)
    count = max(len(breakdowns), 1)
    means = {phase: totals[phase] / count for phase in PHASES}
    means["total"] = sum(means.values())
    return means


def _pipeline_for(
    scale: ExperimentScale, name: str, generator, batch_phase2: bool = True
) -> NclPipeline:
    dataset = scale.dataset(name, rng=derive_rng(generator, name))
    return build_pipeline(
        dataset,
        model_config=scale.model_config(),
        training_config=scale.training_config(),
        linker_config=LinkerConfig(batch_phase2=batch_phase2),
        cbow_config=scale.cbow_config(),
        rng=derive_rng(generator, name, "pipeline"),
    )


def run_vary_k(
    scale: ExperimentScale = DEFAULT,
    seed: int = 2018,
    k_grid: Sequence[int] = K_GRID,
    queries_per_point: int = 60,
    datasets: Sequence[str] = DATASETS,
    verbose: bool = True,
    batch_phase2: bool = True,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Figure 11(a,b): per-phase mean seconds per query, per k.

    ``batch_phase2=False`` reruns the figure on the sequential Phase-II
    reference path — the pre-batching cost model, kept for comparison
    (see ``phase2_batching.run_phase2_batching`` for the head-to-head).
    """
    generator = ensure_rng(seed)
    results: Dict[str, Dict[int, Dict[str, float]]] = {}
    for name in datasets:
        pipeline = _pipeline_for(scale, name, generator, batch_phase2)
        pipeline.linker.warm_cache()  # encoding cache is steady-state
        queries = pipeline.dataset.queries[:queries_per_point]
        per_k: Dict[int, Dict[str, float]] = {}
        for k in k_grid:
            breakdowns = [
                pipeline.linker.link(query.text, k=k).timing for query in queries
            ]
            per_k[k] = _mean_breakdown(breakdowns)
        results[name] = per_k
        if verbose:
            rows = [
                [k] + [round(per_k[k][phase] * 1e3, 3) for phase in PHASES]
                + [round(per_k[k]["total"] * 1e3, 3)]
                for k in k_grid
            ]
            emit(
                format_table(
                    ["k"] + [f"{p} (ms)" for p in PHASES] + ["total (ms)"],
                    rows,
                    title=f"Fig11(a/b) {name}",
                )
            )
    return results


def run_vary_query_length(
    scale: ExperimentScale = DEFAULT,
    seed: int = 2018,
    length_grid: Sequence[int] = LENGTH_GRID,
    queries_per_point: int = 40,
    datasets: Sequence[str] = DATASETS,
    verbose: bool = True,
    batch_phase2: bool = True,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Figure 11(c,d): per-phase mean seconds per query, per |q|.

    Queries of exactly |q| words are formed by truncating/filtering the
    evaluation queries.
    """
    generator = ensure_rng(seed)
    results: Dict[str, Dict[int, Dict[str, float]]] = {}
    for name in datasets:
        pipeline = _pipeline_for(scale, name, generator, batch_phase2)
        pipeline.linker.warm_cache()
        all_queries = pipeline.dataset.queries
        per_length: Dict[int, Dict[str, float]] = {}
        for length in length_grid:
            texts: List[str] = []
            for query in all_queries:
                words = query.text.split()
                if len(words) >= length:
                    texts.append(" ".join(words[:length]))
                if len(texts) >= queries_per_point:
                    break
            if not texts:
                continue
            breakdowns = [pipeline.linker.link(text).timing for text in texts]
            per_length[length] = _mean_breakdown(breakdowns)
        results[name] = per_length
        if verbose:
            rows = [
                [length]
                + [round(values[phase] * 1e3, 3) for phase in PHASES]
                + [round(values["total"] * 1e3, 3)]
                for length, values in per_length.items()
            ]
            emit(
                format_table(
                    ["|q|"] + [f"{p} (ms)" for p in PHASES] + ["total (ms)"],
                    rows,
                    title=f"Fig11(c/d) {name}",
                )
            )
    return results
