"""Quality metrics (paper Section 6.1).

* **top-1 accuracy** — fraction of queries whose referred concept is
  ranked first;
* **MRR** — mean reciprocal rank; per the paper, queries whose referred
  concept is absent from the returned list contribute 0 (their
  ``1/rank_i`` term is "ignored" but the query still counts in |Q|);
* **coverage** — fraction of queries whose referred concept appears
  anywhere in the Phase-I candidate list (the 'Cov' series of
  Figure 5(a)).
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def _rank_of(ranked_cids: Sequence[str], gold: str) -> Optional[int]:
    for position, cid in enumerate(ranked_cids, start=1):
        if cid == gold:
            return position
    return None


def top1_accuracy(
    ranked_lists: Sequence[Sequence[str]], gold_cids: Sequence[str]
) -> float:
    """Fraction of queries with the gold concept in first place."""
    if len(ranked_lists) != len(gold_cids):
        raise ValueError(
            f"{len(ranked_lists)} rankings vs {len(gold_cids)} gold labels"
        )
    if not gold_cids:
        raise ValueError("cannot compute accuracy over zero queries")
    hits = sum(
        1
        for ranked, gold in zip(ranked_lists, gold_cids)
        if ranked and ranked[0] == gold
    )
    return hits / len(gold_cids)


def mean_reciprocal_rank(
    ranked_lists: Sequence[Sequence[str]], gold_cids: Sequence[str]
) -> float:
    """MRR with absent-gold queries contributing zero."""
    if len(ranked_lists) != len(gold_cids):
        raise ValueError(
            f"{len(ranked_lists)} rankings vs {len(gold_cids)} gold labels"
        )
    if not gold_cids:
        raise ValueError("cannot compute MRR over zero queries")
    total = 0.0
    for ranked, gold in zip(ranked_lists, gold_cids):
        rank = _rank_of(ranked, gold)
        if rank is not None:
            total += 1.0 / rank
    return total / len(gold_cids)


def coverage(
    candidate_lists: Sequence[Sequence[str]], gold_cids: Sequence[str]
) -> float:
    """Fraction of queries whose gold concept was retrieved at all."""
    if len(candidate_lists) != len(gold_cids):
        raise ValueError(
            f"{len(candidate_lists)} candidate lists vs {len(gold_cids)} gold"
        )
    if not gold_cids:
        raise ValueError("cannot compute coverage over zero queries")
    hits = sum(
        1
        for candidates, gold in zip(candidate_lists, gold_cids)
        if gold in candidates
    )
    return hits / len(gold_cids)


def reciprocal_ranks(
    ranked_lists: Sequence[Sequence[str]], gold_cids: Sequence[str]
) -> List[float]:
    """Per-query reciprocal ranks (0 when absent), for variance analysis."""
    ranks = []
    for ranked, gold in zip(ranked_lists, gold_cids):
        rank = _rank_of(ranked, gold)
        ranks.append(1.0 / rank if rank is not None else 0.0)
    return ranks
