"""Evaluation harness: metrics, experiment runners, and reporting.

The experiment runners under :mod:`repro.eval.experiments` regenerate
every table and figure of the paper's evaluation (see DESIGN.md's
experiment index); :mod:`repro.eval.harness` provides the shared
pipeline-building and group-evaluation machinery they use.
"""

from repro.eval.harness import (
    EvaluationResult,
    NclPipeline,
    build_pipeline,
    evaluate_groups,
    evaluate_ranker,
    linker_ranker,
)
from repro.eval.metrics import coverage, mean_reciprocal_rank, top1_accuracy
from repro.eval.reporting import format_series, format_table, render_markdown_table

__all__ = [
    "EvaluationResult",
    "NclPipeline",
    "build_pipeline",
    "coverage",
    "evaluate_groups",
    "evaluate_ranker",
    "format_series",
    "format_table",
    "linker_ranker",
    "mean_reciprocal_rank",
    "render_markdown_table",
    "top1_accuracy",
]
