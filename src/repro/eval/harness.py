"""Shared experiment machinery.

:func:`build_pipeline` assembles the full NCL stack (pre-training →
COM-AID training → linker) from a dataset bundle with one call, using
the bench-scale defaults every experiment shares; the experiment
modules override exactly the knob they study.

:func:`evaluate_groups` applies the paper's group protocol (Section
6.1): metrics are computed per query group and averaged across groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.comaid import ComAid
from repro.core.config import ComAidConfig, LinkerConfig, TrainingConfig
from repro.core.linker import NeuralConceptLinker
from repro.core.trainer import ComAidTrainer
from repro.datasets.generator import DatasetBundle, LinkedQuery
from repro.datasets.splits import QueryGroup
from repro.embeddings.cbow import CbowConfig
from repro.embeddings.pretrain import pretrain_word_vectors
from repro.embeddings.similarity import WordVectors
from repro.eval.metrics import mean_reciprocal_rank, top1_accuracy
from repro.utils.rng import RngLike, derive_rng, ensure_rng
from repro.utils.timing import Stopwatch

#: ``ranker(query_text) -> ordered cids`` — the uniform interface the
#: harness evaluates (NCL and every baseline adapt to it).
Ranker = Callable[[str], List[str]]

#: Bench-scale defaults shared by the experiment modules.  The paper's
#: Table 1 defaults (k=20, β=2, d=150) are in ``core.config
#: .PAPER_DEFAULTS``; d is scaled down for CPU-only runs.
BENCH_DIM = 24
BENCH_CBOW = CbowConfig(
    dim=BENCH_DIM,
    window=4,
    epochs=20,
    negatives=10,
    learning_rate=0.05,
    subsample=3e-3,
)
BENCH_TRAINING = TrainingConfig(
    epochs=10, batch_size=8, optimizer="adagrad", learning_rate=0.1
)


@dataclass
class NclPipeline:
    """A fully assembled NCL stack over one dataset."""

    dataset: DatasetBundle
    word_vectors: Optional[WordVectors]
    trainer: ComAidTrainer
    model: ComAid
    linker: NeuralConceptLinker
    pretrain_seconds: float = 0.0

    def ranker(self) -> Ranker:
        """This pipeline's linker as a ``query -> ordered cids`` callable."""
        return linker_ranker(self.linker)


def build_pipeline(
    dataset: DatasetBundle,
    model_config: Optional[ComAidConfig] = None,
    training_config: Optional[TrainingConfig] = None,
    linker_config: Optional[LinkerConfig] = None,
    cbow_config: Optional[CbowConfig] = None,
    rng: RngLike = 5,
    pretrain: bool = True,
    inject: bool = True,
    word_vectors: Optional[WordVectors] = None,
) -> NclPipeline:
    """Pre-train, train, and wire up a linker for ``dataset``.

    ``pretrain=False`` reproduces COM-AID⁻o1 (random embedding
    initialisation *and* no embedding-based rewriting); ``inject=False``
    pre-trains without concept-id injection (plain CBOW control).
    Passing ``word_vectors`` skips pre-training and reuses the given
    vectors — grid experiments that only vary the refinement stage use
    this to avoid redundant CBOW runs.
    """
    generator = ensure_rng(rng)
    # Derive both child streams up front so the trainer stream is the
    # same whether pre-training runs or cached vectors are supplied.
    pretrain_rng = derive_rng(generator, "pretrain")
    trainer_rng = derive_rng(generator, "trainer")
    watch = Stopwatch().start()
    vectors: Optional[WordVectors] = word_vectors
    if pretrain and vectors is None:
        vectors = pretrain_word_vectors(
            dataset.corpus,
            cbow_config if cbow_config is not None else BENCH_CBOW,
            rng=pretrain_rng,
            inject=inject,
        )
    pretrain_seconds = watch.stop()
    trainer = ComAidTrainer(
        model_config if model_config is not None else ComAidConfig(dim=BENCH_DIM),
        training_config if training_config is not None else BENCH_TRAINING,
        rng=trainer_rng,
    )
    model = trainer.fit(dataset.kb, word_vectors=vectors)
    linker = NeuralConceptLinker(
        model,
        dataset.ontology,
        linker_config if linker_config is not None else LinkerConfig(),
        kb=dataset.kb,
        word_vectors=vectors,
    )
    return NclPipeline(
        dataset=dataset,
        word_vectors=vectors,
        trainer=trainer,
        model=model,
        linker=linker,
        pretrain_seconds=pretrain_seconds,
    )


def linker_ranker(linker: NeuralConceptLinker, k: Optional[int] = None) -> Ranker:
    """Adapt a :class:`NeuralConceptLinker` to the ranker interface."""

    def rank(query: str) -> List[str]:
        return [candidate.cid for candidate in linker.link(query, k=k).ranked]

    return rank


@dataclass
class EvaluationResult:
    """Accuracy/MRR of one method on one query set (or group average)."""

    method: str
    accuracy: float
    mrr: float
    per_group: List[Dict[str, float]] = field(default_factory=list)

    def as_row(self) -> List[object]:
        """``[method, accuracy, MRR]`` row for table rendering."""
        return [self.method, round(self.accuracy, 4), round(self.mrr, 4)]


def evaluate_ranker(
    method: str, ranker: Ranker, queries: Sequence[LinkedQuery]
) -> EvaluationResult:
    """Accuracy and MRR of ``ranker`` over ``queries``."""
    ranked_lists = [ranker(query.text) for query in queries]
    gold = [query.cid for query in queries]
    return EvaluationResult(
        method=method,
        accuracy=top1_accuracy(ranked_lists, gold),
        mrr=mean_reciprocal_rank(ranked_lists, gold),
    )


def evaluate_groups(
    method: str, ranker: Ranker, groups: Sequence[QueryGroup]
) -> EvaluationResult:
    """Group-averaged accuracy/MRR (the paper's reporting protocol).

    Rankings are computed once per distinct query text and reused
    across groups (groups share their purposive core by construction).
    """
    cache: Dict[str, List[str]] = {}
    per_group: List[Dict[str, float]] = []
    for group in groups:
        ranked_lists = []
        gold = []
        for query in group.queries:
            if query.text not in cache:
                cache[query.text] = ranker(query.text)
            ranked_lists.append(cache[query.text])
            gold.append(query.cid)
        per_group.append(
            {
                "accuracy": top1_accuracy(ranked_lists, gold),
                "mrr": mean_reciprocal_rank(ranked_lists, gold),
            }
        )
    if not per_group:
        raise ValueError("evaluate_groups needs at least one group")
    accuracy = sum(entry["accuracy"] for entry in per_group) / len(per_group)
    mrr = sum(entry["mrr"] for entry in per_group) / len(per_group)
    return EvaluationResult(
        method=method, accuracy=accuracy, mrr=mrr, per_group=per_group
    )
