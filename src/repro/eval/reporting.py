"""Plain-text table and series rendering for experiment output.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and diff-friendly.

Experiment code writes through :func:`emit` rather than bare ``print``:
the library keeps a single, greppable output seam (enforced by
``tools/check_no_print.py``) while the CLI remains the only place that
prints directly.
"""

from __future__ import annotations

import sys
from typing import List, Sequence


def emit(text: str = "") -> None:
    """Write one line of experiment output to stdout."""
    sys.stdout.write(text + "\n")


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table."""
    string_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in string_rows:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        lines.append("| " + " | ".join(_stringify(cell) for cell in row) + " |")
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object], x_label: str = "x"
) -> str:
    """One figure series as aligned (x, y) pairs."""
    if len(xs) != len(ys):
        raise ValueError(f"{len(xs)} x values but {len(ys)} y values")
    pairs = ", ".join(
        f"{_stringify(x)}={_stringify(y)}" for x, y in zip(xs, ys)
    )
    return f"{name} [{x_label}]: {pairs}"
