"""A tenant-routing façade over per-tenant :class:`LinkingService`\\ s.

:class:`MultiTenantLinkingService` duck-types the single-tenant
:class:`~repro.serving.service.LinkingService` surface the HTTP server
speaks (``ready``/``healthy``/``link_many``/``snapshot``/``stop``/
``tracer``/``metrics``), adding the tenant dimension: every request
resolves to a tenant through the :class:`TenantRegistry` (lazy load,
LRU evict), pays that tenant's quota, and runs on that tenant's
service — so caches, metrics, SLO windows, and micro-batches never mix
across tenants.

It also owns cross-ontology mapping: a :class:`ConceptMapper` per
(source, target) tenant pair, built lazily and cached, behind
:meth:`map_concept` (HTTP ``POST /v1/map``).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import ServingConfig
from repro.serving.metrics import MetricsRegistry
from repro.tenancy.errors import QuotaExceededError, UnknownTenantError
from repro.tenancy.mapper import ConceptMapper
from repro.tenancy.registry import TenantRegistry, TenantRuntime
from repro.utils.errors import DataError
from repro.utils.logging import get_logger

LOGGER = get_logger("tenancy.service")


class MultiTenantLinkingService:
    """Routes requests across the tenants of a :class:`TenantRegistry`.

    The façade itself is always *ready* once started: readiness of an
    individual tenant is established lazily on its first request (a
    cold tenant warms on demand; that is the point of lazy loading).
    ``metrics`` here is the **routing** registry — per-tenant request
    metrics live on each tenant's own registry and survive eviction.
    """

    #: Duck-typing marker the HTTP layer keys tenant features off.
    multi_tenant = True

    def __init__(
        self,
        registry: TenantRegistry,
        config: Optional[ServingConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.registry = registry
        self.config = config if config is not None else registry.serving
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = registry.tracer
        self._started_at: Optional[float] = None
        self._stopped = threading.Event()
        self._mappers: Dict[Tuple[str, str], ConceptMapper] = {}
        self._mapper_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self, wait: bool = False) -> "MultiTenantLinkingService":
        """Mark the façade serving; tenants load lazily per request."""
        if self._stopped.is_set():
            raise RuntimeError(
                "service was stopped; build a new MultiTenantLinkingService "
                "to restart"
            )
        if self._started_at is not None:
            raise RuntimeError("service already started")
        self._started_at = time.monotonic()
        return self

    def stop(self) -> None:
        """Drain and unload every tenant; idempotent."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self.registry.stop()

    @property
    def healthy(self) -> bool:
        return not self._stopped.is_set()

    @property
    def ready(self) -> bool:
        return self._started_at is not None and not self._stopped.is_set()

    @property
    def uptime_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    # -- tenant resolution ---------------------------------------------------

    def resolve_name(self, tenant: Optional[str] = None) -> str:
        """The declared tenant name a request maps to (or raises)."""
        return self.registry.resolve(tenant).name

    def ontology_for(self, tenant: Optional[str] = None):
        """The resolved tenant's ontology (loads the tenant)."""
        return self.registry.ontology_for(self.registry.resolve(tenant))

    @property
    def ontology(self):
        """The default tenant's ontology (loads it on first access)."""
        return self.ontology_for(None)

    def _admit(self, runtime: TenantRuntime) -> None:
        try:
            runtime.quota.admit()
        except QuotaExceededError:
            runtime.metrics.counter("quota_rejected").inc()
            self.metrics.counter("quota_rejected").inc()
            raise

    # -- request path --------------------------------------------------------

    def link(
        self,
        query: str,
        k: Optional[int] = None,
        timeout: Optional[float] = None,
        tenant: Optional[str] = None,
    ):
        """Link one query on the resolved tenant's service."""
        return self.link_many([query], k=k, timeout=timeout, tenant=tenant)[0]

    def link_many(
        self,
        queries: Sequence[str],
        k: Optional[int] = None,
        timeout: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> List[Any]:
        """Route one burst to its tenant's service.

        Admission order: resolve (404 ``unknown_tenant``), quota (429
        ``quota_exceeded``) — *before* the lazy load, so an over-quota
        tenant cannot force a load/evict cycle — then the tenant
        service's own burst admission (503 ``shed``).
        """
        if not self.ready:
            self.metrics.counter("requests_rejected").inc()
            from repro.serving.service import ServiceNotReadyError

            raise ServiceNotReadyError("multi-tenant service is not ready")
        try:
            runtime = self.registry.resolve(tenant)
        except UnknownTenantError:
            self.metrics.counter("unknown_tenant").inc()
            raise
        self._admit(runtime)
        self.metrics.counter("routed_requests").inc()
        service = self.registry.service_for(runtime)
        return service.link_many(queries, k=k, timeout=timeout)

    # -- cross-ontology mapping ---------------------------------------------

    def _mapper_for(
        self, source: TenantRuntime, target: TenantRuntime
    ) -> ConceptMapper:
        key = (source.name, target.name)
        with self._mapper_lock:
            mapper = self._mappers.get(key)
            if mapper is not None:
                return mapper
        # Build outside the lock-held fast path; loading both tenants
        # can be slow and must not serialise unrelated mappings.
        source_ontology = self.registry.ontology_for(source)
        target_ontology = self.registry.ontology_for(target)
        source_kb = self.registry.kb_for(source)
        target_kb = self.registry.kb_for(target)
        built = ConceptMapper(
            source_ontology,
            target_ontology,
            source_kb=source_kb,
            target_kb=target_kb,
        )
        with self._mapper_lock:
            return self._mappers.setdefault(key, built)

    def map_concept(
        self,
        source: Optional[str],
        target: Optional[str],
        query: Optional[str] = None,
        cid: Optional[str] = None,
        k: Optional[int] = None,
        limit: int = 5,
    ) -> Dict[str, Any]:
        """Link (or take) a source concept and project it into ``target``.

        Exactly one of ``query`` (linked through the source tenant's
        service, paying its quota) or ``cid`` (an already-linked source
        concept) must be given.  Returns a JSON-ready report with the
        linked source concept and the ranked cross-ontology mappings.
        """
        if (query is None) == (cid is None):
            raise DataError("provide exactly one of 'query' or 'cid'")
        source_runtime = self.registry.resolve(source)
        target_runtime = self.registry.resolve(target)
        if source_runtime is target_runtime:
            raise DataError(
                "source and target tenants must differ "
                f"(both resolve to {source_runtime.name!r})"
            )
        self.metrics.counter("map_requests").inc()
        mapper = self._mapper_for(source_runtime, target_runtime)
        linked: Optional[Dict[str, Any]] = None
        if query is not None:
            self._admit(source_runtime)
            service = self.registry.service_for(source_runtime)
            result = service.link_many([query], k=k)[0]
            if not result.ranked:
                return {
                    "source": source_runtime.name,
                    "target": target_runtime.name,
                    "linked": None,
                    "mappings": [],
                    "anchors": mapper.stats()["anchors"],
                }
            top = result.ranked[0]
            cid = top.cid
            linked = {
                "cid": top.cid,
                "description": mapper.source.get(top.cid).description,
                "degraded": result.degraded,
            }
        else:
            assert cid is not None
            try:
                concept = mapper.source.get(cid)
            except KeyError:
                raise DataError(
                    f"unknown concept {cid!r} in tenant "
                    f"{source_runtime.name!r}"
                ) from None
            linked = {
                "cid": concept.cid,
                "description": concept.description,
                "degraded": False,
            }
        mappings = mapper.project(cid, limit=limit)
        return {
            "source": source_runtime.name,
            "target": target_runtime.name,
            "linked": linked,
            "mappings": [mapping.to_json() for mapping in mappings],
            "anchors": mapper.stats()["anchors"],
        }

    # -- lifecycle targeting -------------------------------------------------

    def attach_lifecycle(
        self, controller: object, tenant: Optional[str] = None
    ) -> None:
        """Attach a lifecycle controller to one tenant's service.

        Loads the tenant if needed.  Eviction closes the controller
        with the service, so pin hot-swappable tenants with
        ``max_loaded``/budget headroom.
        """
        runtime = self.registry.resolve(tenant)
        self.registry.service_for(runtime).attach_lifecycle(controller)

    def lifecycle_for(self, tenant: Optional[str] = None) -> Optional[object]:
        """The tenant's attached controller, or ``None`` (no load)."""
        runtime = self.registry.resolve(tenant)
        if runtime.service is None:
            return None
        return runtime.service.lifecycle

    @property
    def lifecycle(self) -> Optional[object]:
        """The default tenant's controller when one is loaded+attached."""
        try:
            return self.lifecycle_for(None)
        except UnknownTenantError:
            return None

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Routing-level report plus the per-tenant registry view."""
        report: Dict[str, Any] = {
            "ready": self.ready,
            "healthy": self.healthy,
            "uptime_seconds": self.uptime_seconds,
            "multi_tenant": True,
            "config": {
                "max_batch_size": self.config.max_batch_size,
                "batch_wait_ms": self.config.batch_wait_ms,
                "request_timeout_s": self.config.request_timeout_s,
                "warm_on_start": self.config.warm_on_start,
                "admission_queue": self.config.admission_queue,
            },
        }
        report.update(self.metrics.snapshot())
        report["traces"] = self.tracer.stats()
        report["tenants"] = self.registry.snapshot()
        return report
