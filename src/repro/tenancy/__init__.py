"""Multi-tenant, multi-ontology serving.

One process, several vocabularies: declared tenants
(:class:`~repro.core.config.TenantConfig` under the ``tenants``
section of :class:`~repro.core.config.RuntimeConfig`) are lazily
loaded into per-tenant :class:`~repro.serving.service.LinkingService`
instances by the :class:`TenantRegistry` (LRU eviction under a global
memory budget), routed by :class:`MultiTenantLinkingService`, and
bridged by :class:`ConceptMapper` for cross-ontology projection.
"""

from repro.tenancy.errors import (
    QuotaExceededError,
    TenantError,
    UnknownTenantError,
)
from repro.tenancy.mapper import ConceptMapper, ConceptMapping
from repro.tenancy.registry import (
    QuotaWindow,
    TenantRegistry,
    TenantRuntime,
    pipeline_loader,
)
from repro.tenancy.service import MultiTenantLinkingService

__all__ = [
    "ConceptMapper",
    "ConceptMapping",
    "MultiTenantLinkingService",
    "QuotaExceededError",
    "QuotaWindow",
    "TenantError",
    "TenantRegistry",
    "TenantRuntime",
    "UnknownTenantError",
    "pipeline_loader",
]
