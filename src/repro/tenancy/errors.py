"""Errors raised by the multi-tenant serving layer.

Both derive from :class:`~repro.utils.errors.ReproError` so callers
catching the library base type keep working, but the HTTP layer maps
them to their own envelope codes (404 ``unknown_tenant`` and 429
``quota_exceeded``) *before* the generic :class:`ReproError` handler —
a routing failure must not surface as a 400.
"""

from __future__ import annotations

from repro.utils.errors import ReproError


class TenantError(ReproError):
    """Base class for tenant-routing failures."""


class UnknownTenantError(TenantError, LookupError):
    """The request named a tenant the registry does not know.

    Raised both for undeclared names and for tenant-less requests
    against a registry with no default tenant.
    """


class QuotaExceededError(TenantError, RuntimeError):
    """The tenant's rolling request quota is exhausted.

    Carries ``retry_after_s`` — the seconds until the oldest request in
    the window expires — so the HTTP layer can emit a ``Retry-After``
    header alongside the 429.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
