"""The tenant registry: lazy-loaded, LRU-evicted per-tenant services.

One process serves several ontologies at once.  Each *tenant* declared
in the ``tenants`` section of :class:`~repro.core.config.RuntimeConfig`
owns a linker (its own pipeline and/or compiled artifact), a
:class:`~repro.serving.service.LinkingService` with partitioned
encoding caches and SLO window, a :class:`MetricsRegistry` that
survives eviction, and an optional rolling request quota.

Loading is lazy: a tenant costs nothing until its first request, at
which point the registry loads its pipeline, builds a service, and —
when the loaded set would exceed ``max_loaded`` or
``memory_budget_mb`` — evicts the least recently used tenant first
(drained via ``service.stop()``, metrics retained, reloadable on the
next touch).
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.config import (
    LinkerConfig,
    ServingConfig,
    TenancyConfig,
    TenantConfig,
)
from repro.obs.trace import Tracer
from repro.serving.metrics import MetricsRegistry
from repro.serving.service import LinkingService
from repro.tenancy.errors import QuotaExceededError, UnknownTenantError
from repro.utils.logging import get_logger

LOGGER = get_logger("tenancy.registry")

#: ``loader(name, tenant_config, linker_config) -> (linker, kb)``.
#: The registry is agnostic to where linkers come from; the default is
#: :func:`pipeline_loader`, tests inject in-memory builders.
TenantLoader = Callable[[str, TenantConfig, LinkerConfig], Tuple[Any, Any]]

#: Quota window length.  ``quota_per_minute`` names the unit.
QUOTA_WINDOW_S = 60.0


def pipeline_loader(
    base_pipeline: Optional[str] = None, verify: bool = True
) -> TenantLoader:
    """The on-disk loader: each tenant from its saved pipeline.

    A tenant whose ``pipeline`` is empty falls back to
    ``base_pipeline`` — the ``repro serve --artifact NAME=DIR`` shape
    where every tenant shares one trained model but mounts its own
    compiled artifact.
    """

    def load(name: str, tenant: TenantConfig, config: LinkerConfig):
        from repro.core.persistence import load_pipeline
        from repro.utils.errors import ConfigurationError

        directory = tenant.pipeline or base_pipeline
        if not directory:
            raise ConfigurationError(
                f"tenant {name!r} declares no pipeline and the deployment "
                "has no base pipeline (--model) to fall back to"
            )
        _, _, kb, _, linker = load_pipeline(
            directory, linker_config=config, verify=verify
        )
        return linker, kb

    return load


class QuotaWindow:
    """A rolling-window request quota (thread-safe).

    Admits up to ``limit`` requests per ``window_s`` seconds; the
    window slides continuously (a deque of admission timestamps) rather
    than resetting on a boundary, so a burst cannot double-spend across
    a reset.  ``limit <= 0`` disables the quota.
    """

    def __init__(
        self,
        limit: int,
        window_s: float = QUOTA_WINDOW_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.limit = limit
        self.window_s = window_s
        self._clock = clock
        self._admitted: collections.deque = collections.deque()
        self._lock = threading.Lock()

    def admit(self) -> None:
        """Record one request, or raise :class:`QuotaExceededError`."""
        if self.limit <= 0:
            return
        now = self._clock()
        with self._lock:
            horizon = now - self.window_s
            while self._admitted and self._admitted[0] <= horizon:
                self._admitted.popleft()
            if len(self._admitted) >= self.limit:
                retry_after = max(
                    0.0, self._admitted[0] + self.window_s - now
                )
                raise QuotaExceededError(
                    f"quota of {self.limit} requests per "
                    f"{self.window_s:.0f}s exhausted",
                    retry_after_s=retry_after,
                )
            self._admitted.append(now)

    def snapshot(self) -> Dict[str, Any]:
        """Current window occupancy (expired admissions dropped)."""
        with self._lock:
            horizon = self._clock() - self.window_s
            while self._admitted and self._admitted[0] <= horizon:
                self._admitted.popleft()
            used = len(self._admitted)
        return {
            "limit": self.limit,
            "used": used,
            "window_s": self.window_s,
        }


class TenantRuntime:
    """Everything one tenant owns, loaded or not.

    The :class:`MetricsRegistry` and :class:`QuotaWindow` live here —
    not on the service — so eviction (which drops the service and its
    caches) never zeroes a tenant's counters or resets its quota.
    """

    def __init__(
        self,
        name: str,
        config: TenantConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = name
        self.config = config
        self.metrics = MetricsRegistry()
        self.quota = QuotaWindow(config.quota_per_minute, clock=clock)
        self.service: Optional[LinkingService] = None
        self.kb: Any = None
        self.cost_bytes: int = 0

    @property
    def loaded(self) -> bool:
        return self.service is not None

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready per-tenant report (loaded or not)."""
        info: Dict[str, Any] = {
            "loaded": self.loaded,
            "artifact_dir": self.config.artifact_dir,
            "retrieval_mode": self.config.retrieval_mode,
            "cache_budget": self.config.cache_budget,
            "cost_bytes": self.cost_bytes if self.loaded else 0,
            "quota": self.quota.snapshot(),
            "loads": self.metrics.counter("tenant_loads").value,
            "evictions": self.metrics.counter("tenant_evictions").value,
            "requests": self.metrics.counter("requests_total").value,
        }
        if self.loaded:
            assert self.service is not None
            info["slo"] = self.service.slo.snapshot()
            cache_stats = getattr(self.service.linker, "cache_stats", None)
            if callable(cache_stats):
                info["caches"] = {
                    stats.name: stats.as_dict() for stats in cache_stats()
                }
        return info


def _directory_bytes(path: Optional[str]) -> int:
    """Total size of the regular files under ``path`` (0 when absent).

    The registry accounts memory by on-disk footprint: a loaded
    format-3 artifact (mmap'd or heap-deserialised) and pipeline are
    both dominated by exactly these bytes.
    """
    if not path:
        return 0
    root = Path(path)
    if not root.exists():
        return 0
    return sum(
        entry.stat().st_size for entry in root.rglob("*") if entry.is_file()
    )


class TenantRegistry:
    """Declared tenants → lazily loaded per-tenant services.

    Thread-safe.  ``resolve`` maps a request's tenant name (or its
    absence) to a :class:`TenantRuntime`; ``service_for`` loads the
    tenant on first touch, refreshes LRU order, and evicts least
    recently used tenants while the loaded set exceeds ``max_loaded``
    or ``memory_budget_mb``.
    """

    def __init__(
        self,
        tenancy: TenancyConfig,
        serving: Optional[ServingConfig] = None,
        linker_config: Optional[LinkerConfig] = None,
        loader: Optional[TenantLoader] = None,
        tracer: Optional[Tracer] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.tenancy = tenancy
        self.serving = serving if serving is not None else ServingConfig()
        self.linker_config = (
            linker_config if linker_config is not None else LinkerConfig()
        )
        self._loader = loader if loader is not None else pipeline_loader()
        # One tracer across tenants: traces carry the tenant in their
        # root-span tags, and a shared ring keeps /v1/traces whole.
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(
                sample_rate=self.serving.trace_sample_rate,
                capacity=self.serving.trace_buffer,
            )
        )
        self._lock = threading.RLock()
        self._runtimes: Dict[str, TenantRuntime] = {
            name: TenantRuntime(name, config, clock=clock)
            for name, config in tenancy.definitions.items()
        }
        # Loaded tenants, least recently used first.
        self._lru: "collections.OrderedDict[str, TenantRuntime]" = (
            collections.OrderedDict()
        )
        self._stopped = False

    # -- naming --------------------------------------------------------------

    @property
    def names(self) -> List[str]:
        return sorted(self._runtimes)

    def resolve(self, tenant: Optional[str] = None) -> TenantRuntime:
        """The runtime for ``tenant`` (or the default when ``None``)."""
        if tenant is None or tenant == "":
            tenant = self.tenancy.default
            if not tenant:
                raise UnknownTenantError(
                    "no tenant named and the deployment declares no "
                    f"default; declared tenants: {self.names}"
                )
        runtime = self._runtimes.get(tenant)
        if runtime is None:
            raise UnknownTenantError(
                f"unknown tenant {tenant!r}; declared tenants: {self.names}"
            )
        return runtime

    # -- loading / eviction --------------------------------------------------

    def service_for(self, runtime: TenantRuntime) -> LinkingService:
        """The tenant's started service, loading it on first touch."""
        with self._lock:
            if self._stopped:
                raise RuntimeError("tenant registry is stopped")
            if runtime.service is not None:
                self._lru.move_to_end(runtime.name)
                return runtime.service
            self._load(runtime)
            self._lru[runtime.name] = runtime
            self._evict_to_budget(exclude=runtime.name)
            assert runtime.service is not None
            return runtime.service

    def _load(self, runtime: TenantRuntime) -> None:
        tenant = runtime.config
        linker_config = tenant.to_linker_config(self.linker_config)
        linker, kb = self._loader(runtime.name, tenant, linker_config)
        serving = replace(self.serving, warm_on_start=tenant.warm_on_load)
        service = LinkingService(
            linker,
            serving,
            metrics=runtime.metrics,
            tracer=self.tracer,
        )
        # Block on warm-up when requested: the tenant is already paying
        # a lazy-load stall, and warm_on_load exists to make the request
        # after it fast.
        service.start(wait=tenant.warm_on_load)
        runtime.service = service
        runtime.kb = kb
        runtime.cost_bytes = _directory_bytes(
            tenant.artifact_dir
        ) or _directory_bytes(tenant.pipeline)
        runtime.metrics.counter("tenant_loads").inc()
        LOGGER.info(
            "tenant %s loaded (%d bytes accounted)",
            runtime.name,
            runtime.cost_bytes,
        )

    def _evict_to_budget(self, exclude: str) -> None:
        """Drop LRU tenants until the loaded set fits the budgets."""
        budget_bytes = int(self.tenancy.memory_budget_mb * 1024 * 1024)
        while True:
            over_count = (
                self.tenancy.max_loaded > 0
                and len(self._lru) > self.tenancy.max_loaded
            )
            over_bytes = budget_bytes > 0 and (
                sum(r.cost_bytes for r in self._lru.values()) > budget_bytes
            )
            if not (over_count or over_bytes):
                return
            victim = next(
                (r for name, r in self._lru.items() if name != exclude),
                None,
            )
            if victim is None:
                # Only the tenant being served remains; a budget too
                # small for one tenant must not make it unservable.
                return
            self._evict(victim)

    def _evict(self, runtime: TenantRuntime) -> None:
        service = runtime.service
        if service is not None:
            service.stop()
        runtime.service = None
        runtime.kb = None
        runtime.cost_bytes = 0
        self._lru.pop(runtime.name, None)
        runtime.metrics.counter("tenant_evictions").inc()
        LOGGER.info("tenant %s evicted", runtime.name)

    # -- cross-ontology access ----------------------------------------------

    def ontology_for(self, runtime: TenantRuntime):
        """The tenant's ontology, loading the tenant if needed."""
        return self.service_for(runtime).ontology

    def kb_for(self, runtime: TenantRuntime):
        """The tenant's knowledge base (may be ``None``), loading it."""
        self.service_for(runtime)
        return runtime.kb

    # -- lifecycle -----------------------------------------------------------

    def loaded_names(self) -> List[str]:
        """Currently loaded tenants, least recently used first."""
        with self._lock:
            return list(self._lru)

    def snapshot(self) -> Dict[str, Any]:
        """Registry-level view: budgets, LRU order, per-tenant reports."""
        with self._lock:
            tenants = {
                name: runtime.snapshot()
                for name, runtime in sorted(self._runtimes.items())
            }
            return {
                "default": self.tenancy.default,
                "max_loaded": self.tenancy.max_loaded,
                "memory_budget_mb": self.tenancy.memory_budget_mb,
                "loaded": list(self._lru),
                "loaded_bytes": sum(
                    r.cost_bytes for r in self._lru.values()
                ),
                "tenants": tenants,
            }

    def stop(self) -> None:
        """Drain and drop every loaded tenant; the registry stays stopped."""
        with self._lock:
            self._stopped = True
            for runtime in list(self._lru.values()):
                self._evict(runtime)
