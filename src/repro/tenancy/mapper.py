"""Cross-ontology concept projection via shared-alias anchors.

Two tenants serve two vocabularies of the same clinical reality
(ICD-9 vs ICD-10 vs SNOMED-style).  The mapper projects a concept
linked in a *source* ontology onto the closest concepts of a *target*
ontology, without any trained alignment model, by combining three
signals (the MORE recipe from PAPERS.md, adapted to the paper's
alias-centric knowledge bases):

1. **Anchors** — concepts whose surface forms (canonical description
   or any KB alias, normalised) appear verbatim on both sides.  Shared
   aliases are exactly how real crosswalks manifest in alias-rich
   vocabularies: "end stage renal disease" names N18.5 in one ontology
   and 46177005-ish codes in another.  A source concept that *is* an
   anchor projects directly onto its partner.
2. **Lexical similarity** — TF-IDF cosine between the source concept's
   description/alias tokens and each target concept's, with the IDF
   computed over the target's fine-grained concepts (the candidate
   population being ranked).
3. **Structural consistency** — anchors vote for target concepts near
   them: a candidate close (in tree distance) to the partner of an
   anchor that is close to the source concept is more plausible than a
   lexically similar concept in an unrelated branch.

Scores are convex-combined and ties broken by cid, so projection is
deterministic for a given ontology pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.ontology.ontology import Ontology
from repro.text.tokenize import normalize_text, tokenize
from repro.utils.errors import DataError

#: Anchors closest to the source concept that get to vote; bounds the
#: structural pass to O(anchors × candidates) with a small constant.
MAX_VOTING_ANCHORS = 8


@dataclass(frozen=True)
class ConceptMapping:
    """One projected concept, with its score decomposition."""

    cid: str
    description: str
    score: float
    anchor_score: float
    lexical_score: float
    structural_score: float
    #: Anchor pairs (source cid, target cid) that supported this
    #: candidate — empty when the score is purely lexical.
    anchors: Tuple[Tuple[str, str], ...] = ()

    def to_json(self) -> Dict[str, Any]:
        """JSON-ready form for the HTTP response."""
        return {
            "cid": self.cid,
            "description": self.description,
            "score": self.score,
            "anchor_score": self.anchor_score,
            "lexical_score": self.lexical_score,
            "structural_score": self.structural_score,
            "anchors": [list(pair) for pair in self.anchors],
        }


def _surface_forms(ontology: Ontology, kb: Any) -> Dict[str, Set[str]]:
    """Normalised surface form → cids of fine-grained concepts."""
    forms: Dict[str, Set[str]] = {}
    for concept in ontology.fine_grained():
        texts = [concept.description]
        if kb is not None:
            texts.extend(kb.aliases_of(concept.cid))
        for text in texts:
            normalized = normalize_text(text)
            if normalized:
                forms.setdefault(normalized, set()).add(concept.cid)
    return forms


class ConceptMapper:
    """Project fine-grained concepts from one ontology into another.

    Built once per (source, target) ontology pair and reused across
    requests; construction cost is one pass over both vocabularies
    (anchor discovery) plus one over the target (TF-IDF index).
    Raises :class:`DataError` when the pair shares no anchors at all —
    a projection with no crosswalk signal would be pure lexical
    guesswork, better refused than silently degraded.
    """

    def __init__(
        self,
        source_ontology: Ontology,
        target_ontology: Ontology,
        source_kb: Any = None,
        target_kb: Any = None,
        anchor_weight: float = 0.5,
        lexical_weight: float = 0.3,
        structural_weight: float = 0.2,
        require_anchors: bool = True,
    ) -> None:
        total = anchor_weight + lexical_weight + structural_weight
        if total <= 0:
            raise DataError("mapper weights must sum to a positive value")
        self.anchor_weight = anchor_weight / total
        self.lexical_weight = lexical_weight / total
        self.structural_weight = structural_weight / total
        self.source = source_ontology
        self.target = target_ontology
        self._source_kb = source_kb
        self._target_kb = target_kb

        # -- anchor discovery: surface forms shared by both sides.
        # Only unambiguous forms (one concept per side) become anchors;
        # a form naming three concepts on either side identifies none
        # of them.
        source_forms = _surface_forms(source_ontology, source_kb)
        target_forms = _surface_forms(target_ontology, target_kb)
        self._anchor_partners: Dict[str, str] = {}
        anchor_pairs: Set[Tuple[str, str]] = set()
        for form, source_cids in source_forms.items():
            target_cids = target_forms.get(form)
            if target_cids is None:
                continue
            if len(source_cids) != 1 or len(target_cids) != 1:
                continue
            (s_cid,) = source_cids
            (t_cid,) = target_cids
            anchor_pairs.add((s_cid, t_cid))
            self._anchor_partners.setdefault(s_cid, t_cid)
        self.anchor_pairs: Tuple[Tuple[str, str], ...] = tuple(
            sorted(anchor_pairs)
        )
        if require_anchors and not self.anchor_pairs:
            raise DataError(
                "ontologies share no anchor concepts (no common alias or "
                "description surface form); cross-ontology mapping needs "
                "at least one"
            )

        # -- lexical index over the target's fine-grained concepts.
        self._target_docs: Dict[str, Dict[str, float]] = {}
        self._inverted: Dict[str, Set[str]] = {}
        df: Dict[str, int] = {}
        raw_docs: Dict[str, Dict[str, int]] = {}
        for concept in target_ontology.fine_grained():
            texts = [concept.description]
            if target_kb is not None:
                texts.extend(target_kb.aliases_of(concept.cid))
            counts: Dict[str, int] = {}
            for text in texts:
                for token in tokenize(text):
                    counts[token] = counts.get(token, 0) + 1
            raw_docs[concept.cid] = counts
            for token in counts:
                df[token] = df.get(token, 0) + 1
                self._inverted.setdefault(token, set()).add(concept.cid)
        doc_count = max(1, len(raw_docs))
        self._idf: Dict[str, float] = {
            token: math.log(1.0 + doc_count / count)
            for token, count in df.items()
        }
        for cid, counts in raw_docs.items():
            weights = {
                token: count * self._idf[token]
                for token, count in counts.items()
            }
            norm = math.sqrt(sum(w * w for w in weights.values()))
            if norm > 0:
                weights = {t: w / norm for t, w in weights.items()}
            self._target_docs[cid] = weights

        # Depth memo for tree distances (both sides).
        self._source_depth = {
            c.cid: source_ontology.depth_of(c.cid) for c in source_ontology
        }
        self._target_depth = {
            c.cid: target_ontology.depth_of(c.cid) for c in target_ontology
        }

    # -- similarity components ----------------------------------------------

    def _source_tokens(self, cid: str) -> Dict[str, float]:
        """The source concept's TF vector, weighted by target IDF."""
        concept = self.source.get(cid)
        texts = [concept.description]
        if self._source_kb is not None:
            texts.extend(self._source_kb.aliases_of(cid))
        counts: Dict[str, int] = {}
        for text in texts:
            for token in tokenize(text):
                counts[token] = counts.get(token, 0) + 1
        weights = {
            token: count * self._idf.get(token, 0.0)
            for token, count in counts.items()
        }
        norm = math.sqrt(sum(w * w for w in weights.values()))
        if norm > 0:
            weights = {t: w / norm for t, w in weights.items()}
        return weights

    @staticmethod
    def _tree_distance(
        ontology: Ontology, depth: Dict[str, int], a: str, b: str
    ) -> int:
        """Edges between ``a`` and ``b`` through their lowest common
        ancestor (tree metric; the ontology is a strict tree)."""
        if a == b:
            return 0
        ancestors_a = {c.cid for c in ontology.ancestors_of(a)}
        ancestors_a.add(a)
        lca_depth = 0
        if b in ancestors_a:
            lca_depth = depth[b]
        else:
            for ancestor in ontology.ancestors_of(b):
                if ancestor.cid in ancestors_a:
                    lca_depth = depth[ancestor.cid]
                    break
        return depth[a] + depth[b] - 2 * lca_depth

    def _relatedness(
        self, ontology: Ontology, depth: Dict[str, int], a: str, b: str
    ) -> float:
        return 1.0 / (1.0 + self._tree_distance(ontology, depth, a, b))

    # -- projection ----------------------------------------------------------

    def project(self, source_cid: str, limit: int = 5) -> List[ConceptMapping]:
        """The ``limit`` best target concepts for ``source_cid``.

        Raises ``KeyError`` for an unknown source cid and
        :class:`DataError` when it is not fine-grained (the paper links
        to leaves; so does the projection).
        """
        concept = self.source.get(source_cid)
        if not self.source.is_fine_grained(source_cid):
            raise DataError(
                f"source concept {source_cid!r} is not fine-grained; "
                "project leaf concepts"
            )
        if limit <= 0:
            raise DataError(f"limit must be positive, got {limit}")

        # Anchors nearest the source concept (deterministic order).
        voting = sorted(
            self.anchor_pairs,
            key=lambda pair: (
                self._tree_distance(
                    self.source, self._source_depth, source_cid, pair[0]
                ),
                pair,
            ),
        )[:MAX_VOTING_ANCHORS]

        # Candidates: lexical matches plus anchor neighbourhoods.
        query = self._source_tokens(source_cid)
        candidates: Set[str] = set()
        for token in query:
            candidates |= self._inverted.get(token, set())
        for _, t_anchor in voting:
            if self.target.is_fine_grained(t_anchor):
                candidates.add(t_anchor)
            parent = self.target.parent_of(t_anchor)
            pool = (
                self.target.children_of(parent.cid)
                if parent is not None
                else self.target.children_of(t_anchor)
            )
            candidates.update(
                c.cid for c in pool if self.target.is_fine_grained(c.cid)
            )

        direct_partner = self._anchor_partners.get(source_cid)
        if direct_partner is not None:
            candidates.add(direct_partner)

        scored: List[ConceptMapping] = []
        for cid in candidates:
            doc = self._target_docs.get(cid)
            if doc is None:
                continue  # non-leaf neighbour; projection targets leaves
            lexical = sum(
                weight * doc.get(token, 0.0)
                for token, weight in query.items()
            )
            structural = 0.0
            supporters: List[Tuple[str, str]] = []
            for s_anchor, t_anchor in voting:
                vote = self._relatedness(
                    self.source, self._source_depth, source_cid, s_anchor
                ) * self._relatedness(
                    self.target, self._target_depth, cid, t_anchor
                )
                if vote > structural:
                    structural = vote
                if vote >= 0.25:  # within one edge on each side
                    supporters.append((s_anchor, t_anchor))
            anchor = 1.0 if cid == direct_partner else 0.0
            score = (
                self.anchor_weight * anchor
                + self.lexical_weight * lexical
                + self.structural_weight * structural
            )
            if score <= 0.0:
                continue
            scored.append(
                ConceptMapping(
                    cid=cid,
                    description=self.target.get(cid).description,
                    score=score,
                    anchor_score=anchor,
                    lexical_score=lexical,
                    structural_score=structural,
                    anchors=tuple(sorted(supporters)),
                )
            )
        scored.sort(key=lambda m: (-m.score, m.cid))
        return scored[:limit]

    def stats(self) -> Dict[str, Any]:
        """Construction-time facts for the admin surface."""
        return {
            "anchors": len(self.anchor_pairs),
            "source_concepts": len(self._source_depth),
            "target_leaves": len(self._target_docs),
        }
