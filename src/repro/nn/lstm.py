"""LSTM cell and sequence encoder with full back-propagation-through-time.

The concept encoder (paper Section 4.1.1) and the decoder's recurrent
core (Section 4.1.2, Eq. 4) are standard LSTMs.  (The paper's Eq. block
omits the cell-state update line ``c_t = f_t ⊙ c_{t-1} + i_t ⊙ c̃_t`` —
an evident typographical slip; we implement the standard LSTM the
notation otherwise describes.)

Gate layout in the stacked matrices is ``[input, forget, output,
candidate]``; the forget-gate bias is initialised to 1.0 (standard
practice for gradient flow on short clinical snippets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.nn.functional import sigmoid, sigmoid_grad, tanh, tanh_grad
from repro.nn.initializers import glorot_uniform, orthogonal, zeros
from repro.nn.module import Module, Parameter
from repro.utils.rng import RngLike, derive_rng, ensure_rng


@dataclass
class LSTMStepCache:
    """Activations saved by one forward step for its backward step."""

    x: np.ndarray
    h_prev: np.ndarray
    c_prev: np.ndarray
    i: np.ndarray
    f: np.ndarray
    o: np.ndarray
    g: np.ndarray
    c: np.ndarray
    c_tanh: np.ndarray


class LSTMCell(Module):
    """One LSTM unit operating on 1-D vectors.

    Parameters are stacked: ``wx ∈ R^{4h×d_in}``, ``wh ∈ R^{4h×h}``,
    ``bias ∈ R^{4h}``; rows ``[0,h) = input gate``, ``[h,2h) = forget``,
    ``[2h,3h) = output``, ``[3h,4h) = candidate``.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: RngLike = None) -> None:
        if input_dim < 1 or hidden_dim < 1:
            raise ValueError(
                f"dimensions must be >= 1, got input_dim={input_dim}, "
                f"hidden_dim={hidden_dim}"
            )
        generator = ensure_rng(rng)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.wx = Parameter(
            glorot_uniform((4 * hidden_dim, input_dim), rng=derive_rng(generator, "wx"))
        )
        recurrent_blocks = [
            orthogonal((hidden_dim, hidden_dim), rng=derive_rng(generator, f"wh{i}"))
            for i in range(4)
        ]
        self.wh = Parameter(np.vstack(recurrent_blocks))
        bias = zeros((4 * hidden_dim,))
        bias[hidden_dim : 2 * hidden_dim] = 1.0  # forget-gate bias
        self.bias = Parameter(bias)

    def initial_state(self) -> Tuple[np.ndarray, np.ndarray]:
        """Zero hidden and cell states."""
        return (
            np.zeros(self.hidden_dim, dtype=np.float64),
            np.zeros(self.hidden_dim, dtype=np.float64),
        )

    def step(
        self, x: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, LSTMStepCache]:
        """One time step; returns ``(h, c, cache)``."""
        hidden = self.hidden_dim
        pre = self.wx.value @ x + self.wh.value @ h_prev + self.bias.value
        gate_i = sigmoid(pre[:hidden])
        gate_f = sigmoid(pre[hidden : 2 * hidden])
        gate_o = sigmoid(pre[2 * hidden : 3 * hidden])
        candidate = tanh(pre[3 * hidden :])
        cell = gate_f * c_prev + gate_i * candidate
        cell_tanh = tanh(cell)
        hidden_state = gate_o * cell_tanh
        cache = LSTMStepCache(
            x=np.asarray(x, dtype=np.float64),
            h_prev=h_prev,
            c_prev=c_prev,
            i=gate_i,
            f=gate_f,
            o=gate_o,
            g=candidate,
            c=cell,
            c_tanh=cell_tanh,
        )
        return hidden_state, cell, cache

    def step_batch(
        self, x: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One time step over a ``(B, input_dim)`` row-batch.

        Row ``b`` of the outputs equals :meth:`step` applied to row ``b``
        of the inputs (to floating-point round-off: the batch runs one
        ``(B, 4h)`` matmul per term where :meth:`step` runs B mat-vecs).
        Inference-only — no cache is produced and no gradients flow; the
        training path stays on :meth:`step`.
        """
        hidden = self.hidden_dim
        x = np.asarray(x, dtype=np.float64)
        h_prev = np.asarray(h_prev, dtype=np.float64)
        c_prev = np.asarray(c_prev, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(f"x must be (B, {self.input_dim}), got {x.shape}")
        if h_prev.shape != (x.shape[0], hidden) or c_prev.shape != h_prev.shape:
            raise ValueError(
                f"states must be ({x.shape[0]}, {hidden}), got "
                f"h={h_prev.shape}, c={c_prev.shape}"
            )
        pre = x @ self.wx.value.T + h_prev @ self.wh.value.T + self.bias.value
        gate_i = sigmoid(pre[:, :hidden])
        gate_f = sigmoid(pre[:, hidden : 2 * hidden])
        gate_o = sigmoid(pre[:, 2 * hidden : 3 * hidden])
        candidate = tanh(pre[:, 3 * hidden :])
        cell = gate_f * c_prev + gate_i * candidate
        hidden_state = gate_o * tanh(cell)
        return hidden_state, cell

    def backward_step(
        self, dh: np.ndarray, dc: np.ndarray, cache: LSTMStepCache
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward through one step.

        ``dh`` / ``dc`` are the gradients flowing into this step's
        outputs; returns ``(dx, dh_prev, dc_prev)`` and accumulates the
        parameter gradients.
        """
        d_gate_o = dh * cache.c_tanh
        d_cell = dc + dh * cache.o * tanh_grad(cache.c_tanh)
        d_gate_f = d_cell * cache.c_prev
        d_gate_i = d_cell * cache.g
        d_candidate = d_cell * cache.i
        dc_prev = d_cell * cache.f

        d_pre = np.concatenate(
            [
                d_gate_i * sigmoid_grad(cache.i),
                d_gate_f * sigmoid_grad(cache.f),
                d_gate_o * sigmoid_grad(cache.o),
                d_candidate * tanh_grad(cache.g),
            ]
        )
        self.wx.grad += np.outer(d_pre, cache.x)
        self.wh.grad += np.outer(d_pre, cache.h_prev)
        self.bias.grad += d_pre
        dx = self.wx.value.T @ d_pre
        dh_prev = self.wh.value.T @ d_pre
        return dx, dh_prev, dc_prev


class LSTMEncoder(Module):
    """Run an :class:`LSTMCell` over a whole sequence, with BPTT.

    ``forward`` consumes a ``(T, input_dim)`` matrix and returns the
    ``(T, hidden_dim)`` hidden states plus the per-step caches;
    ``backward`` consumes gradients on every hidden state (e.g. from
    text attention) *and* optional extra gradients on the final
    hidden/cell state (e.g. the decoder initialisation, Figure 4's
    ``s_0 = h_n``) and returns input gradients.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: RngLike = None) -> None:
        self.cell = LSTMCell(input_dim, hidden_dim, rng=rng)

    @property
    def hidden_dim(self) -> int:
        return self.cell.hidden_dim

    @property
    def input_dim(self) -> int:
        return self.cell.input_dim

    def forward(
        self,
        inputs: np.ndarray,
        h0: Optional[np.ndarray] = None,
        c0: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, List[LSTMStepCache]]:
        """Run the LSTM over a ``(T, input_dim)`` sequence from ``(h0, c0)``."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.cell.input_dim:
            raise ValueError(
                f"inputs must be (T, {self.cell.input_dim}), got {inputs.shape}"
            )
        if inputs.shape[0] == 0:
            raise ValueError("cannot encode an empty sequence")
        h, c = self.cell.initial_state()
        if h0 is not None:
            h = np.asarray(h0, dtype=np.float64)
        if c0 is not None:
            c = np.asarray(c0, dtype=np.float64)
        states = np.empty((inputs.shape[0], self.cell.hidden_dim))
        caches: List[LSTMStepCache] = []
        for t in range(inputs.shape[0]):
            h, c, cache = self.cell.step(inputs[t], h, c)
            states[t] = h
            caches.append(cache)
        return states, caches

    def forward_batch(
        self,
        inputs: np.ndarray,
        h0: Optional[np.ndarray] = None,
        c0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run the cell over a ``(B, T, input_dim)`` batch in lock-step.

        Returns the ``(B, T, hidden_dim)`` hidden states; row ``b``
        equals :meth:`forward` on sequence ``b`` (ragged batches must be
        padded by the caller, which then ignores the surplus states).
        Inference-only — no caches are kept, so there is no BPTT.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3 or inputs.shape[2] != self.cell.input_dim:
            raise ValueError(
                f"inputs must be (B, T, {self.cell.input_dim}), "
                f"got {inputs.shape}"
            )
        batch, steps = inputs.shape[:2]
        if batch == 0 or steps == 0:
            raise ValueError("cannot encode an empty batch or sequence")
        h = np.zeros((batch, self.cell.hidden_dim), dtype=np.float64)
        c = np.zeros((batch, self.cell.hidden_dim), dtype=np.float64)
        if h0 is not None:
            h = np.asarray(h0, dtype=np.float64)
        if c0 is not None:
            c = np.asarray(c0, dtype=np.float64)
        states = np.empty((batch, steps, self.cell.hidden_dim))
        for t in range(steps):
            h, c = self.cell.step_batch(inputs[:, t, :], h, c)
            states[:, t, :] = h
        return states

    def backward(
        self,
        d_states: np.ndarray,
        caches: List[LSTMStepCache],
        d_h_final: Optional[np.ndarray] = None,
        d_c_final: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """BPTT; returns ``(d_inputs, d_h0, d_c0)``."""
        d_states = np.asarray(d_states, dtype=np.float64)
        steps = len(caches)
        if d_states.shape != (steps, self.cell.hidden_dim):
            raise ValueError(
                f"d_states must be ({steps}, {self.cell.hidden_dim}), "
                f"got {d_states.shape}"
            )
        d_inputs = np.empty((steps, self.cell.input_dim))
        dh = np.zeros(self.cell.hidden_dim)
        dc = np.zeros(self.cell.hidden_dim)
        if d_h_final is not None:
            dh = dh + np.asarray(d_h_final, dtype=np.float64)
        if d_c_final is not None:
            dc = dc + np.asarray(d_c_final, dtype=np.float64)
        for t in range(steps - 1, -1, -1):
            dh = dh + d_states[t]
            dx, dh, dc = self.cell.backward_step(dh, dc, caches[t])
            d_inputs[t] = dx
        return d_inputs, dh, dc
