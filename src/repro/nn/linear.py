"""Fully connected layer with explicit backward."""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform, zeros
from repro.nn.module import Module, Parameter
from repro.utils.rng import RngLike


class Linear(Module):
    """``y = W x + b`` for 1-D inputs (and row-batched 2-D inputs).

    Used for the composite layer (paper Eq. 8, ``W_d ∈ R^{d×3d}``) and
    the vocabulary projection (Eq. 9, ``W_s ∈ R^{|V|×d}``).
    """

    def __init__(self, in_dim: int, out_dim: int, rng: RngLike = None) -> None:
        if in_dim < 1 or out_dim < 1:
            raise ValueError(
                f"dimensions must be >= 1, got in_dim={in_dim}, out_dim={out_dim}"
            )
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.weight = Parameter(glorot_uniform((out_dim, in_dim), rng=rng))
        self.bias = Parameter(zeros((out_dim,)))

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply ``W x + b`` (1-D input) or row-wise for 2-D input."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.in_dim:
            raise ValueError(
                f"input last dim {x.shape[-1]} != in_dim {self.in_dim}"
            )
        return x @ self.weight.value.T + self.bias.value

    def backward(self, x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return grad w.r.t. ``x``.

        ``x`` must be the same array (values) passed to :meth:`forward`.
        """
        x = np.asarray(x, dtype=np.float64)
        grad = np.asarray(grad_out, dtype=np.float64)
        if x.ndim == 1:
            self.weight.grad += np.outer(grad, x)
            self.bias.grad += grad
        else:
            self.weight.grad += grad.T @ x
            self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value
