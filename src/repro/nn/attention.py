"""Dot-product attention (paper Eq. 5–7).

Both COM-AID attentions share one mechanism: relatedness scores are the
inner products of a decoder state ``s_t`` with a memory of vectors
(encoder states ``h_r`` for text attention, ancestor representations
``h^{c_{l-r}}`` for structure attention); weights are their softmax; the
context vector is the weight-averaged memory.

``Attention`` is parameter-free (the inner-product score has no
weights) but is a :class:`Module` so richer scoring functions can be
substituted; the backward pass returns gradients for both the query and
the memory — the memory gradient is what propagates decoder error back
into the encoder and the ancestor encodings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.nn.functional import softmax
from repro.nn.module import Module


@dataclass
class AttentionCache:
    """Saved activations for one attention application."""

    query: np.ndarray
    memory: np.ndarray
    weights: np.ndarray


class Attention(Module):
    """Inner-product attention over a ``(n, d)`` memory."""

    def forward(
        self, query: np.ndarray, memory: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, AttentionCache]:
        """Return ``(context, weights, cache)``.

        ``context = Σ_r α_r memory[r]`` with
        ``α = softmax(memory @ query)`` — Eq. 5/6 (text) and Eq. 7
        (structure).
        """
        query = np.asarray(query, dtype=np.float64)
        memory = np.asarray(memory, dtype=np.float64)
        if memory.ndim != 2:
            raise ValueError(f"memory must be 2-D, got shape {memory.shape}")
        if memory.shape[0] == 0:
            raise ValueError("attention memory must be non-empty")
        if query.shape != (memory.shape[1],):
            raise ValueError(
                f"query shape {query.shape} incompatible with memory "
                f"{memory.shape}"
            )
        scores = memory @ query
        weights = softmax(scores)
        context = weights @ memory
        cache = AttentionCache(query=query, memory=memory, weights=weights)
        return context, weights, cache

    def backward(
        self, d_context: np.ndarray, cache: AttentionCache
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(d_query, d_memory)`` for upstream ``d_context``."""
        d_context = np.asarray(d_context, dtype=np.float64)
        weights = cache.weights
        memory = cache.memory
        query = cache.query
        # context = weights @ memory
        d_weights = memory @ d_context
        d_memory = np.outer(weights, d_context)
        # weights = softmax(scores); Jacobian-vector product:
        dot = float(weights @ d_weights)
        d_scores = weights * (d_weights - dot)
        # scores = memory @ query
        d_query = memory.T @ d_scores
        d_memory += np.outer(d_scores, query)
        return d_query, d_memory
