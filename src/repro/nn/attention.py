"""Dot-product attention (paper Eq. 5–7).

Both COM-AID attentions share one mechanism: relatedness scores are the
inner products of a decoder state ``s_t`` with a memory of vectors
(encoder states ``h_r`` for text attention, ancestor representations
``h^{c_{l-r}}`` for structure attention); weights are their softmax; the
context vector is the weight-averaged memory.

``Attention`` is parameter-free (the inner-product score has no
weights) but is a :class:`Module` so richer scoring functions can be
substituted; the backward pass returns gradients for both the query and
the memory — the memory gradient is what propagates decoder error back
into the encoder and the ancestor encodings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.nn.functional import masked_softmax, softmax
from repro.nn.module import Module


@dataclass
class AttentionCache:
    """Saved activations for one attention application."""

    query: np.ndarray
    memory: np.ndarray
    weights: np.ndarray


class Attention(Module):
    """Inner-product attention over a ``(n, d)`` memory."""

    def forward(
        self, query: np.ndarray, memory: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, AttentionCache]:
        """Return ``(context, weights, cache)``.

        ``context = Σ_r α_r memory[r]`` with
        ``α = softmax(memory @ query)`` — Eq. 5/6 (text) and Eq. 7
        (structure).
        """
        query = np.asarray(query, dtype=np.float64)
        memory = np.asarray(memory, dtype=np.float64)
        if memory.ndim != 2:
            raise ValueError(f"memory must be 2-D, got shape {memory.shape}")
        if memory.shape[0] == 0:
            raise ValueError("attention memory must be non-empty")
        if query.shape != (memory.shape[1],):
            raise ValueError(
                f"query shape {query.shape} incompatible with memory "
                f"{memory.shape}"
            )
        scores = memory @ query
        weights = softmax(scores)
        context = weights @ memory
        cache = AttentionCache(query=query, memory=memory, weights=weights)
        return context, weights, cache

    def forward_batch(
        self,
        queries: np.ndarray,
        memory: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched attention: one query row against one memory per row.

        ``queries`` is ``(B, d)``; ``memory`` is ``(B, N, d)`` — per-row
        memories zero-padded to a common length ``N``; ``mask`` is an
        optional ``(B, N)`` boolean marking each row's valid memory
        entries (``None`` means all valid, e.g. the structure memories,
        which Def. 4.1's first-level duplication pads to a uniform β).
        Returns ``(contexts, weights)`` with shapes ``(B, d)`` and
        ``(B, N)``; row ``b`` equals :meth:`forward` on ``queries[b]``
        against the valid prefix of ``memory[b]`` (padding gets weight
        exactly 0 and a zero-padded memory row contributes exactly
        nothing to the context).  Inference-only: no cache, no backward.
        """
        queries = np.asarray(queries, dtype=np.float64)
        memory = np.asarray(memory, dtype=np.float64)
        if memory.ndim != 3:
            raise ValueError(f"memory must be 3-D, got shape {memory.shape}")
        if memory.shape[1] == 0:
            raise ValueError("attention memory must be non-empty")
        if queries.shape != (memory.shape[0], memory.shape[2]):
            raise ValueError(
                f"queries shape {queries.shape} incompatible with memory "
                f"{memory.shape}"
            )
        scores = np.einsum("bnd,bd->bn", memory, queries)
        weights = masked_softmax(scores, mask)
        contexts = np.einsum("bn,bnd->bd", weights, memory)
        return contexts, weights

    def backward(
        self, d_context: np.ndarray, cache: AttentionCache
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(d_query, d_memory)`` for upstream ``d_context``."""
        d_context = np.asarray(d_context, dtype=np.float64)
        weights = cache.weights
        memory = cache.memory
        query = cache.query
        # context = weights @ memory
        d_weights = memory @ d_context
        d_memory = np.outer(weights, d_context)
        # weights = softmax(scores); Jacobian-vector product:
        dot = float(weights @ d_weights)
        d_scores = weights * (d_weights - dot)
        # scores = memory @ query
        d_query = memory.T @ d_scores
        d_memory += np.outer(d_scores, query)
        return d_query, d_memory
