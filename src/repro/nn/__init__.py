"""From-scratch neural-network substrate on NumPy.

The paper implements its networks in C++; no deep-learning framework is
available offline here, so this package provides exactly the pieces
COM-AID and the neural baselines need, each with hand-derived forward
and backward passes:

* :class:`Parameter` / :class:`Module` containers;
* :class:`Embedding`, :class:`Linear`, :class:`LSTMCell` (full BPTT),
  dot-product :class:`Attention` (paper Eq. 5-7);
* softmax cross-entropy losses;
* SGD (with momentum), Adagrad and Adam optimisers, global-norm
  gradient clipping;
* ``.npz`` parameter (de)serialisation.

Gradient correctness is enforced by finite-difference checks in the
test suite (``tests/nn/test_gradcheck.py``).
"""

from repro.nn.attention import Attention
from repro.nn.clip import clip_global_norm, global_norm
from repro.nn.embedding import Embedding
from repro.nn.gru import GRUCell, GRUEncoder
from repro.nn.functional import (
    log_softmax,
    sigmoid,
    softmax,
    softmax_cross_entropy,
    tanh,
)
from repro.nn.initializers import glorot_uniform, orthogonal, uniform, zeros
from repro.nn.linear import Linear
from repro.nn.lstm import LSTMCell, LSTMEncoder
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adagrad, Adam, Optimizer
from repro.nn.serialization import load_module, save_module

__all__ = [
    "Adagrad",
    "Adam",
    "Attention",
    "Embedding",
    "GRUCell",
    "GRUEncoder",
    "LSTMCell",
    "LSTMEncoder",
    "Linear",
    "Module",
    "Optimizer",
    "Parameter",
    "SGD",
    "clip_global_norm",
    "glorot_uniform",
    "global_norm",
    "load_module",
    "log_softmax",
    "orthogonal",
    "save_module",
    "sigmoid",
    "softmax",
    "softmax_cross_entropy",
    "tanh",
    "uniform",
    "zeros",
]
