"""GRU cell and sequence encoder (drop-in alternative to the LSTM).

The paper builds COM-AID on LSTM units; GRUs are the standard
lighter-weight alternative (fewer parameters, one state vector instead
of two).  ``GRUEncoder`` deliberately mirrors ``LSTMEncoder``'s
interface — including the (unused) cell-state slots — so COM-AID can
switch recurrent unit with a configuration flag and the ablation bench
can compare them.

Gate equations (Cho et al.):

    z = σ(W_z x + U_z h + b_z)          update gate
    r = σ(W_r x + U_r h + b_r)          reset gate
    n = tanh(W_n x + r ⊙ (U_n h) + b_n) candidate
    h' = (1 − z) ⊙ n + z ⊙ h
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.nn.functional import sigmoid, sigmoid_grad, tanh, tanh_grad
from repro.nn.initializers import glorot_uniform, orthogonal, zeros
from repro.nn.module import Module, Parameter
from repro.utils.rng import RngLike, derive_rng, ensure_rng


@dataclass
class GRUStepCache:
    """Activations saved by one forward step."""

    x: np.ndarray
    h_prev: np.ndarray
    z: np.ndarray
    r: np.ndarray
    n: np.ndarray
    candidate_recurrent: np.ndarray  # U_n @ h_prev
    h: np.ndarray

    @property
    def c(self) -> np.ndarray:
        """LSTM-cache compatibility: the GRU's only state is ``h``."""
        return self.h


class GRUCell(Module):
    """One GRU unit on 1-D vectors.

    Stacked parameters: ``wx ∈ R^{3h×d_in}`` rows ``[update, reset,
    candidate]``, likewise ``wh`` and ``bias``.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: RngLike = None) -> None:
        if input_dim < 1 or hidden_dim < 1:
            raise ValueError(
                f"dimensions must be >= 1, got input_dim={input_dim}, "
                f"hidden_dim={hidden_dim}"
            )
        generator = ensure_rng(rng)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.wx = Parameter(
            glorot_uniform((3 * hidden_dim, input_dim), rng=derive_rng(generator, "wx"))
        )
        blocks = [
            orthogonal((hidden_dim, hidden_dim), rng=derive_rng(generator, f"wh{i}"))
            for i in range(3)
        ]
        self.wh = Parameter(np.vstack(blocks))
        self.bias = Parameter(zeros((3 * hidden_dim,)))

    def initial_state(self) -> Tuple[np.ndarray, np.ndarray]:
        """Zero hidden state (plus an unused cell-slot placeholder)."""
        h = np.zeros(self.hidden_dim, dtype=np.float64)
        return h, h.copy()  # second slot is the unused "cell" placeholder

    def step(
        self, x: np.ndarray, h_prev: np.ndarray, c_prev: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray, GRUStepCache]:
        """One step; ``c_prev`` is accepted and ignored (API parity)."""
        hidden = self.hidden_dim
        x = np.asarray(x, dtype=np.float64)
        pre_x = self.wx.value @ x + self.bias.value
        update = sigmoid(pre_x[:hidden] + self.wh.value[:hidden] @ h_prev)
        reset = sigmoid(
            pre_x[hidden : 2 * hidden]
            + self.wh.value[hidden : 2 * hidden] @ h_prev
        )
        candidate_recurrent = self.wh.value[2 * hidden :] @ h_prev
        candidate = tanh(pre_x[2 * hidden :] + reset * candidate_recurrent)
        h = (1.0 - update) * candidate + update * h_prev
        cache = GRUStepCache(
            x=x,
            h_prev=h_prev,
            z=update,
            r=reset,
            n=candidate,
            candidate_recurrent=candidate_recurrent,
            h=h,
        )
        return h, h, cache

    def step_batch(
        self,
        x: np.ndarray,
        h_prev: np.ndarray,
        c_prev: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One step over a ``(B, input_dim)`` row-batch; ``c_prev`` is
        accepted and ignored (LSTM API parity).

        Row ``b`` of the output equals :meth:`step` on row ``b`` (to
        floating-point round-off).  Inference-only: no cache, no
        gradients.
        """
        hidden = self.hidden_dim
        x = np.asarray(x, dtype=np.float64)
        h_prev = np.asarray(h_prev, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(f"x must be (B, {self.input_dim}), got {x.shape}")
        if h_prev.shape != (x.shape[0], hidden):
            raise ValueError(
                f"h_prev must be ({x.shape[0]}, {hidden}), got {h_prev.shape}"
            )
        pre_x = x @ self.wx.value.T + self.bias.value
        update = sigmoid(pre_x[:, :hidden] + h_prev @ self.wh.value[:hidden].T)
        reset = sigmoid(
            pre_x[:, hidden : 2 * hidden]
            + h_prev @ self.wh.value[hidden : 2 * hidden].T
        )
        candidate_recurrent = h_prev @ self.wh.value[2 * hidden :].T
        candidate = tanh(pre_x[:, 2 * hidden :] + reset * candidate_recurrent)
        h = (1.0 - update) * candidate + update * h_prev
        return h, h

    def backward_step(
        self,
        dh: np.ndarray,
        dc: Optional[np.ndarray],
        cache: GRUStepCache,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward; ``dc`` (cell-slot gradient) is folded into ``dh``
        when provided — for the GRU they are the same state."""
        hidden = self.hidden_dim
        if dc is not None:
            dh = dh + dc
        d_update = dh * (cache.h_prev - cache.n)
        d_candidate = dh * (1.0 - cache.z)
        dh_prev = dh * cache.z

        d_pre_candidate = d_candidate * tanh_grad(cache.n)
        d_reset = d_pre_candidate * cache.candidate_recurrent
        d_candidate_recurrent = d_pre_candidate * cache.r
        d_pre_update = d_update * sigmoid_grad(cache.z)
        d_pre_reset = d_reset * sigmoid_grad(cache.r)

        wh = self.wh.value
        self.wh.grad[:hidden] += np.outer(d_pre_update, cache.h_prev)
        self.wh.grad[hidden : 2 * hidden] += np.outer(d_pre_reset, cache.h_prev)
        self.wh.grad[2 * hidden :] += np.outer(
            d_candidate_recurrent, cache.h_prev
        )
        dh_prev = (
            dh_prev
            + wh[:hidden].T @ d_pre_update
            + wh[hidden : 2 * hidden].T @ d_pre_reset
            + wh[2 * hidden :].T @ d_candidate_recurrent
        )

        d_pre = np.concatenate([d_pre_update, d_pre_reset, d_pre_candidate])
        self.wx.grad += np.outer(d_pre, cache.x)
        self.bias.grad += d_pre
        dx = self.wx.value.T @ d_pre
        dc_prev = np.zeros(hidden)
        return dx, dh_prev, dc_prev


class GRUEncoder(Module):
    """Sequence GRU with the same interface as :class:`LSTMEncoder`."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: RngLike = None) -> None:
        self.cell = GRUCell(input_dim, hidden_dim, rng=rng)

    @property
    def hidden_dim(self) -> int:
        return self.cell.hidden_dim

    @property
    def input_dim(self) -> int:
        return self.cell.input_dim

    def forward(
        self,
        inputs: np.ndarray,
        h0: Optional[np.ndarray] = None,
        c0: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, List[GRUStepCache]]:
        """Run the GRU over a ``(T, input_dim)`` sequence; ``c0`` ignored."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.cell.input_dim:
            raise ValueError(
                f"inputs must be (T, {self.cell.input_dim}), got {inputs.shape}"
            )
        if inputs.shape[0] == 0:
            raise ValueError("cannot encode an empty sequence")
        h, _ = self.cell.initial_state()
        if h0 is not None:
            h = np.asarray(h0, dtype=np.float64)
        # c0 is accepted for API parity and ignored.
        states = np.empty((inputs.shape[0], self.cell.hidden_dim))
        caches: List[GRUStepCache] = []
        for t in range(inputs.shape[0]):
            h, _, cache = self.cell.step(inputs[t], h)
            states[t] = h
            caches.append(cache)
        return states, caches

    def forward_batch(
        self,
        inputs: np.ndarray,
        h0: Optional[np.ndarray] = None,
        c0: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Lock-step run over a ``(B, T, input_dim)`` batch; ``c0``
        ignored.  Returns ``(B, T, hidden_dim)`` states; inference-only
        (mirrors :meth:`LSTMEncoder.forward_batch`)."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3 or inputs.shape[2] != self.cell.input_dim:
            raise ValueError(
                f"inputs must be (B, T, {self.cell.input_dim}), "
                f"got {inputs.shape}"
            )
        batch, steps = inputs.shape[:2]
        if batch == 0 or steps == 0:
            raise ValueError("cannot encode an empty batch or sequence")
        h = np.zeros((batch, self.cell.hidden_dim), dtype=np.float64)
        if h0 is not None:
            h = np.asarray(h0, dtype=np.float64)
        states = np.empty((batch, steps, self.cell.hidden_dim))
        for t in range(steps):
            h, _ = self.cell.step_batch(inputs[:, t, :], h)
            states[:, t, :] = h
        return states

    def backward(
        self,
        d_states: np.ndarray,
        caches: List[GRUStepCache],
        d_h_final: Optional[np.ndarray] = None,
        d_c_final: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """BPTT; a ``d_c_final`` gradient (from an LSTM-shaped caller)
        is treated as additional gradient on the final hidden state."""
        d_states = np.asarray(d_states, dtype=np.float64)
        steps = len(caches)
        if d_states.shape != (steps, self.cell.hidden_dim):
            raise ValueError(
                f"d_states must be ({steps}, {self.cell.hidden_dim}), "
                f"got {d_states.shape}"
            )
        d_inputs = np.empty((steps, self.cell.input_dim))
        dh = np.zeros(self.cell.hidden_dim)
        if d_h_final is not None:
            dh = dh + np.asarray(d_h_final, dtype=np.float64)
        if d_c_final is not None:
            dh = dh + np.asarray(d_c_final, dtype=np.float64)
        for t in range(steps - 1, -1, -1):
            dh = dh + d_states[t]
            dx, dh, _ = self.cell.backward_step(dh, None, caches[t])
            d_inputs[t] = dx
        return d_inputs, dh, np.zeros(self.cell.hidden_dim)
