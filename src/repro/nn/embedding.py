"""Embedding table with sparse gradient accumulation.

Both encoder and decoder consume word embeddings ``w_t`` (paper Section
4.1.1); the table may be initialised randomly or from the CBOW
pre-training phase (Section 4.2), and is itself updated during COM-AID
back-propagation ("the word embeddings ... are also updated").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.initializers import uniform
from repro.nn.module import Module, Parameter
from repro.utils.rng import RngLike


class Embedding(Module):
    """A ``(vocab_size, dim)`` lookup table."""

    def __init__(
        self, vocab_size: int, dim: int, scale: float = 0.08, rng: RngLike = None
    ) -> None:
        if vocab_size < 1:
            raise ValueError(f"vocab_size must be >= 1, got {vocab_size}")
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.vocab_size = vocab_size
        self.dim = dim
        self.weight = Parameter(uniform((vocab_size, dim), scale=scale, rng=rng))

    def forward(self, ids: Sequence[int]) -> np.ndarray:
        """Rows for ``ids`` as a ``(len(ids), dim)`` matrix (a copy)."""
        index = np.asarray(ids, dtype=np.intp)
        if index.size and (index.min() < 0 or index.max() >= self.vocab_size):
            raise IndexError(
                f"embedding ids out of range [0, {self.vocab_size}): "
                f"{index.min()}..{index.max()}"
            )
        return self.weight.value[index].copy()

    def backward(self, ids: Sequence[int], grad_out: np.ndarray) -> None:
        """Scatter-add ``grad_out`` rows into the table gradient."""
        index = np.asarray(ids, dtype=np.intp)
        grad = np.asarray(grad_out, dtype=np.float64)
        if grad.shape != (index.size, self.dim):
            raise ValueError(
                f"grad_out shape {grad.shape} != ({index.size}, {self.dim})"
            )
        np.add.at(self.weight.grad, index, grad)

    def load_pretrained(
        self, vectors: np.ndarray, ids: Sequence[int]
    ) -> None:
        """Overwrite rows ``ids`` with ``vectors`` (pre-training hand-off)."""
        index = np.asarray(ids, dtype=np.intp)
        values = np.asarray(vectors, dtype=np.float64)
        if values.shape != (index.size, self.dim):
            raise ValueError(
                f"vectors shape {values.shape} != ({index.size}, {self.dim})"
            )
        self.weight.value[index] = values
