"""Global-norm gradient clipping (standard for LSTM training)."""

from __future__ import annotations

import math
from typing import Iterable

from repro.nn.module import Parameter


def global_norm(parameters: Iterable[Parameter]) -> float:
    """L2 norm of all gradients concatenated."""
    total = 0.0
    for parameter in parameters:
        grad = parameter.grad
        total += float((grad * grad).sum())
    return math.sqrt(total)


def clip_global_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Rescale all gradients so the global norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    parameter_list = list(parameters)
    norm = global_norm(parameter_list)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for parameter in parameter_list:
            parameter.grad *= scale
    return norm
