"""Parameter and Module containers.

A :class:`Parameter` couples a value array with a gradient accumulator;
a :class:`Module` is a named tree of parameters and sub-modules.  There
is no autograd: layers compute gradients explicitly in their
``backward`` methods and accumulate them into ``Parameter.grad``; the
optimiser then walks ``module.parameters()``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np


class Parameter:
    """A trainable array with an accumulated gradient."""

    __slots__ = ("value", "grad")

    def __init__(self, value: np.ndarray) -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value.shape

    def zero_grad(self) -> None:
        """Reset the accumulated gradient(s) to zero."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.value.shape})"


class Module:
    """Base class for layers and models.

    Sub-classes assign :class:`Parameter` and :class:`Module` instances
    as attributes; :meth:`parameters` flattens the tree into
    ``{"path.to.param": Parameter}``.
    """

    def named_parameters(self) -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(flattened_name, Parameter)`` over the module tree."""
        for name, attribute in vars(self).items():
            if isinstance(attribute, Parameter):
                yield name, attribute
            elif isinstance(attribute, Module):
                for child_name, parameter in attribute.named_parameters():
                    yield f"{name}.{child_name}", parameter

    def parameters(self) -> Dict[str, Parameter]:
        """``{flattened_name: Parameter}`` over the module tree."""
        return dict(self.named_parameters())

    def zero_grad(self) -> None:
        """Reset every parameter's gradient in the module tree."""
        for _, parameter in self.named_parameters():
            parameter.zero_grad()

    def parameter_count(self) -> int:
        """Total number of scalar weights in the module tree."""
        return sum(parameter.value.size for _, parameter in self.named_parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter value, keyed by flattened name."""
        return {
            name: parameter.value.copy()
            for name, parameter in self.named_parameters()
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load values saved by :meth:`state_dict` (strict shape check)."""
        parameters = self.parameters()
        missing = set(parameters) - set(state)
        unexpected = set(state) - set(parameters)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, parameter in parameters.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.value.shape:
                raise ValueError(
                    f"parameter {name!r}: shape {value.shape} does not match "
                    f"{parameter.value.shape}"
                )
            parameter.value = value.copy()
            parameter.grad = np.zeros_like(parameter.value)
