"""Numerically stable activation and loss primitives."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Elementwise logistic sigmoid, stable for large |x|."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def sigmoid_grad(y: np.ndarray) -> np.ndarray:
    """d sigmoid / dx expressed in terms of the output ``y``."""
    return y * (1.0 - y)


def tanh(x: np.ndarray) -> np.ndarray:
    """Elementwise hyperbolic tangent (thin numpy wrapper for symmetry)."""
    return np.tanh(x)


def tanh_grad(y: np.ndarray) -> np.ndarray:
    """d tanh / dx expressed in terms of the output ``y``."""
    return 1.0 - y * y


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def softmax_cross_entropy(
    logits: np.ndarray, target: int
) -> Tuple[float, np.ndarray]:
    """Cross-entropy of a single categorical ``target`` under ``logits``.

    Returns ``(loss, dlogits)`` where ``dlogits = softmax(logits) -
    onehot(target)`` — the gradient of the loss w.r.t. the logits.
    """
    if logits.ndim != 1:
        raise ValueError(f"logits must be 1-D, got shape {logits.shape}")
    if not 0 <= target < logits.shape[0]:
        raise IndexError(
            f"target {target} out of range for {logits.shape[0]} classes"
        )
    log_probs = log_softmax(logits)
    loss = -float(log_probs[target])
    dlogits = np.exp(log_probs)
    dlogits[target] -= 1.0
    return loss, dlogits


def masked_softmax(
    scores: np.ndarray, mask: Optional[np.ndarray] = None, axis: int = -1
) -> np.ndarray:
    """Softmax along ``axis`` restricted to positions where ``mask`` holds.

    Masked-out positions receive probability exactly 0, and the valid
    positions' probabilities equal a plain softmax computed over the
    valid entries alone: the max is taken over valid scores only and the
    padding contributes exact zero terms to the normaliser.  This is the
    property the batched Phase-II equivalence suite relies on when
    candidate memories of different lengths are zero-padded to a common
    width.  ``mask=None`` degrades to :func:`softmax`.  Every slice
    along ``axis`` must keep at least one valid position.
    """
    if mask is None:
        return softmax(scores, axis=axis)
    scores = np.asarray(scores, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != scores.shape:
        raise ValueError(
            f"mask shape {mask.shape} != scores shape {scores.shape}"
        )
    if not np.all(np.any(mask, axis=axis)):
        raise ValueError("masked_softmax: a slice has no valid positions")
    masked = np.where(mask, scores, -np.inf)
    shifted = masked - np.max(masked, axis=axis, keepdims=True)
    exp = np.exp(shifted)  # exp(-inf) is exactly 0.0
    return exp / np.sum(exp, axis=axis, keepdims=True)


def batched_target_log_probs(
    logits: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """Per-row ``log softmax(logits[b])[targets[b]]`` for a ``(B, V)`` batch.

    The batched, sign-flipped analogue of :func:`softmax_cross_entropy`'s
    loss term (no gradient is produced — the batched Phase-II path is
    inference-only).
    """
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    index = np.asarray(targets, dtype=np.intp)
    if index.shape != (logits.shape[0],):
        raise ValueError(
            f"targets shape {index.shape} != ({logits.shape[0]},)"
        )
    if index.size and (index.min() < 0 or index.max() >= logits.shape[1]):
        raise IndexError(
            f"target out of range for {logits.shape[1]} classes: "
            f"{index.min()}..{index.max()}"
        )
    log_probs = log_softmax(logits, axis=-1)
    return log_probs[np.arange(logits.shape[0]), index]


def one_hot(index: int, size: int) -> np.ndarray:
    """A 1-D one-hot vector (validation included)."""
    if not 0 <= index < size:
        raise IndexError(f"index {index} out of range for size {size}")
    vector = np.zeros(size, dtype=np.float64)
    vector[index] = 1.0
    return vector
