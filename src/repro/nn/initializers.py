"""Weight initialisers (all take an explicit Generator)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """An all-zeros array of ``shape``."""
    return np.zeros(shape, dtype=np.float64)


def uniform(
    shape: Tuple[int, ...], scale: float = 0.08, rng: RngLike = None
) -> np.ndarray:
    """Uniform in [-scale, scale] — the classic seq2seq initialisation."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    generator = ensure_rng(rng)
    return generator.uniform(-scale, scale, size=shape).astype(np.float64)


def glorot_uniform(shape: Tuple[int, ...], rng: RngLike = None) -> np.ndarray:
    """Glorot/Xavier uniform: scale by fan-in + fan-out."""
    if len(shape) < 1:
        raise ValueError("glorot_uniform needs at least a 1-D shape")
    fan_in = shape[-1] if len(shape) > 1 else shape[0]
    fan_out = shape[0]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    generator = ensure_rng(rng)
    return generator.uniform(-limit, limit, size=shape).astype(np.float64)


def orthogonal(shape: Tuple[int, int], rng: RngLike = None) -> np.ndarray:
    """Orthogonal initialisation (recurrent matrices benefit from it)."""
    if len(shape) != 2:
        raise ValueError(f"orthogonal requires a 2-D shape, got {shape}")
    generator = ensure_rng(rng)
    rows, cols = shape
    raw = generator.normal(size=(max(rows, cols), min(rows, cols)))
    q, _ = np.linalg.qr(raw)
    if rows < cols:
        q = q.T
    return np.ascontiguousarray(q[:rows, :cols], dtype=np.float64)
