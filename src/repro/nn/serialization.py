"""Parameter (de)serialisation to ``.npz``.

The feedback controller retrains COM-AID and takes representation
snapshots (paper Appendix A.2); snapshots and trained models round-trip
through these helpers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.nn.module import Module

PathLike = Union[str, Path]


def save_module(module: Module, path: PathLike) -> None:
    """Write every parameter of ``module`` to a compressed ``.npz``."""
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    np.savez_compressed(Path(path), **state)


def load_module(module: Module, path: PathLike) -> None:
    """Load parameters saved by :func:`save_module` into ``module``.

    Shapes and names must match exactly.
    """
    with np.load(Path(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
