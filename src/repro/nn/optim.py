"""First-order optimisers over :class:`Parameter` collections.

The paper trains COM-AID with mini-batch SGD (Section 4.2) and the CBOW
pre-training with a fixed learning rate (Appendix B.2); Adam and Adagrad
are provided because they converge much faster at the small scales the
offline benches run at, without changing the model.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser: owns a parameter list and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def step(self) -> None:
        """Apply one parameter update from the accumulated gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset every owned parameter's gradient to zero."""
        for parameter in self.parameters:
            parameter.zero_grad()

    # -- checkpointing ------------------------------------------------------
    #
    # Slots are keyed by parameter position: optimisers are always
    # rebuilt from model.parameters(), whose iteration order is the
    # module-tree order and therefore stable across runs.

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Internal accumulator state as ``{slot_name: array}`` (copies).

        Stateless optimisers return an empty dict.  Together with the
        model parameters and the RNG state this is everything needed to
        resume training bit-for-bit from an epoch boundary.
        """
        return {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore state saved by :meth:`state_dict` (strict shape check)."""
        if state:
            raise ValueError(
                f"{type(self).__name__} is stateless but state_dict has "
                f"keys {sorted(state)}"
            )

    def _pack_slots(self, **slots: List[np.ndarray]) -> Dict[str, np.ndarray]:
        packed: Dict[str, np.ndarray] = {}
        for slot_name, arrays in slots.items():
            for index, array in enumerate(arrays):
                packed[f"{slot_name}.{index}"] = array.copy()
        return packed

    def _unpack_slot(
        self, state: Dict[str, np.ndarray], slot_name: str, into: List[np.ndarray]
    ) -> None:
        for index, target in enumerate(into):
            key = f"{slot_name}.{index}"
            if key not in state:
                raise ValueError(f"optimizer state is missing {key!r}")
            value = np.asarray(state[key], dtype=np.float64)
            if value.shape != target.shape:
                raise ValueError(
                    f"optimizer state {key!r}: shape {value.shape} does not "
                    f"match {target.shape}"
                )
            into[index] = value.copy()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: Optional[List[np.ndarray]] = None
        if momentum > 0.0:
            self._velocity = [
                np.zeros_like(parameter.value) for parameter in self.parameters
            ]

    def step(self) -> None:
        if self._velocity is None:
            for parameter in self.parameters:
                parameter.value -= self.lr * parameter.grad
            return
        for parameter, velocity in zip(self.parameters, self._velocity):
            velocity *= self.momentum
            velocity += parameter.grad
            parameter.value -= self.lr * velocity

    def state_dict(self) -> Dict[str, np.ndarray]:
        if self._velocity is None:
            return {}
        return self._pack_slots(velocity=self._velocity)

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        if self._velocity is None:
            super().load_state_dict(state)
            return
        self._unpack_slot(state, "velocity", self._velocity)


class Adagrad(Optimizer):
    """Adagrad: per-coordinate learning rates (good for embeddings)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        self.epsilon = epsilon
        self._accumulator = [
            np.zeros_like(parameter.value) for parameter in self.parameters
        ]

    def step(self) -> None:
        for parameter, accumulator in zip(self.parameters, self._accumulator):
            accumulator += parameter.grad * parameter.grad
            parameter.value -= (
                self.lr * parameter.grad / (np.sqrt(accumulator) + self.epsilon)
            )

    def state_dict(self) -> Dict[str, np.ndarray]:
        return self._pack_slots(accumulator=self._accumulator)

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self._unpack_slot(state, "accumulator", self._accumulator)


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(
                f"betas must be in [0, 1), got beta1={beta1}, beta2={beta2}"
            )
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step_count = 0
        self._first_moment = [
            np.zeros_like(parameter.value) for parameter in self.parameters
        ]
        self._second_moment = [
            np.zeros_like(parameter.value) for parameter in self.parameters
        ]

    def step(self) -> None:
        self._step_count += 1
        correction1 = 1.0 - self.beta1**self._step_count
        correction2 = 1.0 - self.beta2**self._step_count
        for parameter, first, second in zip(
            self.parameters, self._first_moment, self._second_moment
        ):
            grad = parameter.grad
            first *= self.beta1
            first += (1.0 - self.beta1) * grad
            second *= self.beta2
            second += (1.0 - self.beta2) * grad * grad
            first_hat = first / correction1
            second_hat = second / correction2
            parameter.value -= (
                self.lr * first_hat / (np.sqrt(second_hat) + self.epsilon)
            )

    def state_dict(self) -> Dict[str, np.ndarray]:
        packed = self._pack_slots(
            first_moment=self._first_moment, second_moment=self._second_moment
        )
        packed["step_count"] = np.array(self._step_count, dtype=np.int64)
        return packed

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        if "step_count" not in state:
            raise ValueError("Adam state is missing 'step_count'")
        self._unpack_slot(state, "first_moment", self._first_moment)
        self._unpack_slot(state, "second_moment", self._second_moment)
        self._step_count = int(state["step_count"])


def make_optimizer(
    name: str, parameters: Iterable[Parameter], lr: float, **kwargs
) -> Optimizer:
    """Factory: ``"sgd"``, ``"adagrad"``, or ``"adam"``."""
    registry: Dict[str, type] = {"sgd": SGD, "adagrad": Adagrad, "adam": Adam}
    try:
        cls = registry[name.lower()]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise ValueError(f"unknown optimizer {name!r}; known: {known}") from None
    return cls(parameters, lr=lr, **kwargs)
