"""Structured JSON logging correlated with the active trace.

One JSON object per line: timestamp, level, logger, message, plus the
``request_id``/``trace_id``/``span_id`` of whatever sampled trace is
active in the logging thread's context — which is how a log line from
deep inside Phase II is joined to its ``GET /traces`` span tree.  Any
``extra={...}`` fields a call site passes land in the object too.

The library never configures logging on import (that stays an
application decision, per :mod:`repro.utils.logging`);
:func:`configure_json_logging` is the one-call opt-in the ``repro
serve`` CLI uses.
"""

from __future__ import annotations

import json
import logging
import sys
from datetime import datetime, timezone
from typing import IO, Optional

from repro.obs import trace

#: LogRecord attributes that are plumbing, not payload.
_RESERVED = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    )
)


class JsonLogFormatter(logging.Formatter):
    """Format records as single-line JSON with trace correlation."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": datetime.fromtimestamp(
                record.created, tz=timezone.utc
            ).isoformat(timespec="milliseconds"),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        span = trace.current_span()
        if span is not None and span.is_recording:
            payload["request_id"] = span.request_id
            payload["trace_id"] = span.trace_id
            payload["span_id"] = span.span_id
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload.setdefault(key, value)
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def configure_json_logging(
    level: int = logging.INFO, stream: Optional[IO[str]] = None
) -> logging.Handler:
    """Attach a JSON handler to the ``repro`` root logger (idempotent).

    Replaces any handler installed by a previous call, so tests and
    re-invocations do not stack duplicate output.  Returns the handler
    (callers may capture its stream or remove it).
    """
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_json", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    handler._repro_json = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    return handler
