"""Zero-dependency span tracer with context-propagated request IDs.

One *trace* is the tree of timed *spans* a single request produced:
``http.link`` → ``service.request`` → ``linker.rewrite`` /
``linker.retrieve`` / ``linker.phase2`` (assemble, decode) /
``linker.rerank``.  Each span carries tags (k, cache hits, degraded
reason …) and point-in-time events (e.g. a fired fault probe), and maps
onto the paper's Figure 11 OR/CR/ED/RT taxonomy via its ``phase`` tag.

Design constraints, in order:

1. **Near-zero cost when idle.**  Instrumented code calls the module
   functions :func:`span`/:func:`span_event` unconditionally; when no
   sampled trace is active in the current context they return a shared
   no-op singleton after one ``ContextVar`` read.  That is what keeps
   the traced-off serving path within 1% of untraced (``BENCH_obs.json``).
2. **Explicit cross-thread propagation.**  ``ContextVar`` state does
   not follow work handed to another thread, so the micro-batcher
   carries each request's span with the request and the worker re-enters
   it via :func:`attach` — span trees stay correct even though Phase II
   runs on a different thread than the HTTP handler.
3. **Bounded retention.**  Finished traces land in a ring buffer
   (``deque(maxlen=capacity)``); a trace is also capped in span and
   event count so one pathological request cannot hold the process
   hostage.

No imports from ``repro``: core modules and even :mod:`repro.utils.faults`
may import this module without layering cycles.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Hard caps per trace; beyond them spans/events are counted but dropped.
MAX_SPANS_PER_TRACE = 512
MAX_EVENTS_PER_SPAN = 64

_CURRENT: "ContextVar[Optional[Span]]" = ContextVar(
    "repro_current_span", default=None
)


def new_request_id() -> str:
    """A fresh 16-hex-char request identifier."""
    return uuid.uuid4().hex[:16]


class _NoopSpan:
    """Shared do-nothing span: the fast path when tracing is off.

    Supports the full :class:`Span` surface (tags, events, context
    manager, ``end``) so instrumented code never branches on whether
    tracing is active.
    """

    __slots__ = ()
    is_recording = False
    trace_id = None
    request_id = None
    span_id = None

    def set_tag(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def add_event(self, name: str, **attrs: Any) -> "_NoopSpan":
        return self

    def child(self, name: str, **tags: Any) -> "_NoopSpan":
        return self

    def end(self) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _TraceRecord:
    """Mutable collection state for one in-flight trace."""

    __slots__ = (
        "trace_id",
        "request_id",
        "name",
        "started_at",
        "origin",
        "lock",
        "spans",
        "dropped_spans",
        "next_span_id",
    )

    def __init__(self, trace_id: str, request_id: str, name: str) -> None:
        self.trace_id = trace_id
        self.request_id = request_id
        self.name = name
        self.started_at = time.time()
        # perf_counter anchor: span offsets are relative to this.
        self.origin = time.perf_counter()
        self.lock = threading.Lock()
        self.spans: List[Dict[str, Any]] = []
        self.dropped_spans = 0
        self.next_span_id = 0

    def allocate_span_id(self) -> str:
        with self.lock:
            self.next_span_id += 1
            return f"s{self.next_span_id}"

    def append(self, span_dict: Dict[str, Any]) -> bool:
        with self.lock:
            if len(self.spans) >= MAX_SPANS_PER_TRACE:
                self.dropped_spans += 1
                return False
            self.spans.append(span_dict)
            return True

    def as_dict(self) -> Dict[str, Any]:
        with self.lock:
            spans = sorted(self.spans, key=lambda s: s["start_s"])
            dropped = self.dropped_spans
        duration = max(
            (s["start_s"] + s["duration_s"] for s in spans), default=0.0
        )
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "name": self.name,
            "started_at": self.started_at,
            "duration_s": duration,
            "spans": spans,
            "dropped_spans": dropped,
        }


class Span:
    """One timed, tagged node of a trace tree.

    Use as a context manager to also install the span as the current
    context (children created via :func:`span` nest under it), or hold
    the object and call :meth:`end` for spans whose lifetime crosses
    ``with`` boundaries (e.g. a request span resolved by a future).
    """

    __slots__ = (
        "tracer",
        "_record",
        "name",
        "span_id",
        "parent_id",
        "_start",
        "tags",
        "events",
        "_ended",
        "_token",
    )

    is_recording = True

    def __init__(
        self,
        tracer: "Tracer",
        record: _TraceRecord,
        name: str,
        parent_id: Optional[str],
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.tracer = tracer
        self._record = record
        self.name = name
        self.span_id = record.allocate_span_id()
        self.parent_id = parent_id
        self._start = time.perf_counter()
        self.tags: Dict[str, Any] = dict(tags) if tags else {}
        self.events: List[Dict[str, Any]] = []
        self._ended = False
        self._token = None

    # -- identity -----------------------------------------------------------

    @property
    def trace_id(self) -> str:
        return self._record.trace_id

    @property
    def request_id(self) -> str:
        return self._record.request_id

    # -- recording ----------------------------------------------------------

    def set_tag(self, key: str, value: Any) -> "Span":
        """Attach (or overwrite) one tag; returns self for chaining."""
        self.tags[key] = value
        return self

    def add_event(self, name: str, **attrs: Any) -> "Span":
        """Record a point-in-time event at the current offset."""
        if len(self.events) < MAX_EVENTS_PER_SPAN:
            event: Dict[str, Any] = {
                "name": name,
                "at_s": time.perf_counter() - self._record.origin,
            }
            if attrs:
                event["attrs"] = attrs
            self.events.append(event)
        return self

    def child(self, name: str, **tags: Any) -> "Span":
        """A manual-lifetime child span (not installed as current).

        The front-end's dispatcher uses this to hang queue-wait and
        dispatch spans under a request span it holds by reference but
        whose context it never entered.
        """
        return self.tracer._child(self, name, tags or None)

    def end(self) -> None:
        """Finish the span (idempotent); roots finalise their trace."""
        if self._ended:
            return
        self._ended = True
        now = time.perf_counter()
        self._record.append(
            {
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "name": self.name,
                "start_s": self._start - self._record.origin,
                "duration_s": now - self._start,
                "tags": self.tags,
                "events": self.events,
            }
        )
        if self.parent_id is None:
            self.tracer._finish(self._record)

    # -- context ------------------------------------------------------------

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc is not None:
            self.set_tag("error", f"{type(exc).__name__}: {exc}")
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self.end()
        return False


class _Attach:
    """Context manager installing an existing span as current."""

    __slots__ = ("_span", "_token")

    def __init__(self, span: Span) -> None:
        self._span = span
        self._token = None

    def __enter__(self) -> Span:
        self._token = _CURRENT.set(self._span)
        return self._span

    def __exit__(self, *exc: Any) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
        return False


class _NoopAttach:
    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return NOOP_SPAN

    def __exit__(self, *exc: Any) -> bool:
        return False


_NOOP_ATTACH = _NoopAttach()


class Tracer:
    """Sampling root-span factory plus a bounded ring of finished traces.

    ``sample_rate`` is deterministic, not random: an accumulator adds
    the rate per root and samples when it crosses 1, so a rate of 0.25
    keeps exactly every fourth trace — reproducible in tests and free
    of RNG coupling.  0 disables tracing (roots are no-ops), 1 keeps
    every trace.
    """

    def __init__(self, sample_rate: float = 1.0, capacity: int = 64) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sample_rate = sample_rate
        self.capacity = capacity
        self._lock = threading.Lock()
        self._accumulator = 0.0
        self._started = 0
        self._sampled = 0
        self._finished = 0
        self._ring: List[Dict[str, Any]] = []

    # -- roots --------------------------------------------------------------

    def start_trace(
        self,
        name: str,
        request_id: Optional[str] = None,
        **tags: Any,
    ):
        """Begin a root span, or :data:`NOOP_SPAN` if not sampled."""
        with self._lock:
            self._started += 1
            self._accumulator += self.sample_rate
            sampled = self._accumulator >= 1.0
            if sampled:
                self._accumulator -= 1.0
                self._sampled += 1
        if not sampled:
            return NOOP_SPAN
        record = _TraceRecord(
            trace_id=uuid.uuid4().hex[:16],
            request_id=request_id if request_id else new_request_id(),
            name=name,
        )
        return Span(self, record, name, parent_id=None, tags=tags)

    def _child(
        self, parent: Span, name: str, tags: Optional[Dict[str, Any]]
    ) -> Span:
        return Span(
            self, parent._record, name, parent_id=parent.span_id, tags=tags
        )

    def _finish(self, record: _TraceRecord) -> None:
        trace_dict = record.as_dict()
        with self._lock:
            self._finished += 1
            self._ring.append(trace_dict)
            if len(self._ring) > self.capacity:
                del self._ring[: len(self._ring) - self.capacity]

    # -- introspection ------------------------------------------------------

    def traces(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Finished traces, most recent first."""
        with self._lock:
            snapshot = list(reversed(self._ring))
        if limit is not None:
            snapshot = snapshot[: max(limit, 0)]
        return snapshot

    def find(self, request_id: str) -> Optional[Dict[str, Any]]:
        """The most recent finished trace for ``request_id``, if retained."""
        for trace_dict in self.traces():
            if trace_dict["request_id"] == request_id:
                return trace_dict
        return None

    def stats(self) -> Dict[str, Any]:
        """Sampling and retention counters, JSON-ready."""
        with self._lock:
            return {
                "sample_rate": self.sample_rate,
                "capacity": self.capacity,
                "started": self._started,
                "sampled": self._sampled,
                "finished": self._finished,
                "retained": len(self._ring),
            }


# -- module-level instrumentation hooks ------------------------------------


def current_span():
    """The context's active span, or None outside any sampled trace."""
    return _CURRENT.get()


def current_request_id() -> Optional[str]:
    """Request ID of the active trace, or None (for log correlation)."""
    span_obj = _CURRENT.get()
    return span_obj.request_id if span_obj is not None else None


def span(name: str, **tags: Any):
    """A child span of the current context, or the no-op singleton.

    This is the hook instrumented code calls unconditionally::

        with trace.span("linker.retrieve", phase="CR", k=k) as sp:
            hits = index.search(query)
            sp.set_tag("candidates", len(hits))

    Cost when no sampled trace is active: one ContextVar read.
    """
    parent = _CURRENT.get()
    if parent is None:
        return NOOP_SPAN
    return parent.tracer._child(parent, name, tags or None)


def start_span(name: str, **tags: Any):
    """Like :func:`span` but for manual lifetime management.

    The returned span is *not* installed as current; the caller ends it
    explicitly (or hands it to a worker thread via :func:`attach`).
    """
    return span(name, **tags)


def attach(span_obj):
    """Install ``span_obj`` as the current span for a ``with`` block.

    This is the cross-thread propagation primitive: capture a span in
    the submitting thread, re-enter it on the worker.  ``None`` and
    no-op spans yield a no-op context manager.
    """
    if span_obj is None or not span_obj.is_recording:
        return _NOOP_ATTACH
    return _Attach(span_obj)


def span_event(name: str, **attrs: Any) -> None:
    """Record an event on the current span (no-op outside a trace)."""
    span_obj = _CURRENT.get()
    if span_obj is not None:
        span_obj.add_event(name, **attrs)


# -- cross-process transport -------------------------------------------------
#
# A worker process cannot share Span objects with the parent: spans
# live in a per-process _TraceRecord.  Instead the worker runs its own
# Tracer, finishes its local trace, ships the plain-dict payload
# (export_trace) back over the result pipe, and the parent grafts the
# subtree under the span that dispatched the job (graft).  Clock
# alignment uses the wall-clock ``started_at`` both records carry —
# same machine, same clock, so offsets line up to scheduler noise.


def export_trace(root_span) -> Optional[Dict[str, Any]]:
    """Serialise a finished span's whole trace for pipe transport.

    Returns ``None`` for no-op spans, so untraced requests ship no
    payload at all (the sampling-off fast path stays free).  Call after
    the root has ended; the payload is the record's JSON-ready dict.
    """
    if root_span is None or not getattr(root_span, "is_recording", False):
        return None
    return root_span._record.as_dict()


def graft(parent_span, payload: Optional[Dict[str, Any]]) -> int:
    """Splice a foreign (serialised) span tree under ``parent_span``.

    Foreign span IDs are re-allocated from the parent's record (two
    workers' subtrees can never collide), parent links are remapped,
    and start offsets / event times are shifted onto the parent
    record's timebase via the wall-clock delta between the two traces'
    ``started_at``.  Foreign roots — and any span whose parent did not
    survive the worker's span cap — attach directly under
    ``parent_span``, so a truncated subtree degrades to a flatter tree
    instead of dropping spans.  Returns the number of spans grafted
    (0 for no-op parents or empty payloads); the trace's span cap still
    applies, with overflow counted in ``dropped_spans``.
    """
    if (
        parent_span is None
        or not getattr(parent_span, "is_recording", False)
        or not payload
        or not payload.get("spans")
    ):
        return 0
    record = parent_span._record
    base = float(payload.get("started_at", record.started_at)) - record.started_at
    id_map = {
        span_dict["span_id"]: record.allocate_span_id()
        for span_dict in payload["spans"]
    }
    grafted = 0
    for span_dict in payload["spans"]:
        events = []
        for event in span_dict.get("events", ()):
            shifted = dict(event)
            shifted["at_s"] = event.get("at_s", 0.0) + base
            events.append(shifted)
        if record.append(
            {
                "span_id": id_map[span_dict["span_id"]],
                "parent_id": id_map.get(
                    span_dict.get("parent_id"), parent_span.span_id
                ),
                "name": span_dict["name"],
                "start_s": span_dict["start_s"] + base,
                "duration_s": span_dict["duration_s"],
                "tags": dict(span_dict.get("tags") or {}),
                "events": events,
            }
        ):
            grafted += 1
    dropped = payload.get("dropped_spans", 0)
    if dropped:
        with record.lock:
            record.dropped_spans += dropped
    return grafted


# -- rendering --------------------------------------------------------------


def _format_tags(tags: Dict[str, Any]) -> str:
    if not tags:
        return ""
    inner = ", ".join(f"{key}={tags[key]}" for key in sorted(tags))
    return " {" + inner + "}"


def _walk(
    children: Dict[Optional[str], List[Dict[str, Any]]],
    parent_id: Optional[str],
    depth: int,
) -> Iterator[Tuple[int, Dict[str, Any]]]:
    for span_dict in children.get(parent_id, ()):
        yield depth, span_dict
        yield from _walk(children, span_dict["span_id"], depth + 1)


def format_trace(trace_dict: Dict[str, Any]) -> str:
    """Render one finished trace as an indented span tree.

    Stitched multi-process traces render as one tree: spans grafted
    from a worker process show their origin ``[pid N]`` inline, and a
    span whose parent is missing from the trace (a foreign subtree
    whose link was lost) is promoted to the root level and marked
    ``(orphan)`` instead of being silently dropped.
    """
    known_ids = {span_dict["span_id"] for span_dict in trace_dict["spans"]}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    orphans: List[Dict[str, Any]] = []
    for span_dict in trace_dict["spans"]:
        parent_id = span_dict["parent_id"]
        if parent_id is not None and parent_id not in known_ids:
            orphans.append(span_dict)
            children.setdefault(None, []).append(span_dict)
        else:
            children.setdefault(parent_id, []).append(span_dict)
    orphan_ids = {span_dict["span_id"] for span_dict in orphans}
    for sibling_list in children.values():
        sibling_list.sort(key=lambda s: s["start_s"])
    lines = [
        "trace {trace_id} request={request_id} {name} "
        "{duration:.2f}ms spans={count}".format(
            trace_id=trace_dict["trace_id"],
            request_id=trace_dict["request_id"],
            name=trace_dict["name"],
            duration=trace_dict["duration_s"] * 1e3,
            count=len(trace_dict["spans"]),
        )
    ]
    for depth, span_dict in _walk(children, None, 0):
        tags = dict(span_dict["tags"])
        origin = ""
        if "pid" in tags:
            origin = f" [pid {tags.pop('pid')}]"
        marker = " (orphan)" if span_dict["span_id"] in orphan_ids else ""
        lines.append(
            "{indent}{name} {duration:.2f}ms{origin}{marker}{tags}".format(
                indent="  " * (depth + 1),
                name=span_dict["name"],
                duration=span_dict["duration_s"] * 1e3,
                origin=origin,
                marker=marker,
                tags=_format_tags(tags),
            )
        )
        for event in span_dict["events"]:
            attrs = event.get("attrs") or {}
            lines.append(
                "{indent}! {name}{tags}".format(
                    indent="  " * (depth + 2),
                    name=event["name"],
                    tags=_format_tags(attrs),
                )
            )
    if trace_dict.get("dropped_spans"):
        lines.append(f"  … {trace_dict['dropped_spans']} spans dropped")
    return "\n".join(lines)
