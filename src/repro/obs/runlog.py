"""Training run telemetry: per-epoch JSONL logs and run comparison.

Ngo et al.'s medical-concept-annotation study attributes accuracy
deltas across pipeline stages by comparing *runs*, not single numbers;
this module gives :class:`~repro.core.trainer.ComAidTrainer` the same
discipline.  A run directory looks like::

    runs/20260806-142501-3fa2c1/
        meta.json       # configs, example counts, RNG fingerprint
        epochs.jsonl    # one record per epoch, appended + flushed live
        summary.json    # final loss / wall time, written at completion

``epochs.jsonl`` is append-only and flushed per epoch, so a crashed or
killed run keeps everything it had measured — the file doubles as a
liveness probe for long trainings.  ``repro runs`` lists run
directories and diffs two runs epoch-by-epoch.
"""

from __future__ import annotations

import hashlib
import json
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.utils.errors import DataError

PathLike = Union[str, Path]

META_FILE = "meta.json"
EPOCHS_FILE = "epochs.jsonl"
SUMMARY_FILE = "summary.json"


def rng_fingerprint(rng: Any) -> str:
    """A short stable digest of a numpy Generator's current state.

    Two runs whose fingerprints match at the same epoch are consuming
    identical random streams — the cheap way to confirm a resumed run
    really is bit-for-bit on the original's trajectory.
    """
    state = repr(rng.bit_generator.state).encode("utf-8")
    return hashlib.sha256(state).hexdigest()[:12]


def _default_run_id() -> str:
    return time.strftime("%Y%m%d-%H%M%S") + "-" + uuid.uuid4().hex[:6]


class RunLogger:
    """Appends one training run's telemetry under ``root/<run_id>/``."""

    def __init__(
        self,
        root: PathLike,
        run_id: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.run_id = run_id if run_id else _default_run_id()
        self.path = Path(root) / self.run_id
        self.path.mkdir(parents=True, exist_ok=True)
        payload = {
            "run_id": self.run_id,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        }
        payload.update(meta or {})
        with open(self.path / META_FILE, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        # Line-buffered append handle held for the run's lifetime; each
        # epoch record is flushed immediately so a killed run loses
        # nothing already measured.
        self._epochs = open(self.path / EPOCHS_FILE, "a", encoding="utf-8")

    def log_epoch(self, epoch: int, **fields: Any) -> None:
        """Append one per-epoch record (flushed to disk before return)."""
        record: Dict[str, Any] = {"epoch": epoch}
        record.update(fields)
        self._epochs.write(json.dumps(record, default=str) + "\n")
        self._epochs.flush()

    def finish(self, **fields: Any) -> None:
        """Write the end-of-run summary and close the epoch log."""
        with open(self.path / SUMMARY_FILE, "w", encoding="utf-8") as handle:
            json.dump(fields, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        self.close()

    def close(self) -> None:
        """Close the epoch log without writing a summary (crash path)."""
        if not self._epochs.closed:
            self._epochs.close()


@dataclass
class RunInfo:
    """One run directory, loaded: metadata, epoch records, summary."""

    run_id: str
    path: Path
    meta: Dict[str, Any] = field(default_factory=dict)
    epochs: List[Dict[str, Any]] = field(default_factory=list)
    summary: Dict[str, Any] = field(default_factory=dict)

    @property
    def final_loss(self) -> Optional[float]:
        if self.epochs and "mean_loss" in self.epochs[-1]:
            return float(self.epochs[-1]["mean_loss"])
        return None

    @property
    def seconds(self) -> Optional[float]:
        if "seconds" in self.summary:
            return float(self.summary["seconds"])
        total = sum(
            float(record.get("seconds", 0.0)) for record in self.epochs
        )
        return total if self.epochs else None

    @property
    def mean_tokens_per_s(self) -> Optional[float]:
        rates = [
            float(record["tokens_per_s"])
            for record in self.epochs
            if "tokens_per_s" in record
        ]
        return sum(rates) / len(rates) if rates else None

    @property
    def completed(self) -> bool:
        return bool(self.summary)


def load_run(path: PathLike) -> RunInfo:
    """Load one run directory (tolerates a missing/partial summary)."""
    run_path = Path(path)
    meta_path = run_path / META_FILE
    if not meta_path.is_file():
        raise DataError(f"not a run directory (no {META_FILE}): {run_path}")
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise DataError(f"corrupt {meta_path}: {error}")
    epochs: List[Dict[str, Any]] = []
    epochs_path = run_path / EPOCHS_FILE
    if epochs_path.is_file():
        for line_number, line in enumerate(
            epochs_path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                epochs.append(json.loads(line))
            except json.JSONDecodeError:
                # A torn final line is exactly what a crash leaves
                # behind; everything before it is still good telemetry.
                break
    summary: Dict[str, Any] = {}
    summary_path = run_path / SUMMARY_FILE
    if summary_path.is_file():
        try:
            summary = json.loads(summary_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            summary = {}
    return RunInfo(
        run_id=str(meta.get("run_id", run_path.name)),
        path=run_path,
        meta=meta,
        epochs=epochs,
        summary=summary,
    )


def list_runs(root: PathLike) -> List[RunInfo]:
    """All run directories under ``root``, sorted by run id (oldest first)."""
    root_path = Path(root)
    if not root_path.is_dir():
        return []
    runs = []
    for child in sorted(root_path.iterdir()):
        if child.is_dir() and (child / META_FILE).is_file():
            runs.append(load_run(child))
    return runs


def diff_runs(a: RunInfo, b: RunInfo) -> Dict[str, Any]:
    """Epoch-by-epoch loss comparison of two runs, JSON-ready.

    Per common epoch: both losses and ``delta = loss_b - loss_a``
    (negative means run B trains lower).  The summary block compares
    final losses, wall time, and mean token throughput.
    """
    by_epoch_a = {int(r["epoch"]): r for r in a.epochs if "epoch" in r}
    by_epoch_b = {int(r["epoch"]): r for r in b.epochs if "epoch" in r}
    common = sorted(set(by_epoch_a) & set(by_epoch_b))
    per_epoch = []
    for epoch in common:
        loss_a = by_epoch_a[epoch].get("mean_loss")
        loss_b = by_epoch_b[epoch].get("mean_loss")
        entry: Dict[str, Any] = {
            "epoch": epoch, "loss_a": loss_a, "loss_b": loss_b,
        }
        if loss_a is not None and loss_b is not None:
            entry["delta"] = float(loss_b) - float(loss_a)
        per_epoch.append(entry)
    result: Dict[str, Any] = {
        "run_a": a.run_id,
        "run_b": b.run_id,
        "epochs_a": len(a.epochs),
        "epochs_b": len(b.epochs),
        "common_epochs": len(common),
        "per_epoch": per_epoch,
        "final_loss_a": a.final_loss,
        "final_loss_b": b.final_loss,
        "seconds_a": a.seconds,
        "seconds_b": b.seconds,
        "tokens_per_s_a": a.mean_tokens_per_s,
        "tokens_per_s_b": b.mean_tokens_per_s,
    }
    if a.final_loss is not None and b.final_loss is not None:
        result["final_loss_delta"] = b.final_loss - a.final_loss
    return result
