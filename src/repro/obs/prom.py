"""Prometheus text-format exposition of the serving metrics.

Renders a :class:`~repro.serving.metrics.MetricsRegistry` in the
`text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_:
counters as ``repro_<name>_total`` and latency histograms as the
standard cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``
triple, so a stock Prometheus scrape of ``GET
/metrics?format=prometheus`` needs no adapter.  Metric names are
sanitised (dots become underscores: ``phase_seconds.ED`` →
``repro_phase_seconds_ED``); each histogram is read atomically so a
scrape never sees ``_count`` disagree with its ``+Inf`` bucket.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional

from repro.serving.metrics import MetricsRegistry

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Fold a dotted registry name into a valid Prometheus metric name."""
    cleaned = _INVALID.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(
    metrics: MetricsRegistry,
    namespace: str = "repro",
    gauges: Optional[Mapping[str, float]] = None,
) -> str:
    """The registry's current state in Prometheus text format.

    ``gauges`` carries point-in-time values that are not registry
    counters (readiness, uptime, cache sizes); they render with
    ``# TYPE ... gauge``.
    """
    counters, histograms = metrics.collect()
    lines: List[str] = []
    for name in sorted(counters):
        metric = f"{namespace}_{sanitize_metric_name(name)}"
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counters[name].value}")
    for name, value in sorted((gauges or {}).items()):
        metric = f"{namespace}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(float(value))}")
    for name in sorted(histograms):
        histogram = histograms[name]
        metric = f"{namespace}_{sanitize_metric_name(name)}"
        buckets, total_sum, count = histogram.buckets()
        lines.append(f"# TYPE {metric} histogram")
        for bound, cumulative in buckets:
            le = "+Inf" if math.isinf(bound) else _format_value(bound)
            lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(total_sum)}")
        lines.append(f"{metric}_count {count}")
    return "\n".join(lines) + "\n"


def snapshot_gauges(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Extract gauge-worthy scalars from a service snapshot dict.

    Pulls readiness/uptime plus per-cache and batcher numbers out of
    the JSON ``/metrics`` payload shape, so the Prometheus view covers
    the same surface without new bookkeeping.
    """
    gauges: Dict[str, float] = {}
    if "ready" in snapshot:
        gauges["ready"] = 1.0 if snapshot["ready"] else 0.0
    if "healthy" in snapshot:
        gauges["healthy"] = 1.0 if snapshot["healthy"] else 0.0
    if "uptime_seconds" in snapshot:
        gauges["uptime_seconds"] = float(snapshot["uptime_seconds"])
    for cache_name, stats in (snapshot.get("caches") or {}).items():
        for key in ("size", "hits", "misses", "evictions"):
            if key in stats:
                gauges[f"cache.{cache_name}.{key}"] = float(stats[key])
    for key, value in (snapshot.get("batcher") or {}).items():
        if isinstance(value, (int, float)):
            gauges[f"batcher.{key}"] = float(value)
    for key, value in (snapshot.get("traces") or {}).items():
        if isinstance(value, (int, float)):
            gauges[f"traces.{key}"] = float(value)
    # Lifecycle status nests (pool stats, swap state, shadow report);
    # every numeric leaf becomes a dotted gauge.  Strings (state names,
    # fingerprints, reason codes) stay JSON-only — Prometheus gauges
    # are numbers, and encoding enums here would invent a contract.
    lifecycle = snapshot.get("lifecycle")
    if isinstance(lifecycle, Mapping):
        _flatten_numeric(lifecycle, "lifecycle", gauges)
    # Multi-process front-end: queue depth, shed/death counters, and
    # per-worker job/query/respawn gauges indexed by worker id — the
    # operator's view of which worker is hot and which keeps dying.
    frontend = snapshot.get("frontend")
    if isinstance(frontend, Mapping):
        scalars = {
            key: value
            for key, value in frontend.items()
            if not isinstance(value, (list, tuple, Mapping, str))
        }
        _flatten_numeric(scalars, "frontend", gauges)
        workers = frontend.get("workers")
        if isinstance(workers, (list, tuple)):
            for entry in workers:
                if not isinstance(entry, Mapping):
                    continue
                index = entry.get("worker_id")
                if index is None:
                    continue
                per_worker = {
                    key: value
                    for key, value in entry.items()
                    if key != "worker_id"
                    and isinstance(value, (bool, int, float))
                }
                _flatten_numeric(
                    per_worker, f"frontend.worker.{index}", gauges
                )
    return gauges


def _flatten_numeric(
    tree: Mapping[str, Any], prefix: str, gauges: Dict[str, float]
) -> None:
    """Recursively hoist numeric (and bool) leaves into dotted gauges."""
    for key, value in tree.items():
        name = f"{prefix}.{key}"
        if isinstance(value, bool):
            gauges[name] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            gauges[name] = float(value)
        elif isinstance(value, Mapping):
            _flatten_numeric(value, name, gauges)
